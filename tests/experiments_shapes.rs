//! Guards the *shape* of every experiment against regressions: these are
//! the qualitative results EXPERIMENTS.md reports (who wins, what is
//! detected, where the TTP is needed). If a change flips any of these, the
//! reproduction no longer matches the paper.

use tpnr_bench_shapes::*;

/// Thin re-exports so the assertions below read like the EXPERIMENTS.md
/// tables. (The bench crate is not a dependency of the root package; the
/// experiments are re-run here through the public APIs they wrap.)
mod tpnr_bench_shapes {
    pub use tpnr::core::bridge::{DisputeScenario, SchemeKind};
    pub use tpnr::core::client::TimeoutStrategy;
    pub use tpnr::core::config::{Ablation, ProtocolConfig};
    pub use tpnr::core::runner::World;
    pub use tpnr::core::session::TxnState;
    pub use tpnr_attacks::{matrix, AttackKind};
    pub use tpnr_net::sim::LinkConfig;
    pub use tpnr_net::time::SimDuration;
}

#[test]
fn e2_shape_two_vs_four_steps() {
    // TPNR: 2 messages, 1 RTT. Baseline: 5 messages, 2 RTT. At every RTT.
    for rtt_ms in [10u64, 50, 100, 300] {
        let one_way = SimDuration::from_millis(rtt_ms / 2);
        let mut w = World::new(rtt_ms, ProtocolConfig::full());
        w.set_all_links(LinkConfig::ideal(one_way));
        let r = w.upload(b"k", vec![0u8; 1024], TimeoutStrategy::AbortFirst);
        assert_eq!(r.report.messages, 2);
        assert!(!r.report.ttp_used);

        let b = tpnr::core::baseline::run_exchange(rtt_ms, &[0u8; 1024], one_way).unwrap();
        assert!(b.messages >= 4);
        assert!(b.ttp_used);
        assert!(
            r.report.latency.micros() * 2 == b.latency.micros(),
            "TPNR settles in half the wall time ({} vs {})",
            r.report.latency.micros(),
            b.latency.micros()
        );
    }
}

#[test]
fn e3_shape_attack_matrix() {
    let rows = matrix();
    // Full protocol blocks all five attacks.
    assert!(rows.iter().filter(|r| r.ablation == Ablation::None).all(|r| r.blocked));
    // The three toggleable defences are each load-bearing.
    let succeeded: Vec<_> =
        rows.iter().filter(|r| !r.blocked).map(|r| (r.attack, r.ablation)).collect();
    assert!(succeeded.contains(&(AttackKind::Mitm, Ablation::NoKeyAuthentication)));
    assert!(succeeded.contains(&(AttackKind::Replay, Ablation::NoSequenceNumbers)));
    assert!(succeeded.contains(&(AttackKind::Timeliness, Ablation::NoTimeLimits)));
    // Reflection/interleaving are blocked structurally in every variant.
    assert!(rows
        .iter()
        .filter(|r| matches!(r.attack, AttackKind::Reflection | AttackKind::Interleaving))
        .all(|r| r.blocked));
    // …and the toy symmetric protocol demonstrates the attack class.
    assert!(tpnr_attacks::toy::reflection_attack_succeeds());
    assert!(tpnr_attacks::toy::interleaving_attack_succeeds());
}

#[test]
fn e6_shape_ttp_offline_at_zero_faults() {
    let mut w = World::new(60, ProtocolConfig::full());
    for i in 0..10u32 {
        let r = w.upload(
            format!("k{i}").as_bytes(),
            vec![0u8; 64],
            TimeoutStrategy::ResolveImmediately,
        );
        assert_eq!(r.outcome, TxnState::Completed);
        assert!(!r.report.ttp_used, "healthy network must never touch the TTP");
    }
    assert_eq!(w.ttp.stats.resolves_received, 0);
}

#[test]
fn e6_shape_ttp_engaged_under_faults() {
    let mut engaged = 0;
    for seed in 0..10u64 {
        let mut w = World::new(600 + seed, ProtocolConfig::full());
        let (a, b) = (w.alice_node, w.bob_node);
        w.net_mut().set_link(b, a, LinkConfig::lossy(SimDuration::from_millis(25), 0.9));
        let r = w.upload(b"k", vec![0u8; 64], TimeoutStrategy::ResolveImmediately);
        assert!(r.outcome.is_terminal());
        if r.report.ttp_used {
            engaged += 1;
        }
    }
    assert!(engaged >= 7, "90% receipt loss should engage the TTP almost always: {engaged}/10");
}

#[test]
fn e7_shape_bridging_schemes() {
    use tpnr::core::bridge::make_scheme;
    let coop = DisputeScenario { counterparty_cooperates: true, tac_available: true };
    let alone = DisputeScenario { counterparty_cooperates: false, tac_available: true };
    let lonely = DisputeScenario { counterparty_cooperates: false, tac_available: false };

    for kind in SchemeKind::all() {
        let mut s = make_scheme(kind, 70);
        s.upload(b"agreed");
        s.tamper(b"not agreed");
        // Everyone proves the tamper with full cooperation.
        assert_eq!(s.tamper_proven(coop), Some(true), "{}", kind.label());
        match kind {
            SchemeKind::Plain => {
                assert_eq!(s.tamper_proven(lonely), Some(true));
                assert!(s.dispute_power(lonely).attributable);
            }
            SchemeKind::SksOnly => {
                assert_eq!(s.tamper_proven(alone), None);
                assert!(!s.dispute_power(coop).attributable);
            }
            SchemeKind::TacOnly => {
                assert_eq!(s.tamper_proven(alone), Some(true));
                assert_eq!(s.tamper_proven(lonely), None);
            }
            SchemeKind::TacAndSks => {
                assert_eq!(s.tamper_proven(alone), Some(true));
            }
        }
    }
}

#[test]
fn e5_shape_protocol_negligible_vs_shipping() {
    let mut w = World::new(50, ProtocolConfig::full());
    w.set_all_links(LinkConfig::ideal(SimDuration::from_millis(50)));
    let r = w.upload(b"manifest", vec![0u8; 4096], TimeoutStrategy::AbortFirst);
    let protocol = r.report.latency.as_secs_f64();
    let shipping = SimDuration::from_hours(72).as_secs_f64();
    assert!(protocol / shipping < 1e-5);
}
