//! Cross-crate integration: the full paper narrative executed end to end —
//! platform vulnerability (storage crate) → TPNR remediation (core crate)
//! → arbitration — plus multi-object workloads and fault sweeps.

use tpnr::core::arbiter::{Arbitrator, DisputeCase, Verdict};
use tpnr::core::client::TimeoutStrategy;
use tpnr::core::config::ProtocolConfig;
use tpnr::core::runner::World;
use tpnr::core::session::TxnState;
use tpnr_net::sim::LinkConfig;
use tpnr_net::time::{SimDuration, SimTime};
use tpnr_storage::object::Tamper;
use tpnr_storage::platform::{all_platforms, ClientVerdict};

#[test]
fn figure5_story_platforms_fail_tpnr_closes_gap() {
    // Part 1: every platform model accepts the consistent tamper.
    for mut p in all_platforms(1) {
        p.upload("k", b"true", SimTime::ZERO);
        p.tamper("k", &Tamper::ConsistentReplace(b"fake".to_vec()));
        let d = p.download("k").unwrap();
        assert_eq!(d.data, b"fake");
        assert_eq!(d.client_check(), ClientVerdict::LooksClean, "{}", p.name());
    }

    // Part 2: the same story under TPNR ends with a conviction.
    let mut w = World::new(1, ProtocolConfig::full());
    let up = w.upload(b"k", b"true".to_vec(), TimeoutStrategy::AbortFirst);
    w.provider.tamper_storage(b"k", b"fake".to_vec());
    let down = w.download(b"k", TimeoutStrategy::AbortFirst);
    assert_eq!(down.data.clone().unwrap(), &b"fake"[..]);
    assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(false));

    let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
    let verdict = arb.judge(&DisputeCase {
        claimant: Some(w.client.id()),
        respondent: Some(w.provider.id()),
        upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
        download_nrr: w.client.txn(down.txn_id).and_then(|t| t.nrr.clone()),
        upload_nro: w.provider.txn(up.txn_id).map(|t| t.nro.clone()),
        download_nro: w.provider.txn(down.txn_id).map(|t| t.nro.clone()),
    });
    assert_eq!(verdict, Verdict::ProviderAtFault);
}

#[test]
fn many_objects_many_transactions() {
    // A realistic backup workload: 20 objects uploaded, spot-checked,
    // re-uploaded; every transaction completes in two messages.
    let mut w = World::new(2, ProtocolConfig::full());
    let mut txns = Vec::new();
    for i in 0..20u32 {
        let key = format!("backup/file-{i}").into_bytes();
        let data = vec![(i % 256) as u8; 100 + i as usize * 37];
        let r = w.upload(&key, data.clone(), TimeoutStrategy::AbortFirst);
        assert_eq!(r.outcome, TxnState::Completed);
        assert_eq!(r.report.messages, 2);
        txns.push((key, data, r.txn_id));
    }
    for (key, data, up_txn) in &txns {
        let down = w.download(key, TimeoutStrategy::AbortFirst);
        assert_eq!(down.data.clone().unwrap(), &data[..]);
        assert_eq!(w.client.verify_download_against_upload(*up_txn, down.txn_id), Some(true));
    }
    assert_eq!(w.provider.txn_count(), 40);
}

#[test]
fn versioned_overwrites_keep_latest_receipt_chain() {
    let mut w = World::new(3, ProtocolConfig::full());
    let v1 = w.upload(b"doc", b"v1".to_vec(), TimeoutStrategy::AbortFirst);
    let v2 = w.upload(b"doc", b"v2".to_vec(), TimeoutStrategy::AbortFirst);
    let down = w.download(b"doc", TimeoutStrategy::AbortFirst);
    assert_eq!(down.data.clone().unwrap(), &b"v2"[..]);
    // The download matches the latest upload and (correctly) contradicts v1.
    assert_eq!(w.client.verify_download_against_upload(v2.txn_id, down.txn_id), Some(true));
    assert_eq!(w.client.verify_download_against_upload(v1.txn_id, down.txn_id), Some(false));
}

#[test]
fn download_of_missing_object_is_attested_empty() {
    // Bob signs a receipt for "object k has no bytes" — which protects him
    // from later claims that he lost data that was never there.
    let mut w = World::new(4, ProtocolConfig::full());
    let down = w.download(b"never-uploaded", TimeoutStrategy::AbortFirst);
    assert_eq!(down.outcome, TxnState::Completed);
    assert_eq!(down.data.clone().unwrap(), &b""[..]);
}

#[test]
fn loss_sweep_terminates_and_completes_often() {
    let mut completed = 0;
    let total = 20;
    for seed in 0..total {
        let mut w = World::new(100 + seed, ProtocolConfig::full());
        w.set_all_links(LinkConfig::lossy(SimDuration::from_millis(20), 0.25));
        let r = w.upload(b"k", vec![1u8; 64], TimeoutStrategy::ResolveImmediately);
        assert!(r.outcome.is_terminal(), "seed {seed}: {:?}", r.outcome);
        if r.outcome == TxnState::Completed {
            completed += 1;
        }
    }
    assert!(completed >= total / 2, "resolve should rescue most sessions: {completed}/{total}");
}

#[test]
fn asymmetric_outage_only_receipts_lost() {
    // The classic unfairness scenario: Bob receives and stores, Alice gets
    // nothing back. Resolve restores fairness — Alice ends the run holding
    // the NRR she was owed.
    let mut w = World::new(5, ProtocolConfig::full());
    let (a, b) = (w.alice_node, w.bob_node);
    w.net_mut().set_link(b, a, LinkConfig { drop_prob: 1.0, ..Default::default() });
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Completed);
    assert!(r.report.ttp_used);
    assert!(w.client.txn(r.txn_id).unwrap().nrr.is_some());
    assert_eq!(w.provider.peek_storage(b"k"), Some(&b"data"[..]));
}

#[test]
fn abort_settles_when_provider_ignores_transfers() {
    let mut w = World::new(6, ProtocolConfig::full());
    w.provider.behavior.respond_transfers = false;
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Aborted);
    // Alice holds Bob's signed abort acknowledgement — her protection.
    assert!(w.client.txn(r.txn_id).unwrap().nrr.is_some());
}

#[test]
fn md5_mode_matches_the_2010_platforms() {
    // The whole protocol also runs with MD5 evidence, mirroring the
    // platforms under study.
    let mut w = World::new(7, ProtocolConfig::full().with_md5());
    let up = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(up.outcome, TxnState::Completed);
    let down = w.download(b"k", TimeoutStrategy::AbortFirst);
    assert_eq!(down.data.clone().unwrap(), &b"data"[..]);
    assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(true));
    assert_eq!(
        w.client.txn(up.txn_id).unwrap().nrr.as_ref().unwrap().plaintext.data_hash.len(),
        16,
        "MD5 evidence hashes are 16 bytes"
    );
}
