//! Extension demo: remote storage audits over Merkle commitments.
//!
//! At the paper's TB scale you cannot re-download an archive to check it is
//! still intact. With `ProtocolConfig::with_merkle(chunk)`, TPNR evidence
//! signs a Merkle root, and the client can later challenge the provider to
//! prove possession of any chunk against that signed root — a few hundred
//! bytes on the wire instead of the whole object.
//!
//! Run with `cargo run --example storage_audit`.

use tpnr::core::chunked::AuditChallenge;
use tpnr::core::client::TimeoutStrategy;
use tpnr::core::config::ProtocolConfig;
use tpnr::core::runner::World;
use tpnr_crypto::ChaChaRng;

const CHUNK: usize = 4096;

fn main() {
    let cfg = ProtocolConfig::full().with_merkle(CHUNK);
    let mut world = World::new(1234, cfg.clone());

    // A 1 MiB archive (stand-in for the paper's TB backup).
    let archive: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 251) as u8).collect();
    let up = world.upload(b"vault/archive.tar", archive.clone(), TimeoutStrategy::AbortFirst);
    println!("uploaded 1 MiB archive; evidence signs a Merkle root over {CHUNK}-byte chunks");

    // --- Random spot audits ------------------------------------------------
    let total_chunks = (archive.len() + 8 + b"vault/archive.tar".len()).div_ceil(CHUNK);
    let mut rng = ChaChaRng::seed_from_u64(99);
    println!("\nspot-auditing 8 random chunks of {total_chunks}:");
    let mut audited_bytes = 0usize;
    for _ in 0..8 {
        let idx = rng.gen_below(total_chunks as u64) as usize;
        let challenge = AuditChallenge { object: b"vault/archive.tar".to_vec(), chunk_index: idx };
        let resp = world.provider.answer_audit(&cfg, &challenge).expect("provider answers");
        let proof_size = resp.chunk.len()
            + resp.proof.siblings.iter().flatten().map(|(_, h)| h.len()).sum::<usize>();
        audited_bytes += proof_size;
        let verdict = world.client.verify_audit(&cfg, up.txn_id, &resp);
        println!(
            "  chunk {idx:>3}: proof {proof_size:>5} B  -> {}",
            if verdict.is_ok() { "OK" } else { "FAILED" }
        );
        assert!(verdict.is_ok());
    }
    println!(
        "total audit traffic: {audited_bytes} B ({:.2}% of a full download)",
        100.0 * audited_bytes as f64 / archive.len() as f64
    );

    // --- Now the provider loses a sector ------------------------------------
    println!("\nprovider suffers a silent single-bit corruption…");
    let mut stored = world.provider.peek_storage(b"vault/archive.tar").unwrap().to_vec();
    stored[517_000] ^= 1;
    world.provider.tamper_storage(b"vault/archive.tar", stored);

    let mut caught = false;
    for i in 0..total_chunks {
        let challenge = AuditChallenge { object: b"vault/archive.tar".to_vec(), chunk_index: i };
        let resp = world.provider.answer_audit(&cfg, &challenge).unwrap();
        if world.client.verify_audit(&cfg, up.txn_id, &resp).is_err() {
            caught = true;
            println!("audit of chunk {i} FAILED against the signed root — corruption proven");
            break;
        }
    }
    assert!(caught);
    println!("the failed proof + the provider-signed NRR is arbitration-grade evidence.");
}
