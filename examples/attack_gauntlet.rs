//! The §5 robustness analysis as an executable gauntlet: each of the five
//! classic attacks runs against the full TPNR protocol and against the
//! variant with the matching defence removed.
//!
//! Run with `cargo run --example attack_gauntlet`.

use tpnr_attacks::{matrix, AttackKind};

fn main() {
    println!("== TPNR attack gauntlet (paper §5) ==\n");
    println!("{:<19} {:<19} {:<8} detail", "attack", "protocol variant", "blocked");
    println!("{}", "-".repeat(100));
    for outcome in matrix() {
        println!(
            "{:<19} {:<19} {:<8} {}",
            outcome.attack.label(),
            outcome.ablation.label(),
            if outcome.blocked { "BLOCKED" } else { "SUCCESS" },
            outcome.detail
        );
    }

    println!("\nStructural defences (reflection / interleaving) cannot be toggled off —");
    println!("they follow from role asymmetry and transaction binding. To show the");
    println!("attack class is real, here is a naive symmetric challenge-response");
    println!("protocol falling to both:\n");
    println!(
        "  reflection vs toy protocol:   {}",
        if tpnr_attacks::toy::reflection_attack_succeeds() {
            "SUCCESS (attacker authenticated)"
        } else {
            "blocked"
        }
    );
    println!(
        "  interleaving vs toy protocol: {}",
        if tpnr_attacks::toy::interleaving_attack_succeeds() {
            "SUCCESS (attacker authenticated to both)"
        } else {
            "blocked"
        }
    );

    // Sanity: the full protocol blocked everything.
    let all_blocked = matrix()
        .iter()
        .filter(|o| o.ablation == tpnr_core::config::Ablation::None)
        .all(|o| o.blocked);
    assert!(all_blocked);
    println!("\nfull-TPNR verdict: all {} attacks blocked.", AttackKind::all().len());
}
