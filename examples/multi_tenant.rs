//! Figure 1 at population scale: one provider and one off-line TTP serving
//! many clients with interleaved transactions, including one client behind
//! a broken return path who is rescued through Resolve.
//!
//! Run with `cargo run --example multi_tenant`.

use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::multi::MultiWorld;
use tpnr_core::session::TxnState;
use tpnr_net::sim::LinkConfig;

const CLIENTS: usize = 8;

fn main() {
    let mut world = MultiWorld::new(2026, ProtocolConfig::full(), CLIENTS);
    println!("== {CLIENTS} clients, one provider, one off-line TTP ==\n");

    // Client 3 has a broken provider→client path (receipts never arrive).
    let unlucky = 3usize;
    let bob = world.bob_node;
    let c3_node = world.client_nodes[unlucky];
    world.net_mut().set_link(bob, c3_node, LinkConfig { drop_prob: 1.0, ..Default::default() });

    // Everyone uploads concurrently — transfers are all in flight together.
    let txns: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let key = format!("tenant-{i}/backup").into_bytes();
            let data = vec![i as u8; 512 + i * 100];
            world.start_upload(i, &key, data, TimeoutStrategy::ResolveImmediately)
        })
        .collect();
    world.settle();

    for h in &txns {
        let i = h.client;
        let state = world.state_of(*h).unwrap();
        println!(
            "client {i}: txn {:>12} -> {:?}{}",
            h.txn_id,
            state,
            if i == unlucky { "   (receipts dropped; rescued via TTP)" } else { "" }
        );
        assert_eq!(state, TxnState::Completed);
    }

    println!("\nprovider archived {} transactions", world.provider.txn_count());
    println!(
        "TTP touched by {} of {CLIENTS} sessions (only the faulted one)",
        world.ttp.stats.resolves_received
    );
    assert_eq!(world.ttp.stats.resolves_received, 1);

    // The outage heals; every client re-downloads its own object. (A
    // download resolved through the TTP recovers the *receipt* but not the
    // bulk data — the TTP never forwards data, per §4.3 — so the download
    // itself is retried over the healed link.)
    world.net_mut().set_link(bob, c3_node, LinkConfig::default());
    let down: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let key = format!("tenant-{i}/backup").into_bytes();
            world.start_download(i, &key, TimeoutStrategy::AbortFirst)
        })
        .collect();
    world.settle();
    for h in down {
        let payload = world.clients[h.client].download_result(h.txn_id).expect("download complete");
        assert_eq!(payload.data.len(), 512 + h.client * 100);
    }
    println!("all tenants verified their round-trips — evidence archived per tenant.");
}
