//! The AWS Import/Export flow of paper Figure 2, on the simulated clock:
//! manifest + signature file, device shipping (days), MD5-by-email — and
//! the §6 observation that protocol time is trivial next to shipping time.
//!
//! Run with `cargo run --example import_export`.

use tpnr::core::client::TimeoutStrategy;
use tpnr::core::config::ProtocolConfig;
use tpnr::core::runner::World;
use tpnr_crypto::RsaKeyPair;
use tpnr_net::time::{SimDuration, SimTime};
use tpnr_storage::aws::{prepare_import, AwsService, Shipment};

fn main() {
    println!("== AWS Import/Export (Figure 2) ==\n");

    let mut aws = AwsService::new();
    let alice_keys = RsaKeyPair::insecure_test_key(77);
    aws.register_user("AKIAALICE", alice_keys.public.clone());

    // Alice prepares a 2 GiB backup (scaled down to 2 MiB here so the
    // example runs instantly; the flow is size-independent).
    let backup: Vec<u8> = (0..2 << 20).map(|i| (i % 251) as u8).collect();
    println!("1. Alice writes the manifest file and signs it;");
    println!("   the signature file is taped to the storage device.");
    let (manifest, device) =
        prepare_import(&alice_keys, "AKIAALICE", "device-0042", "backups/2010-06", 1, backup)
            .unwrap();

    println!("2. The device ships by surface mail (3 days on the simulated clock).");
    let t0 = SimTime::ZERO;
    let shipment = Shipment::dispatch(device, t0, Shipment::typical_transit());
    let arrival = shipment.arrives_at();
    println!("   dispatched at t=0, arrives at t={:.1} h", arrival.micros() as f64 / 3.6e9);

    println!("3. Amazon validates the manifest signature and loads the bytes into S3.");
    let email = aws.process_import(&manifest, &shipment.device, arrival).unwrap();
    println!("4. Amazon emails back the management information:");
    println!("   job_id       : {}", email.job_id);
    println!("   bytes loaded : {}", email.bytes);
    println!("   MD5          : {}", email.md5_hex);
    println!("   status       : {:?}", email.status);
    println!("   log location : {}", email.log_location);

    // ---- §6: protocol time vs shipping time ------------------------------
    println!("\n== §6: the evidence protocol is free compared to shipping ==\n");
    let mut world = World::new(99, ProtocolConfig::full());
    world.set_all_links(tpnr_net::LinkConfig::ideal(SimDuration::from_millis(50)));
    let report = world.upload(
        b"backups/2010-06/manifest",
        manifest.canonical_bytes(),
        TimeoutStrategy::AbortFirst,
    );
    let protocol_secs = report.report.latency.as_secs_f64();
    let shipping_secs = Shipment::typical_transit().as_secs_f64();
    println!("TPNR evidence exchange over a 100 ms-RTT WAN: {:.3} s", protocol_secs);
    println!("device in a truck:                            {:.0} s", shipping_secs);
    println!(
        "protocol overhead: {:.6}% of the end-to-end import",
        100.0 * protocol_secs / (protocol_secs + shipping_secs)
    );
}
