//! Quickstart: one upload and one download over the TPNR protocol, with the
//! evidence exchange and the upload-to-download integrity link.
//!
//! Run with `cargo run --example quickstart`.

use tpnr::core::client::TimeoutStrategy;
use tpnr::core::config::ProtocolConfig;
use tpnr::core::runner::World;

fn main() {
    // Three principals on a simulated Internet: Alice (client), Bob (cloud
    // storage provider) and an off-line TTP. Keys are deterministic test
    // keys so the run is reproducible.
    let mut world = World::new(42, ProtocolConfig::full());

    println!("== TPNR quickstart ==\n");

    // --- Upload (Normal mode: exactly two messages, TTP untouched) -------
    let data = b"company financial records, Q3".to_vec();
    let up = world.upload(b"backup/q3", data.clone(), TimeoutStrategy::AbortFirst);
    println!(
        "upload:   state={:?}  messages={}  latency={:.1} ms  ttp_used={}",
        up.outcome,
        up.report.messages,
        up.report.latency.as_secs_f64() * 1e3,
        up.report.ttp_used
    );

    // Both sides now hold signed evidence.
    let alice_txn = world.client.txn(up.txn_id).unwrap();
    println!(
        "evidence: Alice holds Bob's NRR (receipt)    — flag {:?}",
        alice_txn.nrr.as_ref().unwrap().plaintext.flag
    );
    let bob_txn = world.provider.txn(up.txn_id).unwrap();
    println!(
        "evidence: Bob holds Alice's NRO (origin)     — flag {:?}",
        bob_txn.nro.plaintext.flag
    );

    // --- Download ---------------------------------------------------------
    let down = world.download(b"backup/q3", TimeoutStrategy::AbortFirst);
    println!(
        "\ndownload: state={:?}  messages={}  data intact={}",
        down.outcome,
        down.report.messages,
        down.data.as_ref().map(tpnr_net::Bytes::as_ref) == Some(&data[..])
    );

    // --- The integrity link the paper adds --------------------------------
    // Bob's upload receipt and download response both commit (under his
    // signature) to a hash of the object; comparing them closes the
    // upload-to-download gap of paper §2.4.
    let intact = world.client.verify_download_against_upload(up.txn_id, down.txn_id).unwrap();
    println!(
        "integrity link (upload NRR vs download NRR): {}",
        if intact { "CONSISTENT" } else { "TAMPERED" }
    );

    // --- Event stream -------------------------------------------------------
    println!("\nevent stream:");
    for ev in world.obs.events() {
        let txn = ev.txn.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "  t={:>7.1} ms  {:<8} txn={:<3} {:<16} {}",
            ev.at.micros() as f64 / 1e3,
            ev.actor,
            txn,
            ev.kind.label(),
            ev.msg_kind().unwrap_or("")
        );
    }

    let m = &world.obs.metrics;
    println!(
        "\nmetrics: delivered={}  rejected={}  garbled={}  p99 latency={:.1} ms",
        m.delivered,
        m.rejected,
        m.garbled,
        m.latency_us.quantile(0.99).unwrap_or(0) as f64 / 1e3
    );
}
