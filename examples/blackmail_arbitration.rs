//! The paper's §2.4 dispute stories, end to end:
//!
//! 1. **Tampering** — Eve (the provider) silently rewrites Alice's stored
//!    data; Alice detects it through the integrity link and *wins* at the
//!    arbitrator with Bob's own signed receipts.
//! 2. **Blackmail** — Alice's data was never touched, but she claims it was
//!    and demands compensation; the provider clears itself with the
//!    evidence, even when Alice withholds the receipt that would sink her.
//!
//! Run with `cargo run --example blackmail_arbitration`.

use tpnr::core::arbiter::{Arbitrator, DisputeCase, Verdict};
use tpnr::core::client::TimeoutStrategy;
use tpnr::core::config::ProtocolConfig;
use tpnr::core::runner::World;

fn full_case(w: &World, up: u64, down: u64) -> DisputeCase {
    DisputeCase {
        claimant: Some(w.client.id()),
        respondent: Some(w.provider.id()),
        upload_nrr: w.client.txn(up).and_then(|t| t.nrr.clone()),
        download_nrr: w.client.txn(down).and_then(|t| t.nrr.clone()),
        upload_nro: w.provider.txn(up).map(|t| t.nro.clone()),
        download_nro: w.provider.txn(down).map(|t| t.nro.clone()),
    }
}

fn main() {
    println!("== Scenario 1: the provider tampers ==\n");
    let mut w = World::new(7, ProtocolConfig::full());
    let up = w.upload(b"ledger", b"true accounts".to_vec(), TimeoutStrategy::AbortFirst);
    println!("Alice uploads 'true accounts'; Bob signs the receipt (NRR).");

    w.provider.tamper_storage(b"ledger", b"cooked accounts".to_vec());
    println!("Eve quietly rewrites the stored object to 'cooked accounts'.");

    let down = w.download(b"ledger", TimeoutStrategy::AbortFirst);
    println!(
        "Alice downloads: {:?} — the session itself verifies cleanly!",
        String::from_utf8_lossy(down.data.as_ref().unwrap().as_ref())
    );
    println!(
        "integrity link says: {}",
        match w.client.verify_download_against_upload(up.txn_id, down.txn_id) {
            Some(false) => "TAMPERED (upload NRR hash != download NRR hash)",
            Some(true) => "consistent",
            None => "insufficient evidence",
        }
    );

    let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
    let verdict = arb.judge(&full_case(&w, up.txn_id, down.txn_id));
    println!("arbitrator verdict: {verdict:?}  (Bob signed two different hashes for one object)");
    assert_eq!(verdict, Verdict::ProviderAtFault);

    println!("\n== Scenario 2: the client blackmails ==\n");
    let mut w = World::new(8, ProtocolConfig::full());
    // A fresh world means fresh principals: the arbitrator must use this
    // world's key directory or every signature looks forged.
    let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
    let up = w.upload(b"ledger", b"true accounts".to_vec(), TimeoutStrategy::AbortFirst);
    let down = w.download(b"ledger", TimeoutStrategy::AbortFirst);
    println!("Nothing was tampered, but Alice claims her data was destroyed and demands damages.");

    let verdict = arb.judge(&full_case(&w, up.txn_id, down.txn_id));
    println!("arbitrator verdict (full evidence): {verdict:?}");
    assert_eq!(verdict, Verdict::ClaimRejected);

    // Alice tries harder: she withholds the upload receipt.
    let mut case = full_case(&w, up.txn_id, down.txn_id);
    case.upload_nrr = None;
    let verdict = arb.judge(&case);
    println!("arbitrator verdict (Alice hides her receipt): {verdict:?}");
    println!("  -> Bob clears himself with Alice's OWN signed NRO: what she");
    println!("     uploaded hashes exactly to what he served back.");
    assert_eq!(verdict, Verdict::ClaimRejected);

    // Desperate, she forges the receipt. The arbitrator re-verifies every
    // signature against the certified directory.
    let mut case = full_case(&w, up.txn_id, down.txn_id);
    if let Some(ev) = case.upload_nrr.as_mut() {
        ev.plaintext.data_hash[0] ^= 1;
    }
    let verdict = arb.judge(&case);
    println!("arbitrator verdict (Alice forges the receipt): {verdict:?}");
    assert_eq!(verdict, Verdict::ForgedEvidence { by_claimant: true });

    println!("\nBoth §2.4 repudiation concerns are settled by the same evidence.");
}
