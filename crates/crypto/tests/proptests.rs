//! Property-based tests for the crypto substrate: bigint ring axioms,
//! division invariants, modular arithmetic, encodings, MAC/cipher/secret
//! sharing round-trips and signature soundness.

use proptest::prelude::*;
use tpnr_crypto::bigint::BigUint;
use tpnr_crypto::encoding::{base64_decode, base64_encode, hex_decode, hex_encode};
use tpnr_crypto::hash::{Digest, HashAlg};
use tpnr_crypto::hmac::Hmac;
use tpnr_crypto::sha2::Sha256;
use tpnr_crypto::{chacha20, shamir, ChaChaRng};

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------------------ bigint --

    #[test]
    fn bigint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&bytes);
        let back = v.to_bytes_be();
        let trimmed: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
        prop_assert_eq!(back, trimmed);
    }

    #[test]
    fn bigint_add_commutes(a in proptest::collection::vec(any::<u8>(), 0..48),
                           b in proptest::collection::vec(any::<u8>(), 0..48)) {
        let (x, y) = (big(&a), big(&b));
        prop_assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn bigint_add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..48),
                              b in proptest::collection::vec(any::<u8>(), 0..48)) {
        let (x, y) = (big(&a), big(&b));
        prop_assert_eq!(x.add(&y).sub(&y), x);
    }

    #[test]
    fn bigint_mul_commutes_and_distributes(
        a in proptest::collection::vec(any::<u8>(), 0..24),
        b in proptest::collection::vec(any::<u8>(), 0..24),
        c in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let (x, y, z) = (big(&a), big(&b), big(&c));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn bigint_div_rem_identity(a in proptest::collection::vec(any::<u8>(), 0..48),
                               d in proptest::collection::vec(any::<u8>(), 1..32)) {
        let x = big(&a);
        let y = big(&d);
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(&y);
        prop_assert_eq!(q.mul(&y).add(&r), x.clone());
        prop_assert!(r.cmp_big(&y) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bigint_shift_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..32),
                              s in 0usize..130) {
        let x = big(&a);
        prop_assert_eq!(x.shl(s).shr(s), x);
    }

    #[test]
    fn bigint_mod_pow_matches_naive(base in 0u64..1000, exp in 0u32..12, m in 2u64..10_000) {
        let naive = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % m as u128;
            }
            acc as u64
        };
        let got = BigUint::from_u64(base)
            .mod_pow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
        prop_assert_eq!(got, BigUint::from_u64(naive));
    }

    #[test]
    fn bigint_mod_inverse_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
        let x = BigUint::from_u64(a);
        let modulus = BigUint::from_u64(m);
        if let Some(inv) = x.mod_inverse(&modulus) {
            prop_assert_eq!(x.mul_mod(&inv, &modulus), BigUint::one());
        } else {
            // No inverse means gcd > 1.
            prop_assert!(!x.gcd(&modulus).is_one());
        }
    }

    #[test]
    fn bigint_gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        let gv = g.low_u64();
        prop_assert!(gv > 0 && a % gv == 0 && b % gv == 0);
    }

    // ---------------------------------------------------------- encodings --

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    // ------------------------------------------------------------- hashes --

    #[test]
    fn hashing_is_deterministic_and_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            let oneshot = alg.hash(&data);
            prop_assert_eq!(&oneshot, &alg.hash(&data));
            prop_assert_eq!(oneshot.len(), alg.output_len());
        }
        // Incremental == one-shot for the workhorse.
        let mut h = Sha256::default();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    // --------------------------------------------------------------- hmac --

    #[test]
    fn hmac_verifies_and_rejects_flips(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        flip in 0usize..32,
    ) {
        let tag = Hmac::<Sha256>::mac(&key, &data);
        prop_assert!(Hmac::<Sha256>::verify(&key, &data, &tag));
        let mut bad = tag.clone();
        let i = flip % bad.len();
        bad[i] ^= 1;
        prop_assert!(!Hmac::<Sha256>::verify(&key, &data, &bad));
    }

    // ------------------------------------------------------------ chacha20 --

    #[test]
    fn chacha_roundtrip_and_keystream_uniqueness(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let ct = chacha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(chacha20::decrypt(&key, &nonce, &ct), data.clone());
        if !data.is_empty() {
            let mut other_nonce = nonce;
            other_nonce[0] ^= 1;
            prop_assert_ne!(chacha20::encrypt(&key, &other_nonce, &data), ct);
        }
    }

    // -------------------------------------------------------------- shamir --

    #[test]
    fn shamir_any_k_of_n_recovers(
        secret in proptest::collection::vec(any::<u8>(), 0..64),
        k in 1usize..5,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let shares = shamir::split(&secret, k, n, &mut rng).unwrap();
        // Any contiguous window of k shares recovers the secret.
        for start in 0..=(n - k) {
            prop_assert_eq!(shamir::combine(&shares[start..start + k]).unwrap(), secret.clone());
        }
    }

    #[test]
    fn shamir_corrupt_share_breaks_recovery(
        secret in proptest::collection::vec(1u8..255, 1..32),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut shares = shamir::split(&secret, 2, 2, &mut rng).unwrap();
        shares[0].y[0] ^= 0x55;
        prop_assert_ne!(shamir::combine(&shares).unwrap(), secret);
    }
}

// RSA proptests get fewer cases — each involves real modular exponentiation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rsa_sign_verify_and_tamper(msg in proptest::collection::vec(any::<u8>(), 0..256),
                                  flip in any::<u8>()) {
        let kp = tpnr_crypto::RsaKeyPair::insecure_test_key(9);
        let sig = kp.private.sign(HashAlg::Sha256, &msg).unwrap();
        prop_assert!(kp.public.verify(HashAlg::Sha256, &msg, &sig).is_ok());
        let mut bad = sig.clone();
        let i = flip as usize % bad.len();
        bad[i] ^= 1;
        prop_assert!(kp.public.verify(HashAlg::Sha256, &msg, &bad).is_err());
    }

    #[test]
    fn rsa_encrypt_decrypt(msg in proptest::collection::vec(any::<u8>(), 0..48),
                           seed in any::<u64>()) {
        let kp = tpnr_crypto::RsaKeyPair::insecure_test_key(10);
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
        prop_assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn envelope_roundtrip_and_tamper(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                     seed in any::<u64>(),
                                     flip in any::<usize>()) {
        let kp = tpnr_crypto::RsaKeyPair::insecure_test_key(11);
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let env = tpnr_crypto::envelope::seal(&kp.public, &mut rng, &data).unwrap();
        prop_assert_eq!(tpnr_crypto::envelope::open(&kp.private, &env).unwrap(), data);
        let mut bad = env.clone();
        let i = flip % bad.len();
        bad[i] ^= 1;
        prop_assert!(tpnr_crypto::envelope::open(&kp.private, &bad).is_err());
    }
}
