//! Differential tests for the fixed-limb bigint layer: every `FixedUint` /
//! `FixedMontgomeryCtx` operation is checked against the heap-backed
//! `BigUint` reference on random operands, the new windowed/fixed-limb
//! signing and verification paths are checked byte-identical against the
//! retained pre-optimization classic paths, primality is cross-checked
//! against trial division, and batch verification is attacked with a
//! tampered signature at an arbitrary position in a 64-item batch.

use proptest::prelude::*;
use std::sync::OnceLock;
use tpnr_crypto::bigint::BigUint;
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::limbs::{mod_pow_fixed, FixedMontgomeryCtx, FixedUint};
use tpnr_crypto::rsa::{BatchItem, RsaKeyPair};
use tpnr_crypto::ChaChaRng;

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

/// Forces the top byte non-zero and the low bit set: an odd modulus of full
/// width, as every RSA modulus is.
fn odd_modulus(mut bytes: Vec<u8>) -> BigUint {
    if let Some(first) = bytes.first_mut() {
        *first |= 0x80;
    }
    if let Some(last) = bytes.last_mut() {
        *last |= 1;
    }
    big(&bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------- FixedUint vs BigUint

    #[test]
    fn fixed_add_matches_biguint(a in proptest::collection::vec(any::<u8>(), 0..64),
                                 b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let (x, y) = (big(&a), big(&b));
        let (fx, fy) = (
            FixedUint::<8>::from_biguint(&x).unwrap(),
            FixedUint::<8>::from_biguint(&y).unwrap(),
        );
        let (sum, carry) = fx.add_carry(&fy);
        // The 8-limb adder result plus its carry limb is the full sum.
        let full = sum.to_biguint().add(&BigUint::from_u64(carry).shl(512));
        prop_assert_eq!(full, x.add(&y));
    }

    #[test]
    fn fixed_sub_matches_biguint(a in proptest::collection::vec(any::<u8>(), 0..64),
                                 b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let (x, y) = (big(&a), big(&b));
        let (hi, lo) = if x.cmp_big(&y) == std::cmp::Ordering::Less { (y, x) } else { (x, y) };
        let (fh, fl) = (
            FixedUint::<8>::from_biguint(&hi).unwrap(),
            FixedUint::<8>::from_biguint(&lo).unwrap(),
        );
        let (diff, borrow) = fh.sub_borrow(&fl);
        prop_assert_eq!(borrow, 0);
        prop_assert_eq!(diff.to_biguint(), hi.sub(&lo));
        // And the reverse direction borrows iff the operands differ.
        let (_, borrow) = fl.sub_borrow(&fh);
        prop_assert_eq!(borrow != 0, hi != lo);
    }

    #[test]
    fn fixed_mul_matches_biguint(a in proptest::collection::vec(any::<u8>(), 0..64),
                                 b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let (x, y) = (big(&a), big(&b));
        let (fx, fy) = (
            FixedUint::<8>::from_biguint(&x).unwrap(),
            FixedUint::<8>::from_biguint(&y).unwrap(),
        );
        let (lo, hi) = fx.mul_wide(&fy);
        let full = lo.to_biguint().add(&hi.to_biguint().shl(512));
        prop_assert_eq!(full, x.mul(&y));
    }

    #[test]
    fn fixed_montgomery_mul_matches_mul_mod(
        a in proptest::collection::vec(any::<u8>(), 1..32),
        b in proptest::collection::vec(any::<u8>(), 1..32),
        m in proptest::collection::vec(any::<u8>(), 16..32),
    ) {
        let n = odd_modulus(m);
        let (x, y) = (big(&a).rem(&n), big(&b).rem(&n));
        let ctx = FixedMontgomeryCtx::<4>::new(&n).unwrap();
        let (fx, fy) = (
            FixedUint::from_biguint(&x).unwrap(),
            FixedUint::from_biguint(&y).unwrap(),
        );
        let prod = ctx.from_mont(&ctx.mul(&ctx.to_mont(&fx), &ctx.to_mont(&fy)));
        prop_assert_eq!(prod.to_biguint(), x.mul_mod(&y, &n));
    }

    #[test]
    fn fixed_mod_pow_matches_classic(
        base in proptest::collection::vec(any::<u8>(), 1..48),
        exp in proptest::collection::vec(any::<u8>(), 1..24),
        m in proptest::collection::vec(any::<u8>(), 24..48),
    ) {
        let n = odd_modulus(m);
        let (b, e) = (big(&base), big(&exp));
        // The public dispatcher (fixed-limb for these widths)…
        let fast = b.mod_pow(&e, &n);
        // …the retained square-and-multiply reference…
        let classic = b.mod_pow_classic(&e, &n);
        prop_assert_eq!(&fast, &classic);
        // …and the explicitly-instantiated fixed kernel all agree.
        let direct = mod_pow_fixed::<8>(&b, &e, &n).unwrap();
        prop_assert_eq!(&direct, &classic);
    }

    #[test]
    fn fixed_pow_handles_edge_exponents(m in proptest::collection::vec(any::<u8>(), 16..32),
                                        base in proptest::collection::vec(any::<u8>(), 1..24)) {
        let n = odd_modulus(m);
        let b = big(&base).rem(&n);
        // exp = 0 → 1, exp = 1 → b, both through the windowed kernel.
        prop_assert_eq!(b.mod_pow(&BigUint::zero(), &n), BigUint::one().rem(&n));
        prop_assert_eq!(b.mod_pow(&BigUint::one(), &n), b.clone());
    }
}

proptest! {
    // RSA operations are expensive; fewer cases, same adversarial value.
    #![proptest_config(ProptestConfig::with_cases(8))]

    // ------------------------------------- signing path byte-compatibility

    #[test]
    fn signatures_byte_identical_old_vs_new(digest_seed in any::<u64>(), key_id in 0u64..3) {
        let kp = test_key(key_id);
        let digest = HashAlg::Sha256.hash(&digest_seed.to_be_bytes());
        // New path: fixed-limb CRT halves with sliding-window exponentiation.
        let fast = kp.private.sign_prehashed(HashAlg::Sha256, &digest).unwrap();
        // Reference path: the retained classic square-and-multiply CRT.
        let classic = kp.private.sign_prehashed_reference(HashAlg::Sha256, &digest).unwrap();
        prop_assert_eq!(&fast, &classic, "CRT signing must be byte-identical across kernels");
        // Both verification paths accept it; both reject a flipped bit.
        prop_assert!(kp.public.verify_prehashed(HashAlg::Sha256, &digest, &fast).is_ok());
        prop_assert!(kp.public.verify_prehashed_reference(HashAlg::Sha256, &digest, &fast).is_ok());
        let mut bad = fast.clone();
        let pos = (digest_seed % 64) as usize % bad.len();
        bad[pos] ^= 1;
        prop_assert!(kp.public.verify_prehashed(HashAlg::Sha256, &digest, &bad).is_err());
        prop_assert!(kp.public.verify_prehashed_reference(HashAlg::Sha256, &digest, &bad).is_err());
    }

    #[test]
    fn crt_roundtrip_encrypt_decrypt(msg in proptest::collection::vec(any::<u8>(), 1..32),
                                     rng_seed in any::<u64>()) {
        // Encrypt (public, fixed-limb mod_pow) then decrypt (private, CRT):
        // a full round-trip through both new kernels.
        let kp = test_key(rng_seed % 3);
        let mut rng = ChaChaRng::seed_from_u64(rng_seed);
        let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
        prop_assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    // -------------------------------------------------- batch adversarial

    #[test]
    fn tampered_signature_in_batch_of_64_attributed(tamper_at in 0usize..64,
                                                    flip_bit in 0u8..8,
                                                    rng_seed in any::<u64>()) {
        let (kp, digests, sigs) = batch_fixture();
        let mut bad_sigs = sigs.clone();
        let byte = tamper_at % bad_sigs[tamper_at].len();
        bad_sigs[tamper_at][byte] ^= 1 << flip_bit;
        let items: Vec<BatchItem<'_>> = digests
            .iter()
            .zip(&bad_sigs)
            .map(|(d, s)| BatchItem { alg: HashAlg::Sha256, digest: d, signature: s })
            .collect();
        let mut rng = ChaChaRng::seed_from_u64(rng_seed);
        let err = kp.public.verify_batch(&items, &mut rng).unwrap_err();
        prop_assert_eq!(err.index, tamper_at, "culprit must be attributed exactly");
        // The untampered batch still verifies with the same rng stream.
        let items: Vec<BatchItem<'_>> = digests
            .iter()
            .zip(sigs)
            .map(|(d, s)| BatchItem { alg: HashAlg::Sha256, digest: d, signature: s })
            .collect();
        prop_assert!(kp.public.verify_batch(&items, &mut rng).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ----------------------------------------------- primality vs division

    #[test]
    fn primality_matches_trial_division_below_2_16(n in 0u64..(1 << 16), seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let probabilistic =
            tpnr_crypto::prime::is_probable_prime(&BigUint::from_u64(n), 16, &mut rng);
        let exact = trial_division_is_prime(n);
        prop_assert_eq!(probabilistic, exact, "n = {}", n);
    }
}

/// Ground truth for small n.
fn trial_division_is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Deterministic test keys, generated once per process (keygen is the
/// expensive part; the properties under test don't depend on which key).
fn test_key(id: u64) -> &'static RsaKeyPair {
    static KEYS: OnceLock<Vec<RsaKeyPair>> = OnceLock::new();
    let keys = KEYS.get_or_init(|| (0..3).map(RsaKeyPair::insecure_test_key).collect());
    &keys[(id % 3) as usize]
}

/// One key + 64 signed digests, shared across the adversarial batch cases.
type DigestsAndSigs = (Vec<Vec<u8>>, Vec<Vec<u8>>);

fn batch_fixture() -> (&'static RsaKeyPair, &'static Vec<Vec<u8>>, &'static Vec<Vec<u8>>) {
    static FIXTURE: OnceLock<DigestsAndSigs> = OnceLock::new();
    let kp = test_key(0);
    let (digests, sigs) = FIXTURE.get_or_init(|| {
        let digests: Vec<Vec<u8>> =
            (0..64u64).map(|i| HashAlg::Sha256.hash(&i.to_be_bytes())).collect();
        let sigs = digests
            .iter()
            .map(|d| kp.private.sign_prehashed(HashAlg::Sha256, d).unwrap())
            .collect();
        (digests, sigs)
    });
    (kp, digests, sigs)
}
