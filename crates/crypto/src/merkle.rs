//! Merkle hash trees over chunked data.
//!
//! The paper motivates TPNR with TB-scale backups (§6: "Cloud storage is
//! only attractive to large volume (TB) data backup"). A single whole-file
//! hash forces a verifier to re-read the entire object; a Merkle tree lets
//! evidence commit to the same content while allowing **partial
//! verification** — any chunk can be checked against the signed root with a
//! log-size proof. `tpnr-core::chunked` builds chunked transfer on top of
//! this; the `evidence_cost` benches quantify the whole-hash vs Merkle
//! trade-off.
//!
//! Construction: leaves are `H(0x00 ‖ chunk)`, interior nodes
//! `H(0x01 ‖ left ‖ right)` (domain separation prevents leaf/node
//! confusion); odd nodes are promoted unchanged. An empty input has the
//! root `H(0x00)`.

use crate::hash::HashAlg;
use tpnr_par::par_map_indexed;

/// Inputs at least this large hash their leaves on worker threads.
///
/// Below the threshold thread spawn/join overhead dwarfs the hashing; above
/// it the leaves (each an independent `H(0x00 ‖ chunk)`) dominate tree cost.
/// Parallelism never changes the tree: leaf hashing is a pure function of
/// `(alg, chunk)` and [`par_map_indexed`] joins results in index order, so
/// serial and parallel builds are byte-identical (asserted in tests).
const PARALLEL_LEAF_THRESHOLD: usize = 64 * 1024;

/// A Merkle tree with all levels retained (leaves first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    alg: HashAlg,
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Vec<u8>>>,
    chunk_size: usize,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes bottom-up; `None` where the node was promoted.
    pub siblings: Vec<Option<(Side, Vec<u8>)>>,
}

/// Which side a sibling sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left child.
    Left,
    /// Sibling is the right child.
    Right,
}

fn leaf_hash(alg: HashAlg, chunk: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + chunk.len());
    buf.push(0x00);
    buf.extend_from_slice(chunk);
    alg.hash(&buf)
}

fn node_hash(alg: HashAlg, left: &[u8], right: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + left.len() + right.len());
    buf.push(0x01);
    buf.extend_from_slice(left);
    buf.extend_from_slice(right);
    alg.hash(&buf)
}

impl MerkleTree {
    /// Builds a tree over `data` split into `chunk_size`-byte chunks.
    ///
    /// Panics if `chunk_size == 0`.
    pub fn build(alg: HashAlg, data: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let leaves: Vec<Vec<u8>> = if data.is_empty() {
            vec![leaf_hash(alg, &[])]
        } else if data.len() >= PARALLEL_LEAF_THRESHOLD {
            let chunks: Vec<&[u8]> = data.chunks(chunk_size).collect();
            par_map_indexed(chunks.len(), |i| leaf_hash(alg, chunks[i]))
        } else {
            data.chunks(chunk_size).map(|c| leaf_hash(alg, c)).collect()
        };
        let mut levels = vec![leaves];
        loop {
            let next = {
                let Some(prev) = levels.last().filter(|l| l.len() > 1) else { break };
                let mut next = Vec::with_capacity(prev.len().div_ceil(2));
                for pair in prev.chunks(2) {
                    match pair {
                        [left, right] => next.push(node_hash(alg, left, right)),
                        [odd] => next.push(odd.clone()), // odd node promoted
                        _ => {}
                    }
                }
                next
            };
            levels.push(next);
        }
        MerkleTree { alg, levels, chunk_size }
    }

    /// The root hash (what TPNR evidence signs for chunked objects).
    pub fn root(&self) -> &[u8] {
        // `build` always pushes at least one non-empty level.
        self.levels.last().and_then(|l| l.first()).map_or(&[], Vec::as_slice)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// The chunk size this tree was built with.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Produces an inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) {
                level.get(i + 1).map(|h| (Side::Right, h.clone()))
            } else {
                Some((Side::Left, level[i - 1].clone()))
            };
            siblings.push(sibling);
            i /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

impl MerkleProof {
    /// Verifies that `chunk` is the `self.index`-th chunk of the object
    /// committed to by `root`.
    pub fn verify(&self, alg: HashAlg, chunk: &[u8], root: &[u8]) -> bool {
        let mut acc = leaf_hash(alg, chunk);
        for sibling in &self.siblings {
            acc = match sibling {
                Some((Side::Right, h)) => node_hash(alg, &acc, h),
                Some((Side::Left, h)) => node_hash(alg, h, &acc),
                None => acc, // promoted odd node
            };
        }
        acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALG: HashAlg = HashAlg::Sha256;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 % 256) as u8).collect()
    }

    #[test]
    fn single_chunk_tree() {
        let data = sample(10);
        let t = MerkleTree::build(ALG, &data, 64);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.root(), leaf_hash(ALG, &data).as_slice());
        let p = t.prove(0).unwrap();
        assert!(p.verify(ALG, &data, t.root()));
    }

    #[test]
    fn empty_data_has_stable_root() {
        let t1 = MerkleTree::build(ALG, &[], 64);
        let t2 = MerkleTree::build(ALG, &[], 1024);
        assert_eq!(t1.root(), t2.root());
        assert_eq!(t1.leaf_count(), 1);
        assert!(t1.prove(0).unwrap().verify(ALG, &[], t1.root()));
    }

    #[test]
    fn all_proofs_verify_various_shapes() {
        // Power of two, odd, prime leaf counts.
        for (len, chunk) in [(256usize, 64usize), (300, 64), (777, 100), (1024, 1)] {
            let data = sample(len);
            let t = MerkleTree::build(ALG, &data, chunk);
            for (i, c) in data.chunks(chunk).enumerate() {
                let p = t.prove(i).unwrap();
                assert!(p.verify(ALG, c, t.root()), "len={len} chunk={chunk} i={i}");
            }
        }
    }

    #[test]
    fn wrong_chunk_or_index_rejected() {
        let data = sample(512);
        let t = MerkleTree::build(ALG, &data, 64);
        let p = t.prove(2).unwrap();
        let chunks: Vec<&[u8]> = data.chunks(64).collect();
        assert!(p.verify(ALG, chunks[2], t.root()));
        assert!(!p.verify(ALG, chunks[3], t.root()), "wrong chunk");
        let mut corrupted = chunks[2].to_vec();
        corrupted[0] ^= 1;
        assert!(!p.verify(ALG, &corrupted, t.root()), "corrupted chunk");
        let p3 = t.prove(3).unwrap();
        assert!(!p3.verify(ALG, chunks[2], t.root()), "proof for another index");
    }

    #[test]
    fn root_changes_with_any_byte() {
        let data = sample(1000);
        let t = MerkleTree::build(ALG, &data, 128);
        for i in [0usize, 127, 128, 999] {
            let mut d = data.clone();
            d[i] ^= 1;
            let t2 = MerkleTree::build(ALG, &d, 128);
            assert_ne!(t.root(), t2.root(), "flip at {i}");
        }
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A crafted "chunk" equal to an interior node's preimage must not
        // collide with that node.
        let data = sample(128);
        let t = MerkleTree::build(ALG, &data, 64);
        let l0 = leaf_hash(ALG, &data[..64]);
        let l1 = leaf_hash(ALG, &data[64..]);
        let mut forged_chunk = Vec::new();
        forged_chunk.extend_from_slice(&l0);
        forged_chunk.extend_from_slice(&l1);
        assert_ne!(leaf_hash(ALG, &forged_chunk), t.root().to_vec());
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::build(ALG, &sample(100), 10);
        assert!(t.prove(10).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        MerkleTree::build(ALG, &[1], 0);
    }

    #[test]
    fn parallel_and_serial_leaf_hashing_agree_byte_for_byte() {
        // Above PARALLEL_LEAF_THRESHOLD leaves hash on worker threads; the
        // tree must be indistinguishable from a serial build. Compare
        // against a tree built leaf-by-leaf with the same primitives, on
        // shapes that cross the threshold with even and ragged last chunks.
        for (len, chunk) in [
            (PARALLEL_LEAF_THRESHOLD, 4096usize),
            (PARALLEL_LEAF_THRESHOLD + 77, 4096),
            (3 * PARALLEL_LEAF_THRESHOLD + 1, 1000),
        ] {
            let data = sample(len);
            let par = MerkleTree::build(ALG, &data, chunk);
            let serial_leaves: Vec<Vec<u8>> =
                data.chunks(chunk).map(|c| leaf_hash(ALG, c)).collect();
            assert_eq!(par.levels[0], serial_leaves, "len={len} chunk={chunk}");
            // And the root matches a small-input (serial-path) build of the
            // same levels: fold the serial leaves up by hand.
            let mut level = serial_leaves;
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|p| if p.len() == 2 { node_hash(ALG, &p[0], &p[1]) } else { p[0].clone() })
                    .collect();
            }
            assert_eq!(par.root(), level[0].as_slice(), "len={len} chunk={chunk}");
        }
    }

    #[test]
    fn works_with_md5_too() {
        let data = sample(300);
        let t = MerkleTree::build(HashAlg::Md5, &data, 50);
        for (i, c) in data.chunks(50).enumerate() {
            assert!(t.prove(i).unwrap().verify(HashAlg::Md5, c, t.root()));
        }
    }
}
