//! ChaCha20 stream cipher (RFC 8439 quarter-round core).
//!
//! Two uses in the workspace: (1) the symmetric half of the hybrid
//! public-key envelope that encrypts TPNR evidence for the recipient
//! (paper §4.1 "the sender encrypts the evidence with the recipient's
//! public key" — done hybrid for realistic payload sizes), and (2) the
//! deterministic CSPRNG in [`crate::rng`].

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte keystream block for (key, nonce, counter).
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the keystream starting at block `counter`
/// (encryption and decryption are the same operation).
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, nonce, counter.wrapping_add(i as u32));
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: returns the encryption of `data` (counter starts at 1, per
/// RFC 8439 AEAD convention, leaving block 0 for a one-time MAC key).
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, nonce, 1, &mut out);
    out
}

/// Decryption (identical to [`encrypt`]).
pub fn decrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::hex_encode;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, &nonce, 1);
        assert_eq!(
            hex_encode(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(
            hex_encode(&ct[..64]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        );
        assert_eq!(decrypt(&key, &nonce, &ct), plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        for n in [0usize, 1, 63, 64, 65, 128, 1000] {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            assert_eq!(decrypt(&key, &nonce, &encrypt(&key, &nonce, &data)), data);
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; 32];
        let a = encrypt(&key, &[0u8; 12], &[0u8; 32]);
        let b = encrypt(&key, &[1u8; 12], &[0u8; 32]);
        assert_ne!(a, b);
    }
}
