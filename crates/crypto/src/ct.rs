//! Constant-time helpers.
//!
//! MAC and padding checks must not leak *where* two byte strings diverge
//! through timing; all comparison of secrets in this workspace goes through
//! [`eq`]. The `tpnr-lint` CT-CMP rule enforces this mechanically: raw
//! `==` / `!=` on digest/MAC/signature values outside this module is a
//! CI failure.

/// Constant-time byte-slice equality.
///
/// Always inspects every byte of both slices (when lengths match); the
/// length comparison itself is public information.
#[inline]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Reduce without a data-dependent branch.
    acc == 0
}

/// Constant-time conditional select: returns `a` if `choice` is 1, `b` if 0.
#[inline]
pub fn ct_select_u8(choice: u8, a: u8, b: u8) -> u8 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0x00 or 0xFF
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"", b"a"));
    }

    #[test]
    fn eq_differs_anywhere() {
        let a = vec![0u8; 64];
        for i in 0..64 {
            let mut b = a.clone();
            b[i] ^= 1;
            assert!(!eq(&a, &b), "difference at {i} missed");
        }
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u8(1, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select_u8(0, 0xaa, 0x55), 0x55);
    }
}
