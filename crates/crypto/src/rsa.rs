//! RSA: key generation, PKCS#1 v1.5 signatures and encryption.
//!
//! The TPNR evidence of paper §4.1 is
//! `Encrypt_pk(recipient){ Sign_sk(sender)(H(data)), Sign_sk(sender)(plaintext) }`:
//! signatures give non-repudiation (only the holder of the private key could
//! have produced them) and the public-key envelope gives confidentiality of
//! the evidence in transit. PKCS#1 v1.5 is the scheme SSL/TLS of the paper's
//! era actually used.
//!
//! Implementation notes: raw RSA runs on [`BigUint`] Montgomery
//! exponentiation; private-key operations use the CRT speed-up. This is a
//! faithful, test-vectored implementation but is **not** hardened against
//! local side channels — see README "Security status".

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::hash::HashAlg;
use crate::limbs::{FixedMontgomeryCtx, FixedUint};
use crate::prime::gen_prime;
use crate::rng::ChaChaRng;

/// Standard RSA public exponent (F4).
pub const E: u64 = 65537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey").field("bits", &self.public.bits()).finish_non_exhaustive()
    }
}

/// A public/private key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half, freely distributable.
    pub public: RsaPublicKey,
    /// The private half.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Constructs from raw components (big-endian byte strings).
    pub fn from_components(n: &[u8], e: &[u8]) -> Self {
        RsaPublicKey { n: BigUint::from_bytes_be(n), e: BigUint::from_bytes_be(e) }
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Modulus size in bytes (k in PKCS#1 terms).
    pub fn size(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Big-endian modulus bytes.
    pub fn n_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Big-endian exponent bytes.
    pub fn e_bytes(&self) -> Vec<u8> {
        self.e.to_bytes_be()
    }

    /// A stable fingerprint of the key (SHA-256 of `len(n) ‖ n ‖ e`),
    /// used as a principal identifier in the protocol layer.
    pub fn fingerprint(&self) -> [u8; 32] {
        use crate::hash::Digest as _;
        let mut h = crate::sha2::Sha256::default();
        let n = self.n_bytes();
        h.update(&(n.len() as u64).to_be_bytes());
        h.update(&n);
        h.update(&self.e_bytes());
        let v = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    fn raw_encrypt(&self, m: &BigUint) -> BigUint {
        m.mod_pow(&self.e, &self.n)
    }

    /// PKCS#1 v1.5 signature verification over `message` hashed with `alg`.
    pub fn verify(
        &self,
        alg: HashAlg,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        self.verify_prehashed(alg, &alg.hash(message), signature)
    }

    /// Verification when the caller already hashed the message.
    pub fn verify_prehashed(
        &self,
        alg: HashAlg,
        digest: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.size();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength);
        }
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::BadSignature);
        }
        let em = self.raw_encrypt(&s);
        let em_bytes = em.to_bytes_be_padded(k).ok_or(CryptoError::BadSignature)?;
        let expected = emsa_pkcs1_v15(alg, digest, k)?;
        if crate::ct::eq(&em_bytes, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// PKCS#1 v1.5 (type 2) encryption of a short message.
    ///
    /// Maximum plaintext length is `k - 11` bytes; longer payloads go
    /// through the hybrid [`crate::envelope`].
    pub fn encrypt(&self, rng: &mut ChaChaRng, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.size();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong);
        }
        // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..k - msg.len() - 3 {
            loop {
                let b = rng.gen_bytes(1).first().copied().unwrap_or(0);
                if b != 0 {
                    em.push(b);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        let c = self.raw_encrypt(&m);
        // c < n < 2^(8k) by construction; a failure here is a library bug,
        // surfaced as a typed error rather than a panic (NO-PANIC-PATH).
        c.to_bytes_be_padded(k).ok_or(CryptoError::Internal("ciphertext exceeds modulus width"))
    }

    /// Verification through the pre-fixed-limb `Vec`-backed per-bit
    /// Montgomery path. Kept as the differential-testing and benchmarking
    /// baseline (experiment E12); byte-for-byte the same accept/reject
    /// behaviour as [`RsaPublicKey::verify_prehashed`], only slower.
    pub fn verify_prehashed_reference(
        &self,
        alg: HashAlg,
        digest: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.size();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength);
        }
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::BadSignature);
        }
        let em = s.mod_pow_classic(&self.e, &self.n);
        let em_bytes = em.to_bytes_be_padded(k).ok_or(CryptoError::BadSignature)?;
        let expected = emsa_pkcs1_v15(alg, digest, k)?;
        if crate::ct::eq(&em_bytes, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Verifies `items.len()` (digest, signature) pairs under this key in
    /// one randomized-linear-combination pass.
    ///
    /// Instead of `n` independent exponentiations the batch draws sparse
    /// random exponents `r_i` (4 set bits out of 32, ≈15 bits of entropy
    /// each) from `rng` and checks
    ///
    /// ```text
    ///   (Π s_i^{r_i})^e  ==  Π em_i^{r_i}   (mod n)
    /// ```
    ///
    /// with both products sharing one interleaved (Straus) squaring chain,
    /// so the amortized cost per item is a handful of Montgomery multiplies
    /// instead of a full `s^e`. If every signature is valid the identity
    /// holds exactly; a batch containing any forgery fails with probability
    /// ≥ 1 − 2⁻¹⁵ per draw, and on failure the batch **falls back to the
    /// serial per-item verify**, so the attributed index and error are
    /// exactly what a serial loop would have produced. Structural defects
    /// (bad lengths, out-of-range signatures) skip the aggregate pass and go
    /// straight to the serial loop for the same reason.
    ///
    /// The exponents must be unpredictable to whoever produced the
    /// signatures: callers pass their own seeded [`ChaChaRng`] (in the
    /// deterministic simulation, the verifying actor's RNG — replays stay
    /// bit-identical). See DESIGN.md §4.13 for the soundness argument and
    /// the `s → n−s` caveat inherited from small-exponent batch tests.
    pub fn verify_batch(
        &self,
        items: &[BatchItem<'_>],
        rng: &mut ChaChaRng,
    ) -> Result<(), BatchVerifyError> {
        if items.len() < BATCH_MIN {
            return self.verify_all_serial(items);
        }
        let k = self.size();
        let mut sigs = Vec::with_capacity(items.len());
        let mut ems = Vec::with_capacity(items.len());
        for it in items {
            if it.signature.len() != k || it.digest.len() != it.alg.output_len() {
                return self.verify_all_serial(items);
            }
            let s = BigUint::from_bytes_be(it.signature);
            if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
                return self.verify_all_serial(items);
            }
            let Ok(em) = emsa_pkcs1_v15(it.alg, it.digest, k) else {
                return self.verify_all_serial(items);
            };
            sigs.push(s);
            ems.push(BigUint::from_bytes_be(&em));
        }
        let rs: Vec<u32> = items.iter().map(|_| sparse_exponent(rng)).collect();
        let agg = match self.n.limbs().len() {
            0..=4 => self.batch_check_fixed::<4>(&sigs, &ems, &rs),
            5..=8 => self.batch_check_fixed::<8>(&sigs, &ems, &rs),
            9..=16 => self.batch_check_fixed::<16>(&sigs, &ems, &rs),
            17..=32 => self.batch_check_fixed::<32>(&sigs, &ems, &rs),
            _ => None,
        };
        match agg {
            Some(true) => Ok(()),
            // Aggregate failed (some item is bad) or the modulus does not
            // fit a fixed kernel: serial attribution either way.
            Some(false) | None => self.verify_all_serial(items),
        }
    }

    /// The serial fallback: per-item [`Self::verify_prehashed`] in batch
    /// order, attributing the first failure.
    fn verify_all_serial(&self, items: &[BatchItem<'_>]) -> Result<(), BatchVerifyError> {
        for (index, it) in items.iter().enumerate() {
            if let Err(error) = self.verify_prehashed(it.alg, it.digest, it.signature) {
                return Err(BatchVerifyError { index, error });
            }
        }
        Ok(())
    }

    /// One randomized aggregate check through the `N`-limb fixed kernel.
    /// `None` when the modulus does not qualify for width `N`.
    fn batch_check_fixed<const N: usize>(
        &self,
        sigs: &[BigUint],
        ems: &[BigUint],
        rs: &[u32],
    ) -> Option<bool> {
        let ctx = FixedMontgomeryCtx::<N>::new(&self.n)?;
        let mut sig_m = Vec::with_capacity(sigs.len());
        for s in sigs {
            sig_m.push(ctx.to_mont(&FixedUint::from_biguint(s)?));
        }
        let mut em_m = Vec::with_capacity(ems.len());
        for em in ems {
            em_m.push(ctx.to_mont(&FixedUint::from_biguint(em)?));
        }
        // Straus interleaving: one shared 32-step squaring chain drives both
        // products; each item contributes at the 4 set bits of its exponent.
        let mut acc_a = ctx.one();
        let mut acc_b = ctx.one();
        for bit in (0..SPARSE_EXP_BITS).rev() {
            acc_a = ctx.mul(&acc_a, &acc_a);
            acc_b = ctx.mul(&acc_b, &acc_b);
            for (i, &r) in rs.iter().enumerate() {
                if r & (1u32 << bit) != 0 {
                    acc_a = ctx.mul(&acc_a, &sig_m[i]);
                    acc_b = ctx.mul(&acc_b, &em_m[i]);
                }
            }
        }
        // Montgomery forms are canonical (< n), so comparing them directly
        // is comparing the underlying values.
        let lhs = ctx.pow_mont(&acc_a, &self.e);
        Some(lhs == acc_b)
    }
}

/// Minimum batch size below which [`RsaPublicKey::verify_batch`] just runs
/// the serial loop (the aggregate's fixed costs dominate tiny batches).
const BATCH_MIN: usize = 4;

/// Bit width of the sparse batch exponents.
const SPARSE_EXP_BITS: u32 = 32;

/// Set bits per sparse batch exponent (entropy ≈ log₂ C(32,4) ≈ 15.1 bits).
const SPARSE_EXP_WEIGHT: u32 = 4;

/// Draws a sparse random exponent: exactly [`SPARSE_EXP_WEIGHT`] distinct
/// set bits among [`SPARSE_EXP_BITS`] positions. 256 is a multiple of 32,
/// so the byte-modulo position draw is exactly uniform.
fn sparse_exponent(rng: &mut ChaChaRng) -> u32 {
    let mut r = 0u32;
    while r.count_ones() < SPARSE_EXP_WEIGHT {
        let pos = u32::from(rng.gen_bytes(1).first().copied().unwrap_or(0)) % SPARSE_EXP_BITS;
        r |= 1u32 << pos;
    }
    r
}

/// One (digest, signature) pair for [`RsaPublicKey::verify_batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// Hash algorithm the digest was produced with.
    pub alg: HashAlg,
    /// The already-computed message digest.
    pub digest: &'a [u8],
    /// The PKCS#1 v1.5 signature to check.
    pub signature: &'a [u8],
}

/// A batch verification failure attributed to one item, with the exact
/// error the serial per-item verify produced for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchVerifyError {
    /// Index of the first failing item in batch order.
    pub index: usize,
    /// That item's serial verification error.
    pub error: CryptoError,
}

impl std::fmt::Display for BatchVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch item {} failed: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchVerifyError {}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw private-key operation without the CRT (`c^d mod n`); used to
    /// cross-check the CRT path in tests.
    pub fn raw_decrypt_no_crt(&self, c: &BigUint) -> BigUint {
        c.mod_pow(&self.d, &self.public.n)
    }

    /// Raw private-key operation using the CRT.
    fn raw_decrypt(&self, c: &BigUint) -> BigUint {
        // m1 = c^dp mod p; m2 = c^dq mod q; h = qinv (m1 - m2) mod p
        let m1 = c.rem(&self.p).mod_pow(&self.dp, &self.p);
        let m2 = c.rem(&self.q).mod_pow(&self.dq, &self.q);
        let h = m1.sub_mod(&m2.rem(&self.p), &self.p).mul_mod(&self.qinv, &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// PKCS#1 v1.5 signature over `message` hashed with `alg`.
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.sign_prehashed(alg, &alg.hash(message))
    }

    /// Signing when the caller already hashed the message.
    pub fn sign_prehashed(&self, alg: HashAlg, digest: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let k = self.public.size();
        let em = emsa_pkcs1_v15(alg, digest, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.raw_decrypt(&m);
        // s < n < 2^(8k) by construction; a failure here is a library bug,
        // surfaced as a typed error rather than a panic (NO-PANIC-PATH).
        s.to_bytes_be_padded(k).ok_or(CryptoError::Internal("signature exceeds modulus width"))
    }

    /// Signing through the pre-fixed-limb `Vec`-backed per-bit Montgomery
    /// path. Kept as the differential-testing and benchmarking baseline
    /// (experiment E12): the proptests assert it produces **byte-identical**
    /// signatures to [`Self::sign_prehashed`].
    pub fn sign_prehashed_reference(
        &self,
        alg: HashAlg,
        digest: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let k = self.public.size();
        let em = emsa_pkcs1_v15(alg, digest, k)?;
        let m = BigUint::from_bytes_be(&em);
        // CRT recombination identical to raw_decrypt, with both halves on
        // the classic per-bit Vec path.
        let m1 = m.rem(&self.p).mod_pow_classic(&self.dp, &self.p);
        let m2 = m.rem(&self.q).mod_pow_classic(&self.dq, &self.q);
        let h = m1.sub_mod(&m2.rem(&self.p), &self.p).mul_mod(&self.qinv, &self.p);
        let s = m2.add(&h.mul(&self.q));
        s.to_bytes_be_padded(k).ok_or(CryptoError::Internal("signature exceeds modulus width"))
    }

    /// PKCS#1 v1.5 (type 2) decryption.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.size();
        if ciphertext.len() != k || k < 11 {
            return Err(CryptoError::InvalidLength);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c.cmp_big(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::InvalidLength);
        }
        let m = self.raw_decrypt(&c);
        let em = m.to_bytes_be_padded(k).ok_or(CryptoError::InvalidPadding)?;
        // EM = 0x00 || 0x02 || PS || 0x00 || M with |PS| >= 8.
        let [0x00, 0x02, body @ ..] = em.as_slice() else {
            return Err(CryptoError::InvalidPadding);
        };
        let sep = body.iter().position(|&b| b == 0).ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            return Err(CryptoError::InvalidPadding);
        }
        Ok(body[sep + 1..].to_vec())
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be even and ≥ 512. 1024 matches the paper's era; tests use
    /// 512 or the fixed test keys for speed.
    pub fn generate(bits: usize, rng: &mut ChaChaRng) -> Self {
        assert!(bits >= 512 && bits.is_multiple_of(2), "unsupported RSA size {bits}");
        let e = BigUint::from_u64(E);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            if let Some(kp) = Self::from_primes(p, q) {
                if kp.public.bits() == bits {
                    debug_assert_eq!(kp.public.e, e);
                    return kp;
                }
            }
        }
    }

    /// Builds a key pair from two primes; returns `None` if `e` is not
    /// invertible mod φ(n) (caller retries with fresh primes).
    pub fn from_primes(p: BigUint, q: BigUint) -> Option<Self> {
        let one = BigUint::one();
        let n = p.mul(&q);
        let phi = p.sub(&one).mul(&q.sub(&one));
        let e = BigUint::from_u64(E);
        let d = e.mod_inverse(&phi)?;
        let dp = d.rem(&p.sub(&one));
        let dq = d.rem(&q.sub(&one));
        let qinv = q.mod_inverse(&p)?;
        // Keep p > q so CRT recombination in raw_decrypt stays simple.
        let (p, q, dp, dq, qinv) = if p.cmp_big(&q) == std::cmp::Ordering::Less {
            let qinv2 = p.mod_inverse(&q)?;
            (q.clone(), p, dq, dp, qinv2)
        } else {
            (p, q, dp, dq, qinv)
        };
        Some(RsaKeyPair {
            public: RsaPublicKey { n: n.clone(), e: e.clone() },
            private: RsaPrivateKey { public: RsaPublicKey { n, e }, d, p, q, dp, dq, qinv },
        })
    }

    /// A deterministic 512-bit key pair derived from `seed`, for tests and
    /// simulations. **Never** use outside tests.
    pub fn insecure_test_key(seed: u64) -> Self {
        let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x7057_4e52_6b65_7973); // "pTNRkeys"
        Self::generate(512, &mut rng)
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo(hash)`.
///
/// DigestInfo prefixes are the standard DER encodings from RFC 8017 §9.2.
fn emsa_pkcs1_v15(alg: HashAlg, digest: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let prefix: &[u8] = match alg {
        HashAlg::Md5 => &[
            0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05,
            0x05, 0x00, 0x04, 0x10,
        ],
        HashAlg::Sha1 => &[
            0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
            0x14,
        ],
        HashAlg::Sha256 => &[
            0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x01, 0x05, 0x00, 0x04, 0x20,
        ],
        HashAlg::Sha512 => &[
            0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x03, 0x05, 0x00, 0x04, 0x40,
        ],
    };
    let t_len = prefix.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(digest);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> RsaKeyPair {
        RsaKeyPair::insecure_test_key(1)
    }

    #[test]
    fn keygen_produces_working_pair() {
        let kp = test_key();
        assert_eq!(kp.public.bits(), 512);
        assert_eq!(kp.public, *kp.private.public());
    }

    #[test]
    fn sign_verify_roundtrip_all_algs() {
        let kp = test_key();
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            let sig = kp.private.sign(alg, b"the financial data").unwrap();
            kp.public.verify(alg, b"the financial data", &sig).unwrap();
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"original").unwrap();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = test_key();
        let mut sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        sig[10] ^= 0x40;
        assert_eq!(kp.public.verify(HashAlg::Sha256, b"m", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = RsaKeyPair::insecure_test_key(1);
        let kp2 = RsaKeyPair::insecure_test_key(2);
        let sig = kp1.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert!(kp2.public.verify(HashAlg::Sha256, b"m", &sig).is_err());
    }

    #[test]
    fn wrong_hash_alg_rejected() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert!(kp.public.verify(HashAlg::Md5, b"m", &sig).is_err());
    }

    #[test]
    fn signature_length_enforced() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"m", &sig[..sig.len() - 1]),
            Err(CryptoError::InvalidLength)
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(9);
        for msg in [&b""[..], b"x", b"a 32-byte session key goes here!"] {
            let ct = kp.public.encrypt(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), kp.public.size());
            assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(10);
        let a = kp.public.encrypt(&mut rng, b"same").unwrap();
        let b = kp.public.encrypt(&mut rng, b"same").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(11);
        let too_long = vec![0u8; kp.public.size() - 10];
        assert_eq!(kp.public.encrypt(&mut rng, &too_long), Err(CryptoError::MessageTooLong));
    }

    #[test]
    fn corrupted_ciphertext_rejected() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(12);
        let mut ct = kp.public.encrypt(&mut rng, b"secret").unwrap();
        ct[0] ^= 1;
        // Either padding failure or a garbage plaintext — it must not be the
        // original. (PKCS#1 v1.5 decryption can't authenticate.)
        if let Ok(pt) = kp.private.decrypt(&ct) {
            assert_ne!(pt, b"secret")
        }
    }

    #[test]
    fn fingerprint_stable_and_distinct() {
        let kp1 = RsaKeyPair::insecure_test_key(1);
        let kp2 = RsaKeyPair::insecure_test_key(2);
        assert_eq!(kp1.public.fingerprint(), kp1.public.fingerprint());
        assert_ne!(kp1.public.fingerprint(), kp2.public.fingerprint());
    }

    #[test]
    fn components_roundtrip() {
        let kp = test_key();
        let pk = RsaPublicKey::from_components(&kp.public.n_bytes(), &kp.public.e_bytes());
        assert_eq!(pk, kp.public);
    }

    #[test]
    fn debug_does_not_leak_private_key() {
        let kp = test_key();
        let s = format!("{:?}", kp.private);
        assert!(!s.contains(&crate::encoding::hex_encode(&kp.private.d.to_bytes_be())));
        assert!(s.contains("bits"));
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = test_key();
        for v in [2u64, 12345, 0xffff_ffff] {
            let c = BigUint::from_u64(v);
            assert_eq!(kp.private.raw_decrypt(&c), kp.private.raw_decrypt_no_crt(&c));
        }
    }

    #[test]
    fn reference_paths_match_fast_paths() {
        let kp = test_key();
        let digest = HashAlg::Sha256.hash(b"differential");
        let fast = kp.private.sign_prehashed(HashAlg::Sha256, &digest).unwrap();
        let slow = kp.private.sign_prehashed_reference(HashAlg::Sha256, &digest).unwrap();
        assert_eq!(fast, slow, "old and new exponentiation paths must agree byte-for-byte");
        kp.public.verify_prehashed_reference(HashAlg::Sha256, &digest, &fast).unwrap();
        let mut bad = fast.clone();
        bad[7] ^= 1;
        assert_eq!(
            kp.public.verify_prehashed_reference(HashAlg::Sha256, &digest, &bad),
            Err(CryptoError::BadSignature)
        );
    }

    fn batch_of(kp: &RsaKeyPair, msgs: &[Vec<u8>]) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let digests: Vec<Vec<u8>> = msgs.iter().map(|m| HashAlg::Sha256.hash(m)).collect();
        let sigs: Vec<Vec<u8>> = digests
            .iter()
            .map(|d| kp.private.sign_prehashed(HashAlg::Sha256, d).unwrap())
            .collect();
        (digests, sigs)
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let kp = test_key();
        let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 20]).collect();
        let (digests, sigs) = batch_of(&kp, &msgs);
        let items: Vec<BatchItem<'_>> = digests
            .iter()
            .zip(&sigs)
            .map(|(d, s)| BatchItem { alg: HashAlg::Sha256, digest: d, signature: s })
            .collect();
        let mut rng = ChaChaRng::seed_from_u64(42);
        kp.public.verify_batch(&items, &mut rng).unwrap();
    }

    #[test]
    fn batch_verify_attributes_tampered_signature() {
        let kp = test_key();
        let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 20]).collect();
        let (digests, mut sigs) = batch_of(&kp, &msgs);
        sigs[11][5] ^= 0x20;
        let items: Vec<BatchItem<'_>> = digests
            .iter()
            .zip(&sigs)
            .map(|(d, s)| BatchItem { alg: HashAlg::Sha256, digest: d, signature: s })
            .collect();
        let mut rng = ChaChaRng::seed_from_u64(43);
        let err = kp.public.verify_batch(&items, &mut rng).unwrap_err();
        assert_eq!(err.index, 11);
        assert_eq!(err.error, CryptoError::BadSignature);
    }

    #[test]
    fn batch_verify_structural_defect_matches_serial_order() {
        // Item 2 is a semantic forgery, item 5 has a bad length. A serial
        // loop reports item 2 first; the batch must do the same.
        let kp = test_key();
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 9]).collect();
        let (digests, mut sigs) = batch_of(&kp, &msgs);
        sigs[2][0] ^= 1;
        sigs[5].pop();
        let items: Vec<BatchItem<'_>> = digests
            .iter()
            .zip(&sigs)
            .map(|(d, s)| BatchItem { alg: HashAlg::Sha256, digest: d, signature: s })
            .collect();
        let mut rng = ChaChaRng::seed_from_u64(44);
        let err = kp.public.verify_batch(&items, &mut rng).unwrap_err();
        assert_eq!(err.index, 2);
    }

    #[test]
    fn batch_verify_small_batches_and_empty() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(45);
        kp.public.verify_batch(&[], &mut rng).unwrap();
        let digest = HashAlg::Sha256.hash(b"solo");
        let sig = kp.private.sign_prehashed(HashAlg::Sha256, &digest).unwrap();
        let item = BatchItem { alg: HashAlg::Sha256, digest: &digest, signature: &sig };
        kp.public.verify_batch(&[item], &mut rng).unwrap();
        let bad = BatchItem { alg: HashAlg::Md5, digest: &digest, signature: &sig };
        assert!(kp.public.verify_batch(&[bad], &mut rng).is_err());
    }

    #[test]
    fn batch_verify_mixed_algs() {
        let kp = test_key();
        let mut items_data: Vec<(HashAlg, Vec<u8>, Vec<u8>)> = Vec::new();
        for (i, alg) in
            [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256].iter().cycle().take(12).enumerate()
        {
            let digest = alg.hash(&[i as u8; 33]);
            let sig = kp.private.sign_prehashed(*alg, &digest).unwrap();
            items_data.push((*alg, digest, sig));
        }
        let items: Vec<BatchItem<'_>> = items_data
            .iter()
            .map(|(alg, d, s)| BatchItem { alg: *alg, digest: d, signature: s })
            .collect();
        let mut rng = ChaChaRng::seed_from_u64(46);
        kp.public.verify_batch(&items, &mut rng).unwrap();
    }

    #[test]
    fn sparse_exponents_have_fixed_weight() {
        let mut rng = ChaChaRng::seed_from_u64(47);
        for _ in 0..200 {
            let r = sparse_exponent(&mut rng);
            assert_eq!(r.count_ones(), SPARSE_EXP_WEIGHT);
        }
    }

    #[test]
    fn larger_keygen_1024() {
        let mut rng = ChaChaRng::seed_from_u64(77);
        let kp = RsaKeyPair::generate(1024, &mut rng);
        assert_eq!(kp.public.bits(), 1024);
        let sig = kp.private.sign(HashAlg::Sha256, b"big").unwrap();
        kp.public.verify(HashAlg::Sha256, b"big", &sig).unwrap();
    }
}
