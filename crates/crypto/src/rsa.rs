//! RSA: key generation, PKCS#1 v1.5 signatures and encryption.
//!
//! The TPNR evidence of paper §4.1 is
//! `Encrypt_pk(recipient){ Sign_sk(sender)(H(data)), Sign_sk(sender)(plaintext) }`:
//! signatures give non-repudiation (only the holder of the private key could
//! have produced them) and the public-key envelope gives confidentiality of
//! the evidence in transit. PKCS#1 v1.5 is the scheme SSL/TLS of the paper's
//! era actually used.
//!
//! Implementation notes: raw RSA runs on [`BigUint`] Montgomery
//! exponentiation; private-key operations use the CRT speed-up. This is a
//! faithful, test-vectored implementation but is **not** hardened against
//! local side channels — see README "Security status".

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::hash::HashAlg;
use crate::prime::gen_prime;
use crate::rng::ChaChaRng;

/// Standard RSA public exponent (F4).
pub const E: u64 = 65537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey").field("bits", &self.public.bits()).finish_non_exhaustive()
    }
}

/// A public/private key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half, freely distributable.
    pub public: RsaPublicKey,
    /// The private half.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Constructs from raw components (big-endian byte strings).
    pub fn from_components(n: &[u8], e: &[u8]) -> Self {
        RsaPublicKey { n: BigUint::from_bytes_be(n), e: BigUint::from_bytes_be(e) }
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Modulus size in bytes (k in PKCS#1 terms).
    pub fn size(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Big-endian modulus bytes.
    pub fn n_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Big-endian exponent bytes.
    pub fn e_bytes(&self) -> Vec<u8> {
        self.e.to_bytes_be()
    }

    /// A stable fingerprint of the key (SHA-256 of `len(n) ‖ n ‖ e`),
    /// used as a principal identifier in the protocol layer.
    pub fn fingerprint(&self) -> [u8; 32] {
        use crate::hash::Digest as _;
        let mut h = crate::sha2::Sha256::default();
        let n = self.n_bytes();
        h.update(&(n.len() as u64).to_be_bytes());
        h.update(&n);
        h.update(&self.e_bytes());
        let v = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    fn raw_encrypt(&self, m: &BigUint) -> BigUint {
        m.mod_pow(&self.e, &self.n)
    }

    /// PKCS#1 v1.5 signature verification over `message` hashed with `alg`.
    pub fn verify(
        &self,
        alg: HashAlg,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        self.verify_prehashed(alg, &alg.hash(message), signature)
    }

    /// Verification when the caller already hashed the message.
    pub fn verify_prehashed(
        &self,
        alg: HashAlg,
        digest: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.size();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength);
        }
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::BadSignature);
        }
        let em = self.raw_encrypt(&s);
        let em_bytes = em.to_bytes_be_padded(k).ok_or(CryptoError::BadSignature)?;
        let expected = emsa_pkcs1_v15(alg, digest, k)?;
        if crate::ct::eq(&em_bytes, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// PKCS#1 v1.5 (type 2) encryption of a short message.
    ///
    /// Maximum plaintext length is `k - 11` bytes; longer payloads go
    /// through the hybrid [`crate::envelope`].
    pub fn encrypt(&self, rng: &mut ChaChaRng, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.size();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong);
        }
        // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..k - msg.len() - 3 {
            loop {
                let b = rng.gen_bytes(1)[0];
                if b != 0 {
                    em.push(b);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        let c = self.raw_encrypt(&m);
        Ok(c.to_bytes_be_padded(k).expect("ciphertext fits modulus"))
    }
}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw private-key operation without the CRT (`c^d mod n`); used to
    /// cross-check the CRT path in tests.
    pub fn raw_decrypt_no_crt(&self, c: &BigUint) -> BigUint {
        c.mod_pow(&self.d, &self.public.n)
    }

    /// Raw private-key operation using the CRT.
    fn raw_decrypt(&self, c: &BigUint) -> BigUint {
        // m1 = c^dp mod p; m2 = c^dq mod q; h = qinv (m1 - m2) mod p
        let m1 = c.rem(&self.p).mod_pow(&self.dp, &self.p);
        let m2 = c.rem(&self.q).mod_pow(&self.dq, &self.q);
        let h = m1.sub_mod(&m2.rem(&self.p), &self.p).mul_mod(&self.qinv, &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// PKCS#1 v1.5 signature over `message` hashed with `alg`.
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.sign_prehashed(alg, &alg.hash(message))
    }

    /// Signing when the caller already hashed the message.
    pub fn sign_prehashed(&self, alg: HashAlg, digest: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if digest.len() != alg.output_len() {
            return Err(CryptoError::InvalidLength);
        }
        let k = self.public.size();
        let em = emsa_pkcs1_v15(alg, digest, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.raw_decrypt(&m);
        Ok(s.to_bytes_be_padded(k).expect("signature fits modulus"))
    }

    /// PKCS#1 v1.5 (type 2) decryption.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.size();
        if ciphertext.len() != k || k < 11 {
            return Err(CryptoError::InvalidLength);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c.cmp_big(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::InvalidLength);
        }
        let m = self.raw_decrypt(&c);
        let em = m.to_bytes_be_padded(k).ok_or(CryptoError::InvalidPadding)?;
        // EM = 0x00 || 0x02 || PS || 0x00 || M with |PS| >= 8.
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let sep = em[2..].iter().position(|&b| b == 0).ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            return Err(CryptoError::InvalidPadding);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be even and ≥ 512. 1024 matches the paper's era; tests use
    /// 512 or the fixed test keys for speed.
    pub fn generate(bits: usize, rng: &mut ChaChaRng) -> Self {
        assert!(bits >= 512 && bits.is_multiple_of(2), "unsupported RSA size {bits}");
        let e = BigUint::from_u64(E);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            if let Some(kp) = Self::from_primes(p, q) {
                if kp.public.bits() == bits {
                    debug_assert_eq!(kp.public.e, e);
                    return kp;
                }
            }
        }
    }

    /// Builds a key pair from two primes; returns `None` if `e` is not
    /// invertible mod φ(n) (caller retries with fresh primes).
    pub fn from_primes(p: BigUint, q: BigUint) -> Option<Self> {
        let one = BigUint::one();
        let n = p.mul(&q);
        let phi = p.sub(&one).mul(&q.sub(&one));
        let e = BigUint::from_u64(E);
        let d = e.mod_inverse(&phi)?;
        let dp = d.rem(&p.sub(&one));
        let dq = d.rem(&q.sub(&one));
        let qinv = q.mod_inverse(&p)?;
        // Keep p > q so CRT recombination in raw_decrypt stays simple.
        let (p, q, dp, dq, qinv) = if p.cmp_big(&q) == std::cmp::Ordering::Less {
            let qinv2 = p.mod_inverse(&q)?;
            (q.clone(), p, dq, dp, qinv2)
        } else {
            (p, q, dp, dq, qinv)
        };
        Some(RsaKeyPair {
            public: RsaPublicKey { n: n.clone(), e: e.clone() },
            private: RsaPrivateKey { public: RsaPublicKey { n, e }, d, p, q, dp, dq, qinv },
        })
    }

    /// A deterministic 512-bit key pair derived from `seed`, for tests and
    /// simulations. **Never** use outside tests.
    pub fn insecure_test_key(seed: u64) -> Self {
        let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x7057_4e52_6b65_7973); // "pTNRkeys"
        Self::generate(512, &mut rng)
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo(hash)`.
///
/// DigestInfo prefixes are the standard DER encodings from RFC 8017 §9.2.
fn emsa_pkcs1_v15(alg: HashAlg, digest: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let prefix: &[u8] = match alg {
        HashAlg::Md5 => &[
            0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05,
            0x05, 0x00, 0x04, 0x10,
        ],
        HashAlg::Sha1 => &[
            0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
            0x14,
        ],
        HashAlg::Sha256 => &[
            0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x01, 0x05, 0x00, 0x04, 0x20,
        ],
        HashAlg::Sha512 => &[
            0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x03, 0x05, 0x00, 0x04, 0x40,
        ],
    };
    let t_len = prefix.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(digest);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> RsaKeyPair {
        RsaKeyPair::insecure_test_key(1)
    }

    #[test]
    fn keygen_produces_working_pair() {
        let kp = test_key();
        assert_eq!(kp.public.bits(), 512);
        assert_eq!(kp.public, *kp.private.public());
    }

    #[test]
    fn sign_verify_roundtrip_all_algs() {
        let kp = test_key();
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            let sig = kp.private.sign(alg, b"the financial data").unwrap();
            kp.public.verify(alg, b"the financial data", &sig).unwrap();
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"original").unwrap();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = test_key();
        let mut sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        sig[10] ^= 0x40;
        assert_eq!(kp.public.verify(HashAlg::Sha256, b"m", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = RsaKeyPair::insecure_test_key(1);
        let kp2 = RsaKeyPair::insecure_test_key(2);
        let sig = kp1.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert!(kp2.public.verify(HashAlg::Sha256, b"m", &sig).is_err());
    }

    #[test]
    fn wrong_hash_alg_rejected() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert!(kp.public.verify(HashAlg::Md5, b"m", &sig).is_err());
    }

    #[test]
    fn signature_length_enforced() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"m").unwrap();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"m", &sig[..sig.len() - 1]),
            Err(CryptoError::InvalidLength)
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(9);
        for msg in [&b""[..], b"x", b"a 32-byte session key goes here!"] {
            let ct = kp.public.encrypt(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), kp.public.size());
            assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(10);
        let a = kp.public.encrypt(&mut rng, b"same").unwrap();
        let b = kp.public.encrypt(&mut rng, b"same").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(11);
        let too_long = vec![0u8; kp.public.size() - 10];
        assert_eq!(kp.public.encrypt(&mut rng, &too_long), Err(CryptoError::MessageTooLong));
    }

    #[test]
    fn corrupted_ciphertext_rejected() {
        let kp = test_key();
        let mut rng = ChaChaRng::seed_from_u64(12);
        let mut ct = kp.public.encrypt(&mut rng, b"secret").unwrap();
        ct[0] ^= 1;
        // Either padding failure or a garbage plaintext — it must not be the
        // original. (PKCS#1 v1.5 decryption can't authenticate.)
        if let Ok(pt) = kp.private.decrypt(&ct) {
            assert_ne!(pt, b"secret")
        }
    }

    #[test]
    fn fingerprint_stable_and_distinct() {
        let kp1 = RsaKeyPair::insecure_test_key(1);
        let kp2 = RsaKeyPair::insecure_test_key(2);
        assert_eq!(kp1.public.fingerprint(), kp1.public.fingerprint());
        assert_ne!(kp1.public.fingerprint(), kp2.public.fingerprint());
    }

    #[test]
    fn components_roundtrip() {
        let kp = test_key();
        let pk = RsaPublicKey::from_components(&kp.public.n_bytes(), &kp.public.e_bytes());
        assert_eq!(pk, kp.public);
    }

    #[test]
    fn debug_does_not_leak_private_key() {
        let kp = test_key();
        let s = format!("{:?}", kp.private);
        assert!(!s.contains(&crate::encoding::hex_encode(&kp.private.d.to_bytes_be())));
        assert!(s.contains("bits"));
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = test_key();
        for v in [2u64, 12345, 0xffff_ffff] {
            let c = BigUint::from_u64(v);
            assert_eq!(kp.private.raw_decrypt(&c), kp.private.raw_decrypt_no_crt(&c));
        }
    }

    #[test]
    fn larger_keygen_1024() {
        let mut rng = ChaChaRng::seed_from_u64(77);
        let kp = RsaKeyPair::generate(1024, &mut rng);
        assert_eq!(kp.public.bits(), 1024);
        let sig = kp.private.sign(HashAlg::Sha256, b"big").unwrap();
        kp.public.verify(HashAlg::Sha256, b"big", &sig).unwrap();
    }
}
