//! Shamir secret sharing over GF(2⁸).
//!
//! Paper §3.2/§3.4: the "SKS" (Secret Key Sharing) bridging schemes split the
//! agreed MD5 between the user and the provider (and optionally the TAC) so
//! that a dispute can only be settled with both halves present — neither
//! party can unilaterally forge the agreed checksum.
//!
//! Each secret byte is shared independently with a random polynomial of
//! degree `k-1`; share `i` is the polynomial evaluated at `x = i` (`x = 0`
//! is the secret itself and is never issued).

use crate::error::CryptoError;
use crate::rng::ChaChaRng;

/// One participant's share: the evaluation point and one byte per secret
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (1..=255); doubles as the share index.
    pub x: u8,
    /// `y_j = P_j(x)` for each secret byte `j`.
    pub y: Vec<u8>,
}

/// GF(2⁸) multiplication with the AES polynomial x⁸+x⁴+x³+x+1 (0x11b).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// GF(2⁸) multiplicative inverse (a ≠ 0) via a^254.
fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "no inverse of 0 in GF(256)");
    // a^254 by square-and-multiply (exponent 254 = 0b11111110).
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

/// Splits `secret` into `n` shares with reconstruction threshold `k`.
///
/// Constraints: `1 <= k <= n <= 255`.
pub fn split(
    secret: &[u8],
    k: usize,
    n: usize,
    rng: &mut ChaChaRng,
) -> Result<Vec<Share>, CryptoError> {
    if k == 0 || k > n || n > 255 {
        return Err(CryptoError::InvalidShareParams);
    }
    // coeffs[c][j] = coefficient c of the polynomial for secret byte j;
    // coefficient 0 is the secret byte itself.
    let mut coeffs = vec![secret.to_vec()];
    for _ in 1..k {
        coeffs.push(rng.gen_bytes(secret.len()));
    }
    let mut shares = Vec::with_capacity(n);
    for xi in 1..=n as u8 {
        let mut y = vec![0u8; secret.len()];
        for j in 0..secret.len() {
            // Horner evaluation at x = xi.
            let mut acc = 0u8;
            for c in coeffs.iter().rev() {
                acc = gf_mul(acc, xi) ^ c[j];
            }
            y[j] = acc;
        }
        shares.push(Share { x: xi, y });
    }
    Ok(shares)
}

/// Reconstructs the secret from at least `k` shares (any subset works; extra
/// shares are ignored beyond consistency of length/points).
pub fn combine(shares: &[Share]) -> Result<Vec<u8>, CryptoError> {
    if shares.is_empty() {
        return Err(CryptoError::BadShares);
    }
    let len = shares[0].y.len();
    if shares.iter().any(|s| s.y.len() != len || s.x == 0) {
        return Err(CryptoError::BadShares);
    }
    // Duplicate evaluation points make interpolation ill-defined.
    for (i, a) in shares.iter().enumerate() {
        if shares[i + 1..].iter().any(|b| b.x == a.x) {
            return Err(CryptoError::BadShares);
        }
    }
    // Lagrange interpolation at x = 0; in GF(2^k) subtraction is XOR so the
    // basis weight for share i is Π_{m≠i} x_m / (x_m ⊕ x_i).
    let mut secret = vec![0u8; len];
    for (i, si) in shares.iter().enumerate() {
        let mut weight = 1u8;
        for (m, sm) in shares.iter().enumerate() {
            if m == i {
                continue;
            }
            weight = gf_mul(weight, gf_mul(sm.x, gf_inv(sm.x ^ si.x)));
        }
        for (sj, yj) in secret.iter_mut().zip(&si.y) {
            *sj ^= gf_mul(weight, *yj);
        }
    }
    Ok(secret)
}

impl Share {
    /// Serialises as `x ‖ y…` (used by the bridging-scheme records).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.y.len());
        out.push(self.x);
        out.extend_from_slice(&self.y);
        out
    }

    /// Parses the [`Share::to_bytes`] format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.is_empty() || bytes[0] == 0 {
            return Err(CryptoError::Malformed("share"));
        }
        Ok(Share { x: bytes[0], y: bytes[1..].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn gf_field_axioms_spot() {
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
        // AES S-box generator fact: 0x53 * 0xCA = 0x01.
        assert_eq!(gf_mul(0x53, 0xca), 0x01);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a}");
        }
    }

    #[test]
    fn gf_mul_commutes_and_distributes() {
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for c in (0..=255u8).step_by(51) {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn split_and_combine_exact_threshold() {
        let secret = b"an md5 checksum!"; // 16 bytes, like the paper's MD5
        let shares = split(secret, 3, 5, &mut rng()).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(combine(&shares[..3]).unwrap(), secret);
        assert_eq!(combine(&shares[2..]).unwrap(), secret);
        assert_eq!(combine(&shares).unwrap(), secret);
    }

    #[test]
    fn two_party_split_needs_both() {
        // The paper's SKS case: user and provider each hold one share, k=2.
        let secret = b"shared-md5";
        let shares = split(secret, 2, 2, &mut rng()).unwrap();
        assert_eq!(combine(&shares).unwrap(), secret);
        // One share alone interpolates to garbage, not the secret.
        assert_ne!(combine(&shares[..1]).unwrap(), secret);
    }

    #[test]
    fn below_threshold_reveals_nothing_deterministic() {
        // With k=2 a single share is uniformly distributed: sharing two
        // different secrets can produce the same single-share view.
        let s1 = split(b"A", 2, 3, &mut rng()).unwrap();
        let mut other = ChaChaRng::seed_from_u64(0x5eed); // same polynomial coeffs
        let s2 = split(b"B", 2, 3, &mut other).unwrap();
        // Shares differ because the secret differs, but each is still a
        // valid-looking point — nothing structurally identifies the secret.
        assert_ne!(s1[0], s2[0]);
    }

    #[test]
    fn k_equals_one_is_replication() {
        let shares = split(b"public", 1, 4, &mut rng()).unwrap();
        for s in &shares {
            assert_eq!(combine(std::slice::from_ref(s)).unwrap(), b"public");
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut r = rng();
        assert_eq!(split(b"s", 0, 3, &mut r), Err(CryptoError::InvalidShareParams));
        assert_eq!(split(b"s", 4, 3, &mut r), Err(CryptoError::InvalidShareParams));
        assert_eq!(split(b"s", 2, 256, &mut r), Err(CryptoError::InvalidShareParams));
    }

    #[test]
    fn bad_share_sets_rejected() {
        let shares = split(b"secret", 2, 3, &mut rng()).unwrap();
        assert_eq!(combine(&[]), Err(CryptoError::BadShares));
        // Duplicate x.
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert_eq!(combine(&dup), Err(CryptoError::BadShares));
        // Mismatched lengths.
        let mut bad = shares.clone();
        bad[1].y.pop();
        assert_eq!(combine(&bad[..2]), Err(CryptoError::BadShares));
    }

    #[test]
    fn corrupted_share_changes_output() {
        let secret = b"integrity";
        let mut shares = split(secret, 2, 2, &mut rng()).unwrap();
        shares[0].y[0] ^= 1;
        assert_ne!(combine(&shares).unwrap(), secret);
    }

    #[test]
    fn share_bytes_roundtrip() {
        let shares = split(b"x", 2, 2, &mut rng()).unwrap();
        for s in &shares {
            assert_eq!(Share::from_bytes(&s.to_bytes()).unwrap(), *s);
        }
        assert!(Share::from_bytes(&[]).is_err());
        assert!(Share::from_bytes(&[0, 1, 2]).is_err()); // x = 0 forbidden
    }

    #[test]
    fn empty_secret_supported() {
        let shares = split(b"", 2, 3, &mut rng()).unwrap();
        assert_eq!(combine(&shares[..2]).unwrap(), b"");
    }
}
