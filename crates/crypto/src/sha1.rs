//! SHA-1 (FIPS 180-4).
//!
//! Included for completeness of the 2010-era algorithm suite (SSL cipher
//! suites of the day); evidence defaults to SHA-256. SHA-1 collisions are
//! practical — do not use for new designs.

use crate::hash::Digest;

/// Incremental SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "SHA-1";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Input fully absorbed into the partial block; nothing more
                // to do (and the tail code below must not clobber buf_len).
                debug_assert!(data.is_empty());
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            // `chunks_exact` guarantees the length, so the conversion
            // cannot fail; the `if let` keeps the hot loop panic-free.
            if let Ok(block) = block.try_into() {
                Self::compress(&mut self.state, block);
            }
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        Self::compress(&mut self.state, &block);
        self.state.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::hex_encode;

    #[test]
    fn fips_vectors() {
        assert_eq!(hex_encode(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(hex_encode(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex_encode(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex_encode(&Sha1::digest(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        for split in [0usize, 1, 64, 65, 776] {
            let mut h = Sha1::default();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data));
        }
    }
}
