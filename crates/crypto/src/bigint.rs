//! Arbitrary-precision unsigned integers.
//!
//! This is the numeric substrate for the RSA implementation in [`crate::rsa`].
//! Limbs are `u64`, stored little-endian with no trailing zero limbs
//! (canonical form). The operation set is exactly what RSA key generation,
//! signing and encryption need: ring arithmetic, Knuth-D division,
//! Montgomery modular exponentiation and modular inverse.
//!
//! The implementation favours clarity and testability over raw speed, but the
//! hot path (Montgomery multiplication, CIOS form) is allocation-free per
//! round and comfortably handles 2048-bit operands.

use std::cmp::Ordering;
use std::fmt;

/// Thread-local tally of limb-buffer (`Vec<u64>`) allocations made by
/// `BigUint` / [`MontgomeryCtx`] operations.
///
/// The fixed-limb kernels in [`crate::limbs`] exist to drive this number to
/// zero on the exponentiation hot path; experiment E12 reports
/// allocations-per-sign before/after through this counter. Instrumentation
/// is a `Cell` bump per buffer — cheap enough to stay always-on, and
/// deterministic (it counts logical buffer creations, not allocator calls).
pub mod limb_allocs {
    use std::cell::Cell;

    thread_local! {
        static TALLY: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn bump() {
        TALLY.with(|t| t.set(t.get() + 1));
    }

    /// Resets the current thread's tally to zero.
    pub fn reset() {
        TALLY.with(|t| t.set(0));
    }

    /// Limb buffers allocated on this thread since the last [`reset`].
    pub fn count() -> u64 {
        TALLY.with(|t| t.get())
    }
}

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never has trailing zeros (`limbs.last() != Some(&0)`);
/// zero is represented by an empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", crate::encoding::hex_encode(&self.to_bytes_be()))
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from little-endian limbs, normalising trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds from a borrowed little-endian limb slice.
    ///
    /// This is the heap boundary for [`crate::limbs::FixedUint`]: the fixed
    /// kernels hand their stack arrays here, so the allocation (and the
    /// [`limb_allocs`] tally bump) happens on the `bigint` side and the hot
    /// path stays textually `Vec`-free.
    pub fn from_limb_slice(limbs: &[u64]) -> Self {
        limb_allocs::bump();
        let mut end = limbs.len();
        while end > 0 && limbs.get(end - 1) == Some(&0) {
            end -= 1;
        }
        BigUint { limbs: limbs[..end].to_vec() }
    }

    /// Parses a big-endian byte string (the natural wire format for RSA).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        limb_allocs::bump();
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serialises to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the low bit is clear.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (counting from the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Three-way comparison.
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        limb_allocs::bump();
        let (big, small) =
            if self.limbs.len() >= other.limbs.len() { (self, other) } else { (other, self) };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let b = small.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = big.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`. Panics if `other > self` (callers uphold ordering).
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_big(other) != Ordering::Less, "BigUint::sub underflow");
        limb_allocs::bump();
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::from_limbs(out)
    }

    /// Schoolbook multiplication, O(n·m) with u128 partials.
    ///
    /// RSA-scale operands (≤ 64 limbs) do not benefit enough from Karatsuba
    /// to justify its complexity here; Montgomery CIOS dominates the hot path.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        limb_allocs::bump();
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        limb_allocs::bump();
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Self {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let src = &self.limbs[limb_shift..];
        limb_allocs::bump();
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Self::from_limbs(out)
    }

    /// Division with remainder, Knuth Algorithm D. Panics on division by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.low_u64());
            return (q, Self::from_u64(r));
        }

        // Normalise so that the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().map_or(0, |l| l.leading_zeros()) as usize;
        limb_allocs::bump();
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ = (un[j+n]·B + un[j+n-1]) / v_hi, then refine.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_hi as u128;
            let mut rhat = num % v_hi as u128;
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= q̂ · v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
                un[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large; add back one multiple of v.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let quotient = Self::from_limbs(q);
        let remainder = Self::from_limbs(un[..n].to_vec()).shr(shift);
        (quotient, remainder)
    }

    /// Division by a single limb.
    pub fn div_rem_u64(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "BigUint division by zero");
        limb_allocs::bump();
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Self::from_limbs(out), rem as u64)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// `(self + other) mod m`, both inputs already reduced.
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        let s = self.add(other);
        if s.cmp_big(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// `(self - other) mod m`, both inputs already reduced.
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        if self.cmp_big(other) != Ordering::Less {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `(self * other) mod m` via full multiply + reduce.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Dispatches odd moduli of up to 32 limbs (2048-bit — every RSA modulus
    /// and CRT half this workspace produces) onto the stack-allocated
    /// fixed-limb CIOS kernels of [`crate::limbs`], which are heap-free per
    /// multiply and use sliding-window exponentiation. Wider odd moduli fall
    /// back to the `Vec`-backed Montgomery context (also windowed); even
    /// moduli use plain square-and-multiply with division. All paths return
    /// bit-identical results (see the differential proptests).
    pub fn mod_pow(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "mod_pow modulus is zero");
        if modulus.is_one() {
            return Self::zero();
        }
        if exp.is_zero() {
            return Self::one();
        }
        if modulus.is_even() {
            return self.mod_pow_generic(exp, modulus);
        }
        use crate::limbs::mod_pow_fixed;
        let fixed = match modulus.limbs.len() {
            0..=4 => mod_pow_fixed::<4>(self, exp, modulus),
            5..=8 => mod_pow_fixed::<8>(self, exp, modulus),
            9..=16 => mod_pow_fixed::<16>(self, exp, modulus),
            17..=32 => mod_pow_fixed::<32>(self, exp, modulus),
            _ => None,
        };
        if let Some(r) = fixed {
            return r;
        }
        self.mod_pow_vec_window(exp, modulus)
    }

    /// The pre-fixed-limb exponentiation path: per-bit square-and-multiply
    /// over the `Vec`-backed [`MontgomeryCtx`].
    ///
    /// Retained verbatim as the differential-testing and benchmarking
    /// reference — E12 measures the fixed kernels against this, and the
    /// proptests require bit-identical outputs from both.
    pub fn mod_pow_classic(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "mod_pow modulus is zero");
        if modulus.is_one() {
            return Self::zero();
        }
        if exp.is_zero() {
            return Self::one();
        }
        if modulus.is_even() {
            return self.mod_pow_generic(exp, modulus);
        }
        let ctx = MontgomeryCtx::new(modulus);
        let base = ctx.to_mont(&self.rem(modulus));
        let mut acc = ctx.one();
        for i in (0..exp.bit_len()).rev() {
            acc = ctx.mul(&acc, &acc);
            if exp.bit(i) {
                acc = ctx.mul(&acc, &base);
            }
        }
        ctx.from_mont(&acc)
    }

    /// Sliding-window exponentiation over the `Vec`-backed Montgomery
    /// context — the fallback for odd moduli wider than the fixed kernels.
    ///
    /// Same window schedule as the fixed path ([`crate::limbs::window_bits`]
    /// of the exponent's bit length), so results and operation ordering are
    /// identical modulo the buffer representation.
    fn mod_pow_vec_window(&self, exp: &Self, modulus: &Self) -> Self {
        let ctx = MontgomeryCtx::new(modulus);
        let base = ctx.to_mont(&self.rem(modulus));
        let bits = exp.bit_len();
        let w = crate::limbs::window_bits(bits);
        // table[i] = base^(2i+1) in Montgomery form.
        let sq = ctx.mul(&base, &base);
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(base);
        for i in 1..1usize << (w - 1) {
            let next = ctx.mul(&table[i - 1], &sq);
            table.push(next);
        }
        let mut acc = ctx.one();
        let mut i = bits;
        while i > 0 {
            if !exp.bit(i - 1) {
                acc = ctx.mul(&acc, &acc);
                i -= 1;
                continue;
            }
            let mut j = i.saturating_sub(w);
            while !exp.bit(j) {
                j += 1;
            }
            let mut val = 0usize;
            for b in (j..i).rev() {
                val = (val << 1) | exp.bit(b) as usize;
            }
            for _ in 0..i - j {
                acc = ctx.mul(&acc, &acc);
            }
            if let Some(odd_power) = table.get((val - 1) / 2) {
                acc = ctx.mul(&acc, odd_power);
            }
            i = j;
        }
        ctx.from_mont(&acc)
    }

    fn mod_pow_generic(&self, exp: &Self, modulus: &Self) -> Self {
        let mut base = self.rem(modulus);
        let mut result = Self::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            if i + 1 < exp.bit_len() {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp_big(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse `self^-1 mod m`, or `None` if `gcd(self, m) != 1`.
    ///
    /// Extended Euclid over a small signed wrapper.
    pub fn mod_inverse(&self, m: &Self) -> Option<Self> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Invariants: r = old_s·a mod m (signs tracked separately).
        let (mut old_r, mut r) = (a, m.clone());
        let (mut old_s, mut s) = (SignedBig::from(Self::one()), SignedBig::zero());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            let tmp_r = rem;
            old_r = std::mem::replace(&mut r, tmp_r);
            let qs = s.mul_unsigned(&q);
            let tmp_s = old_s.sub(&qs);
            old_s = std::mem::replace(&mut s, tmp_s);
        }
        if !old_r.is_one() {
            return None;
        }
        Some(old_s.reduce_mod(m))
    }
}

/// Minimal signed big integer used only by the extended Euclid in
/// [`BigUint::mod_inverse`].
#[derive(Clone, Debug)]
struct SignedBig {
    negative: bool,
    mag: BigUint,
}

impl SignedBig {
    fn zero() -> Self {
        SignedBig { negative: false, mag: BigUint::zero() }
    }

    fn from(mag: BigUint) -> Self {
        SignedBig { negative: false, mag }
    }

    fn sub(&self, other: &Self) -> Self {
        match (self.negative, other.negative) {
            (false, true) => SignedBig { negative: false, mag: self.mag.add(&other.mag) },
            (true, false) => SignedBig { negative: true, mag: self.mag.add(&other.mag) },
            (sn, _) => {
                // Same sign: magnitude difference, sign from the larger side.
                match self.mag.cmp_big(&other.mag) {
                    Ordering::Equal => Self::zero(),
                    Ordering::Greater => SignedBig { negative: sn, mag: self.mag.sub(&other.mag) },
                    Ordering::Less => SignedBig { negative: !sn, mag: other.mag.sub(&self.mag) },
                }
            }
        }
    }

    fn mul_unsigned(&self, other: &BigUint) -> Self {
        let mag = self.mag.mul(other);
        SignedBig { negative: self.negative && !mag.is_zero(), mag }
    }

    fn reduce_mod(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        if self.negative && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

/// Montgomery multiplication context for an odd modulus (CIOS form).
///
/// This is the `Vec`-backed fallback for moduli wider than the fixed-limb
/// kernels of [`crate::limbs`]; each multiply allocates its scratch buffer.
pub struct MontgomeryCtx {
    n: Vec<u64>,
    /// Low limb of the modulus, hoisted out of the reduction loop.
    n0: u64,
    /// `-n^{-1} mod 2^64`
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64·len)`
    r2: BigUint,
    modulus: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context; `modulus` must be odd and > 1.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_even() && !modulus.is_one() && !modulus.is_zero());
        let n0 = modulus.low_u64();
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let k = modulus.limbs.len();
        // R^2 mod n computed by shifting; done once per exponentiation.
        let r2 = BigUint::one().shl(64 * k * 2).rem(modulus);
        MontgomeryCtx { n: modulus.limbs.clone(), n0, n_prime, r2, modulus: modulus.clone() }
    }

    /// Montgomery product `a·b·R^-1 mod n` (inputs in Montgomery form).
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.n.len();
        limb_allocs::bump();
        let mut t = vec![0u64; k + 2];
        let a_limbs = &a.limbs;
        let b_limbs = &b.limbs;
        for i in 0..k {
            let ai = a_limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b_limbs.get(j).copied().unwrap_or(0);
                let s = *tj as u128 + (ai as u128) * (bj as u128) + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let t0 = t.first().copied().unwrap_or(0);
            let m = t0.wrapping_mul(self.n_prime);
            let s = t0 as u128 + (m as u128) * (self.n0 as u128);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            carry = s >> 64;
            let s = t[k + 1] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
        }
        debug_assert_eq!(t[k + 1], 0);
        let mut result = BigUint::from_limbs(t[..=k].to_vec());
        if result.cmp_big(&self.modulus) != Ordering::Less {
            result = result.sub(&self.modulus);
        }
        result
    }

    /// Converts into Montgomery form: `a·R mod n`.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mul(a, &self.r2)
    }

    /// Converts out of Montgomery form: `a·R^-1 mod n`.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mul(a, &BigUint::one())
    }

    /// The value one in Montgomery form (`R mod n`).
    pub fn one(&self) -> BigUint {
        self.to_mont(&BigUint::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0xff],
            &[1, 0, 0, 0, 0, 0, 0, 0, 0],
            &[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05],
        ];
        for &c in cases {
            let v = BigUint::from_bytes_be(c);
            let back = v.to_bytes_be();
            // Leading zeros are stripped in canonical form.
            let trimmed: Vec<u8> = c.iter().copied().skip_while(|&x| x == 0).collect();
            assert_eq!(back, trimmed);
        }
    }

    #[test]
    fn padded_bytes() {
        let v = b(0x1234);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert!(b(0x123456).to_bytes_be_padded(2).is_none());
        assert_eq!(BigUint::zero().to_bytes_be_padded(3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), b(5));
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(b(2).add(&b(3)), b(5));
        assert_eq!(b(5).sub(&b(3)), b(2));
        assert_eq!(b(5).sub(&b(5)), BigUint::zero());
    }

    #[test]
    fn add_carries_across_limbs() {
        let max = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let r = max.add(&BigUint::one());
        assert_eq!(r, BigUint::from_limbs(vec![0, 0, 1]));
        assert_eq!(r.sub(&BigUint::one()), max);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = b(1).sub(&b(2));
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(b(7).mul(&b(6)), b(42));
        assert_eq!(b(0).mul(&b(6)), BigUint::zero());
        let a = BigUint::from_limbs(vec![u64::MAX]);
        let sq = a.mul(&a); // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq, BigUint::from_limbs(vec![1, u64::MAX - 1]));
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(64), BigUint::from_limbs(vec![0, 1]));
        assert_eq!(b(1).shl(65).shr(65), b(1));
        assert_eq!(b(0b1010).shr(1), b(0b101));
        assert_eq!(b(3).shr(100), BigUint::zero());
    }

    #[test]
    fn div_rem_basics() {
        let (q, r) = b(17).div_rem(&b(5));
        assert_eq!((q, r), (b(3), b(2)));
        let (q, r) = b(4).div_rem(&b(5));
        assert_eq!((q, r), (BigUint::zero(), b(4)));
        let (q, r) = b(5).div_rem(&b(5));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn div_rem_multi_limb() {
        // a = 2^200 + 12345, d = 2^100 + 7 — exercises Knuth D estimate path.
        let a = BigUint::one().shl(200).add(&b(12345));
        let d = BigUint::one().shl(100).add(&b(7));
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_big(&d) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_small() {
        assert_eq!(b(4).mod_pow(&b(13), &b(497)), b(445));
        assert_eq!(b(2).mod_pow(&b(10), &b(1000)), b(24));
        assert_eq!(b(5).mod_pow(&BigUint::zero(), &b(7)), BigUint::one());
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn mod_pow_even_modulus_falls_back() {
        assert_eq!(b(3).mod_pow(&b(5), &b(16)), b(3)); // 243 mod 16 = 3
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat's little theorem with a 61-bit prime.
        let p = b(2305843009213693951); // 2^61 - 1, prime
        let a = b(123456789);
        assert_eq!(a.mod_pow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn mod_inverse_small() {
        let inv = b(3).mod_inverse(&b(11)).unwrap();
        assert_eq!(inv, b(4)); // 3·4 = 12 ≡ 1 (mod 11)
        assert!(b(6).mod_inverse(&b(9)).is_none()); // gcd 3
        assert!(BigUint::zero().mod_inverse(&b(7)).is_none());
    }

    #[test]
    fn gcd_small() {
        assert_eq!(b(48).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
    }

    #[test]
    fn montgomery_matches_generic() {
        let m = b(1000003); // odd
        let a = b(999999);
        let e = b(65537);
        assert_eq!(a.mod_pow(&e, &m), a.mod_pow_generic(&e, &m));
    }

    #[test]
    fn dispatch_matches_classic_across_widths() {
        // Odd moduli at 1, 5, 9 and 17 limbs hit all four fixed kernels.
        for limb_count in [1usize, 5, 9, 17] {
            let m = BigUint::one().shl(64 * limb_count - 1).add(&b(12345)); // odd
            let base = BigUint::one().shl(64 * limb_count - 7).add(&b(999));
            let e = b(0x1_0001);
            assert_eq!(
                base.mod_pow(&e, &m),
                base.mod_pow_classic(&e, &m),
                "limb_count={limb_count}"
            );
        }
    }

    #[test]
    fn wide_modulus_falls_back_to_vec_window() {
        // 33 limbs: beyond every fixed kernel, still odd — exercises the
        // windowed Vec path against the classic per-bit loop.
        let m = BigUint::one().shl(64 * 33).add(&b(7)); // odd
        let base = BigUint::one().shl(2000).add(&b(3));
        let e = b(65537);
        assert_eq!(base.mod_pow(&e, &m), base.mod_pow_classic(&e, &m));
    }

    #[test]
    fn limb_alloc_tally_counts_vec_path_only() {
        let m = BigUint::one().shl(511).add(&b(0x4f)); // odd 8-limb modulus
        let base = b(0xdead_beef);
        let e = BigUint::one().shl(255).add(&b(1));
        limb_allocs::reset();
        let _ = base.mod_pow_classic(&e, &m);
        let classic = limb_allocs::count();
        limb_allocs::reset();
        let _ = base.mod_pow(&e, &m);
        let fixed = limb_allocs::count();
        assert!(classic > 300, "per-bit Vec path allocates every round: {classic}");
        assert!(fixed < 20, "fixed path only allocates at the boundary: {fixed}");
    }

    #[test]
    fn bit_accessors() {
        let v = b(0b1011);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(64));
        let mut z = BigUint::zero();
        z.set_bit(70);
        assert_eq!(z, BigUint::one().shl(70));
    }
}
