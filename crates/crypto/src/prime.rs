//! Probabilistic prime generation for RSA key material.
//!
//! Trial division by small primes followed by Miller–Rabin. With 40
//! witness rounds the error probability is < 2⁻⁸⁰, standard for RSA.

use crate::bigint::BigUint;
use crate::rng::ChaChaRng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Number of Miller–Rabin witness rounds (error < 4^-40).
pub const MR_ROUNDS: usize = 40;

/// Miller–Rabin probabilistic primality test.
///
/// Returns `true` if `n` is probably prime after `rounds` random witnesses.
/// `rounds` is clamped to at least 1: a zero-round test would vacuously
/// accept every odd composite that survives trial division, so there is no
/// legitimate use for it (regression: `zero_rounds_cannot_accept_composites`).
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut ChaChaRng) -> bool {
    let rounds = rounds.max(1);
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d · 2^r with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }

    let bits = n.bit_len();
    let n_bytes = bits.div_ceil(8);
    let excess = n_bytes * 8 - bits;
    'witness: for _ in 0..rounds {
        // Random witness a uniform over [2, n-2]: draw `bits` random bits
        // and rejection-sample. The old `rem(n)` fold had modulo bias —
        // witnesses below 2^(8·n_bytes) mod n were twice as likely — which
        // skews the sampled witness set exactly where adversarial
        // pseudoprimes concentrate their non-witnesses.
        let a = loop {
            let mut raw = rng.gen_bytes(n_bytes);
            if let Some(first) = raw.first_mut() {
                *first &= 0xffu8 >> excess;
            }
            let cand = BigUint::from_bytes_be(&raw);
            if !cand.is_zero()
                && !cand.is_one()
                && cand.cmp_big(&n_minus_1) == std::cmp::Ordering::Less
            {
                break cand;
            }
        };
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (so products of two such primes have the
/// full target width — the RSA convention) and the low bit to 1.
pub fn gen_prime(bits: usize, rng: &mut ChaChaRng) -> BigUint {
    assert!(bits >= 16, "prime size too small to be meaningful");
    let bytes = bits.div_ceil(8);
    loop {
        let mut raw = rng.gen_bytes(bytes);
        // Trim to exactly `bits` bits.
        let excess = bytes * 8 - bits;
        if let Some(first) = raw.first_mut() {
            *first &= 0xffu8 >> excess;
        }
        let mut cand = BigUint::from_bytes_be(&raw);
        cand.set_bit(bits - 1);
        cand.set_bit(bits - 2);
        cand.set_bit(0);
        if is_probable_prime(&cand, MR_ROUNDS, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn small_primes_accepted() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 211, 65537, 2147483647] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 20, &mut r), "{p} should be prime");
        }
    }

    #[test]
    fn composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 100, 561, 1105, 6601, 65537 * 3] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that Miller–Rabin must catch.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 20, &mut r), "{c}");
        }
    }

    #[test]
    fn mersenne_prime_61() {
        let mut r = rng();
        let p = BigUint::from_u64((1u64 << 61) - 1);
        assert!(is_probable_prime(&p, 20, &mut r));
    }

    #[test]
    fn generated_prime_has_requested_width() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit forced for RSA width");
        }
    }

    #[test]
    fn zero_rounds_cannot_accept_composites() {
        // Regression: rounds == 0 used to skip the witness loop entirely and
        // return true for any odd composite that survives trial division.
        let mut r = rng();
        // 290 101 = 521 · 557: odd, no factor ≤ 211.
        let c = BigUint::from_u64(521 * 557);
        assert!(!is_probable_prime(&c, 0, &mut r));
        // And a prime still passes with rounds == 0 (clamped to 1).
        assert!(is_probable_prime(&BigUint::from_u64((1u64 << 61) - 1), 0, &mut r));
    }

    #[test]
    fn strong_pseudoprime_to_base_2_rejected() {
        // 2047 = 23 · 89 is a strong pseudoprime to base 2; unbiased random
        // witnesses across several rounds must still reject it.
        let mut r = rng();
        assert!(!is_probable_prime(&BigUint::from_u64(2047), 8, &mut r));
    }

    #[test]
    fn generated_primes_differ() {
        let mut r = rng();
        let a = gen_prime(128, &mut r);
        let b = gen_prime(128, &mut r);
        assert_ne!(a, b);
    }
}
