//! Hex and Base64 codecs.
//!
//! Base64 is needed to model the Azure REST headers of the paper's Table 1
//! (`Content-MD5`, `Authorization: SharedKey …`); hex is used throughout for
//! logging and test vectors.

/// Encodes bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard (RFC 4648) Base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { B64_ALPHABET[n as usize & 0x3f] as char } else { '=' });
    }
    out
}

fn b64_value(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard Base64 (padding required). Returns `None` on malformed
/// input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return None;
        }
        let mut n = 0u32;
        for (j, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' && j >= 4 - pad { 0 } else { b64_value(c)? };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Digest as _;

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(hex_decode("abc").is_none()); // odd length
        assert!(hex_decode("zz").is_none()); // non-hex
    }

    #[test]
    fn hex_case_insensitive() {
        assert_eq!(hex_decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    /// RFC 4648 §10 test vectors.
    #[test]
    fn base64_rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(base64_encode(plain.as_bytes()), enc);
            assert_eq!(base64_decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn base64_rejects_bad_input() {
        assert!(base64_decode("Zg=").is_none()); // bad length
        assert!(base64_decode("Z===").is_none()); // too much padding
        assert!(base64_decode("Zm9!").is_none()); // bad character
    }

    #[test]
    fn base64_mid_padding_rejected() {
        assert!(base64_decode("Zg==AAAA").is_none());
    }

    #[test]
    fn base64_binary_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn table1_style_md5_header() {
        // The paper's Table 1 carries Content-MD5 as Base64 of a 16-byte MD5.
        let md5 = crate::md5::Md5::digest(b"block contents");
        let header = base64_encode(&md5);
        assert_eq!(base64_decode(&header).unwrap(), md5);
        assert_eq!(header.len(), 24); // 16 bytes -> 24 b64 chars
    }
}
