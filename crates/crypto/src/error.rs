//! Error type shared by the crypto crate.

use std::fmt;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The message is too long for the key/padding combination.
    MessageTooLong,
    /// Ciphertext/signature length does not match the key modulus.
    InvalidLength,
    /// PKCS#1 padding check failed on decryption.
    InvalidPadding,
    /// Signature verification failed.
    BadSignature,
    /// Key material is malformed (e.g. e not invertible mod φ(n)).
    InvalidKey,
    /// MAC verification failed.
    BadMac,
    /// Secret-sharing parameters are invalid (k = 0, k > n, n > 255, …).
    InvalidShareParams,
    /// Not enough / inconsistent shares to reconstruct a secret.
    BadShares,
    /// Malformed serialized object.
    Malformed(&'static str),
    /// Internal arithmetic invariant violated (library bug, not caller
    /// error) — surfaced as an error instead of a panic so protocol actors
    /// can degrade gracefully.
    Internal(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong => write!(f, "message too long for key"),
            CryptoError::InvalidLength => write!(f, "input length does not match key size"),
            CryptoError::InvalidPadding => write!(f, "invalid PKCS#1 padding"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidKey => write!(f, "invalid key material"),
            CryptoError::BadMac => write!(f, "MAC verification failed"),
            CryptoError::InvalidShareParams => write!(f, "invalid secret sharing parameters"),
            CryptoError::BadShares => write!(f, "insufficient or inconsistent shares"),
            CryptoError::Malformed(what) => write!(f, "malformed {what}"),
            CryptoError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::BadSignature.to_string().contains("signature"));
        assert!(CryptoError::Malformed("share").to_string().contains("share"));
    }
}
