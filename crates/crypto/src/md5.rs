//! MD5 (RFC 1321).
//!
//! MD5 is what the 2010-era platforms in the paper use for content integrity
//! (`Content-MD5` on Azure, the AWS Import/Export log checksums). It is
//! **cryptographically broken** (practical collisions) and is provided here
//! strictly to model those platforms; new evidence defaults to SHA-256.

use crate::hash::Digest;

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }
}

impl Md5 {
    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "MD5";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Input fully absorbed into the partial block; nothing more
                // to do (and the tail code below must not clobber buf_len).
                debug_assert!(data.is_empty());
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            // `chunks_exact` guarantees the length, so the conversion
            // cannot fail; the `if let` keeps the hot loop panic-free.
            if let Ok(block) = block.try_into() {
                Self::compress(&mut self.state, block);
            }
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length padding must bypass total_len accounting; write directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        Self::compress(&mut self.state, &block);
        self.state.iter().flat_map(|w| w.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::hex_encode;

    fn md5_hex(s: &[u8]) -> String {
        hex_encode(&Md5::digest(s))
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(md5_hex(b"message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(md5_hex(b"abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
        assert_eq!(
            md5_hex(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            md5_hex(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Md5::default();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Md5::digest(&data), "split {split}");
        }
    }

    #[test]
    fn exact_block_boundary() {
        let data = vec![0xabu8; 64];
        let mut h = Md5::default();
        h.update(&data);
        assert_eq!(h.finalize(), Md5::digest(&data));
        let data = vec![0xabu8; 128];
        assert_eq!(Md5::digest(&data).len(), 16);
    }
}
