//! Common digest abstraction over the concrete hash implementations.
//!
//! The paper's platforms use MD5 for content integrity (Azure `Content-MD5`,
//! AWS Import/Export logs) and the TPNR evidence hashes are
//! algorithm-agnostic, so everything downstream is written against
//! [`Digest`] / [`HashAlg`] and can run with either.

use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha2::{Sha256, Sha512};
use std::sync::Arc;

/// Incremental hash function interface.
pub trait Digest: Default + Clone {
    /// Digest size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (used by HMAC).
    const BLOCK_LEN: usize;
    /// Human-readable algorithm name.
    const NAME: &'static str;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);
    /// Finalises and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// Runtime-selectable hash algorithm.
///
/// MD5 mirrors the 2010 platforms under study; SHA-256 is the library
/// default for new evidence. MD5 is retained *only* for fidelity to the
/// paper — it is cryptographically broken and must not be used for new
/// designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// MD5 (128-bit) — what AWS/Azure used for content integrity in 2010.
    Md5,
    /// SHA-1 (160-bit).
    Sha1,
    /// SHA-256 (256-bit) — library default.
    Sha256,
    /// SHA-512 (512-bit).
    Sha512,
}

impl HashAlg {
    /// Digest length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            HashAlg::Md5 => 16,
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
            HashAlg::Sha512 => 64,
        }
    }

    /// Algorithm name as used in logs and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Md5 => "MD5",
            HashAlg::Sha1 => "SHA-1",
            HashAlg::Sha256 => "SHA-256",
            HashAlg::Sha512 => "SHA-512",
        }
    }

    /// One-shot hash with the selected algorithm.
    pub fn hash(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Md5 => Md5::digest(data),
            HashAlg::Sha1 => Sha1::digest(data),
            HashAlg::Sha256 => Sha256::digest(data),
            HashAlg::Sha512 => Sha512::digest(data),
        }
    }

    /// Stable one-byte identifier used in the wire codec.
    pub fn wire_id(self) -> u8 {
        match self {
            HashAlg::Md5 => 1,
            HashAlg::Sha1 => 2,
            HashAlg::Sha256 => 3,
            HashAlg::Sha512 => 4,
        }
    }

    /// Inverse of [`HashAlg::wire_id`].
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(HashAlg::Md5),
            2 => Some(HashAlg::Sha1),
            3 => Some(HashAlg::Sha256),
            4 => Some(HashAlg::Sha512),
            _ => None,
        }
    }
}

/// Memoizes digests of shared immutable buffers by allocation identity.
///
/// The hot loops hash the same object many times: the evidence `data_hash`
/// at sealing, the re-hash at receipt verification, storage-platform MD5
/// checks, and Merkle commitments for audits. When the object lives in a
/// shared immutable buffer (`tpnr_net::Bytes` wraps an `Arc<Vec<u8>>`),
/// its digest can be computed once per algorithm and looked up afterwards.
///
/// A cache entry is keyed on `(algorithm, allocation address, window,
/// auxiliary key bytes)` and **pins a clone of the `Arc`**, which makes
/// the scheme sound on two fronts: the allocation cannot be freed (so the
/// address cannot be reused by a different buffer while the entry lives),
/// and `Arc::get_mut` on the buffer fails for everyone (so the contents
/// cannot change under the memo). The `aux` bytes let callers fold extra
/// inputs into the key — e.g. a payload's object key and commitment mode —
/// when the memoized value covers more than the raw buffer.
///
/// Entries live in a plain `Vec` scanned linearly and evicted FIFO:
/// deterministic iteration (no `HashMap` ordering — see the DET-ORDER lint
/// rule), and for the handful of live objects an actor touches the scan is
/// cheaper than hashing even one block.
pub struct DigestCache {
    entries: Vec<CacheEntry>,
    cap: usize,
    hits: u64,
    misses: u64,
}

struct CacheEntry {
    alg: HashAlg,
    addr: usize,
    start: usize,
    end: usize,
    aux: Vec<u8>,
    digest: Vec<u8>,
    /// Keeps the allocation alive (and its address unique) for the
    /// entry's lifetime.
    _pin: Arc<Vec<u8>>,
}

impl DigestCache {
    /// A cache holding at most `cap` entries (oldest evicted first).
    pub fn new(cap: usize) -> DigestCache {
        DigestCache { entries: Vec::new(), cap: cap.max(1), hits: 0, misses: 0 }
    }

    /// Digest of `buf[start..end]` with `alg`, memoized on the buffer's
    /// allocation identity and window.
    pub fn hash(&mut self, alg: HashAlg, buf: &Arc<Vec<u8>>, start: usize, end: usize) -> Vec<u8> {
        self.memo(alg, buf, start, end, &[], |slice| alg.hash(slice))
    }

    /// Generalized memoization: returns the cached value for `(alg, buf
    /// identity, window, aux)` or computes it with `f` over
    /// `buf[start..end]`. `f` must be a pure function of the slice, `alg`
    /// and `aux` — the cache replays its result for any later caller with
    /// the same key.
    pub fn memo(
        &mut self,
        alg: HashAlg,
        buf: &Arc<Vec<u8>>,
        start: usize,
        end: usize,
        aux: &[u8],
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Vec<u8> {
        let addr = Arc::as_ptr(buf) as usize;
        if let Some(e) = self.entries.iter().find(|e| {
            e.alg == alg && e.addr == addr && e.start == start && e.end == end && e.aux == aux
        }) {
            self.hits += 1;
            return e.digest.clone();
        }
        self.misses += 1;
        let digest = f(&buf[start..end]);
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(CacheEntry {
            alg,
            addr,
            start,
            end,
            aux: aux.to_vec(),
            digest: digest.clone(),
            _pin: buf.clone(),
        });
        digest
    }

    /// Number of lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_lengths_match_impls() {
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            assert_eq!(alg.hash(b"abc").len(), alg.output_len(), "{}", alg.name());
        }
    }

    #[test]
    fn wire_id_roundtrip() {
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            assert_eq!(HashAlg::from_wire_id(alg.wire_id()), Some(alg));
        }
        assert_eq!(HashAlg::from_wire_id(0), None);
        assert_eq!(HashAlg::from_wire_id(200), None);
    }

    #[test]
    fn different_algorithms_differ() {
        let d = b"same input";
        assert_ne!(HashAlg::Md5.hash(d), HashAlg::Sha256.hash(d)[..16].to_vec());
        assert_ne!(HashAlg::Sha256.hash(d), HashAlg::Sha512.hash(d)[..32].to_vec());
    }

    #[test]
    fn cache_hits_on_same_identity_misses_on_equal_content() {
        let mut c = DigestCache::new(4);
        let a = Arc::new(vec![0x11u8; 1024]);
        let b = Arc::new(vec![0x11u8; 1024]); // equal bytes, new allocation
        let d1 = c.hash(HashAlg::Sha256, &a, 0, 1024);
        assert_eq!(d1, HashAlg::Sha256.hash(&a));
        assert_eq!((c.hits(), c.misses()), (0, 1));
        assert_eq!(c.hash(HashAlg::Sha256, &a, 0, 1024), d1);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Identity, not content, is the key: a fresh allocation recomputes
        // (correctly, to the same digest).
        assert_eq!(c.hash(HashAlg::Sha256, &b, 0, 1024), d1);
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn cache_distinguishes_alg_window_and_aux() {
        let mut c = DigestCache::new(8);
        let a = Arc::new((0u8..64).collect::<Vec<u8>>());
        let full = c.hash(HashAlg::Md5, &a, 0, 64);
        assert_ne!(c.hash(HashAlg::Sha1, &a, 0, 64), full);
        assert_ne!(c.hash(HashAlg::Md5, &a, 0, 32), full);
        assert_eq!(c.hash(HashAlg::Md5, &a, 0, 32), HashAlg::Md5.hash(&a[..32]));
        let tagged = c.memo(HashAlg::Md5, &a, 0, 64, b"commit:flat", |s| {
            let mut v = b"commit:flat".to_vec();
            v.extend_from_slice(s);
            HashAlg::Md5.hash(&v)
        });
        assert_ne!(tagged, full);
        assert_eq!(c.misses(), 4);
        // Replay of the aux-keyed entry is a pure lookup.
        let again = c.memo(HashAlg::Md5, &a, 0, 64, b"commit:flat", |_| unreachable!());
        assert_eq!(again, tagged);
    }

    #[test]
    fn reallocated_address_cannot_return_stale_digest() {
        // The cache keys on `Arc::as_ptr`, so the dangerous sequence is:
        // cache a digest for buffer A, free A, allocate a different buffer B
        // at the same address, look B up. Soundness rests on the entry's
        // pin: while the entry lives, A cannot be freed, so no other buffer
        // can occupy its address; once the entry is evicted the pin drops
        // and the address may be reused — but the entry is gone with it.
        let mut c = DigestCache::new(1);
        let a = Arc::new(vec![0xAAu8; 256]);
        let addr_a = Arc::as_ptr(&a) as usize;
        let weak_a = Arc::downgrade(&a);
        let stale = c.hash(HashAlg::Sha256, &a, 0, 256);
        drop(a);
        // The caller's ref is gone but the entry pins the allocation: a
        // same-layout allocation cannot land on A's address yet.
        assert!(weak_a.upgrade().is_some());
        let probe = Arc::new(vec![0xBBu8; 256]);
        assert_ne!(Arc::as_ptr(&probe) as usize, addr_a, "pinned address was reused");
        drop(probe);
        // Evict A's entry (cap = 1): the pin must drop with it, freeing A.
        let filler = Arc::new(vec![0x55u8; 16]);
        c.hash(HashAlg::Sha256, &filler, 0, 16);
        assert!(weak_a.upgrade().is_none(), "eviction must release the pin");
        // The allocator may now hand A's address to a new same-layout
        // buffer. Whether or not it does, a lookup must never replay A's
        // digest: the evicted entry left no key behind.
        let mut reuse_seen = false;
        for _ in 0..64 {
            let b = Arc::new(vec![0xBBu8; 256]);
            reuse_seen |= Arc::as_ptr(&b) as usize == addr_a;
            let fresh = c.hash(HashAlg::Sha256, &b, 0, 256);
            assert_eq!(fresh, HashAlg::Sha256.hash(&b), "stale digest for reused address");
            assert_ne!(fresh, stale);
        }
        // Not asserted: `reuse_seen` depends on the allocator. With a 256-
        // byte block freed immediately before same-size allocations it is
        // essentially always true, which is what makes this a regression
        // test rather than dead code.
        let _ = reuse_seen;
    }

    #[test]
    fn cache_evicts_fifo_and_pins_allocations() {
        let mut c = DigestCache::new(2);
        let a = Arc::new(vec![1u8; 16]);
        let weak = Arc::downgrade(&a);
        c.hash(HashAlg::Md5, &a, 0, 16);
        drop(a);
        // The entry's pin keeps the allocation (and its address) alive.
        assert!(weak.upgrade().is_some());
        let b = Arc::new(vec![2u8; 16]);
        let d = Arc::new(vec![3u8; 16]);
        c.hash(HashAlg::Md5, &b, 0, 16);
        c.hash(HashAlg::Md5, &d, 0, 16); // evicts the first entry
        assert_eq!(c.len(), 2);
        assert!(weak.upgrade().is_none(), "evicted entry releases its pin");
    }
}
