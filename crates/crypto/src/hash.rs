//! Common digest abstraction over the concrete hash implementations.
//!
//! The paper's platforms use MD5 for content integrity (Azure `Content-MD5`,
//! AWS Import/Export logs) and the TPNR evidence hashes are
//! algorithm-agnostic, so everything downstream is written against
//! [`Digest`] / [`HashAlg`] and can run with either.

use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha2::{Sha256, Sha512};

/// Incremental hash function interface.
pub trait Digest: Default + Clone {
    /// Digest size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (used by HMAC).
    const BLOCK_LEN: usize;
    /// Human-readable algorithm name.
    const NAME: &'static str;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);
    /// Finalises and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// Runtime-selectable hash algorithm.
///
/// MD5 mirrors the 2010 platforms under study; SHA-256 is the library
/// default for new evidence. MD5 is retained *only* for fidelity to the
/// paper — it is cryptographically broken and must not be used for new
/// designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// MD5 (128-bit) — what AWS/Azure used for content integrity in 2010.
    Md5,
    /// SHA-1 (160-bit).
    Sha1,
    /// SHA-256 (256-bit) — library default.
    Sha256,
    /// SHA-512 (512-bit).
    Sha512,
}

impl HashAlg {
    /// Digest length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            HashAlg::Md5 => 16,
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
            HashAlg::Sha512 => 64,
        }
    }

    /// Algorithm name as used in logs and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Md5 => "MD5",
            HashAlg::Sha1 => "SHA-1",
            HashAlg::Sha256 => "SHA-256",
            HashAlg::Sha512 => "SHA-512",
        }
    }

    /// One-shot hash with the selected algorithm.
    pub fn hash(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Md5 => Md5::digest(data),
            HashAlg::Sha1 => Sha1::digest(data),
            HashAlg::Sha256 => Sha256::digest(data),
            HashAlg::Sha512 => Sha512::digest(data),
        }
    }

    /// Stable one-byte identifier used in the wire codec.
    pub fn wire_id(self) -> u8 {
        match self {
            HashAlg::Md5 => 1,
            HashAlg::Sha1 => 2,
            HashAlg::Sha256 => 3,
            HashAlg::Sha512 => 4,
        }
    }

    /// Inverse of [`HashAlg::wire_id`].
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(HashAlg::Md5),
            2 => Some(HashAlg::Sha1),
            3 => Some(HashAlg::Sha256),
            4 => Some(HashAlg::Sha512),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_lengths_match_impls() {
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            assert_eq!(alg.hash(b"abc").len(), alg.output_len(), "{}", alg.name());
        }
    }

    #[test]
    fn wire_id_roundtrip() {
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            assert_eq!(HashAlg::from_wire_id(alg.wire_id()), Some(alg));
        }
        assert_eq!(HashAlg::from_wire_id(0), None);
        assert_eq!(HashAlg::from_wire_id(200), None);
    }

    #[test]
    fn different_algorithms_differ() {
        let d = b"same input";
        assert_ne!(HashAlg::Md5.hash(d), HashAlg::Sha256.hash(d)[..16].to_vec());
        assert_ne!(HashAlg::Sha256.hash(d), HashAlg::Sha512.hash(d)[..32].to_vec());
    }
}
