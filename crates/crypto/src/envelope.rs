//! Hybrid public-key envelope: RSA key transport + ChaCha20 + HMAC-SHA256.
//!
//! Paper §4.1 requires the evidence to be "encrypted with the recipient's
//! public key". Raw RSA caps the payload at `k - 11` bytes, so — exactly as
//! SSL of the paper's era did — we transport a fresh symmetric key under RSA
//! and encrypt the payload with a stream cipher, authenticated
//! encrypt-then-MAC.
//!
//! Wire layout: `u16 klen ‖ RSA(seed) ‖ 12-byte nonce ‖ ciphertext ‖
//! 32-byte HMAC tag`, where a 32-byte seed is transported under RSA and the
//! cipher/MAC keys are derived as `SHA-256(seed ‖ label)` — the seed (not a
//! full key block) keeps the RSA payload within PKCS#1 limits even for the
//! 512-bit test keys.

use crate::chacha20;
use crate::ct;
use crate::error::CryptoError;
use crate::hmac::Hmac;
use crate::rng::ChaChaRng;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha2::Sha256;

const SEED_LEN: usize = 32;
const NONCE_LEN: usize = chacha20::NONCE_LEN;
const TAG_LEN: usize = 32;

/// Derives the cipher and MAC keys from the transported seed.
fn derive_keys(seed: &[u8]) -> ([u8; 32], [u8; 32]) {
    use crate::hash::Digest as _;
    let mut cipher_key = [0u8; 32];
    let mut mac_key = [0u8; 32];
    let mut h = Sha256::default();
    h.update(seed);
    h.update(b"tpnr-envelope-cipher");
    cipher_key.copy_from_slice(&h.finalize());
    let mut h = Sha256::default();
    h.update(seed);
    h.update(b"tpnr-envelope-mac");
    mac_key.copy_from_slice(&h.finalize());
    (cipher_key, mac_key)
}

/// Encrypts `plaintext` to the holder of `recipient`.
pub fn seal(
    recipient: &RsaPublicKey,
    rng: &mut ChaChaRng,
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let mut seed = [0u8; SEED_LEN];
    rng.fill_bytes(&mut seed);
    let (cipher_key, mac_key) = derive_keys(&seed);

    let wrapped = recipient.encrypt(rng, &seed)?;
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let ciphertext = chacha20::encrypt(&cipher_key, &nonce, plaintext);

    let mut out = Vec::with_capacity(2 + wrapped.len() + NONCE_LEN + ciphertext.len() + TAG_LEN);
    out.extend_from_slice(&(wrapped.len() as u16).to_be_bytes());
    out.extend_from_slice(&wrapped);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&ciphertext);
    // MAC over everything before the tag (header included): tampering with
    // the wrapped key or nonce must also be detected.
    let tag = Hmac::<Sha256>::mac(&mac_key, &out);
    out.extend_from_slice(&tag);
    Ok(out)
}

/// Decrypts an envelope produced by [`seal`].
pub fn open(recipient: &RsaPrivateKey, envelope: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if envelope.len() < 2 + NONCE_LEN + TAG_LEN {
        return Err(CryptoError::Malformed("envelope"));
    }
    let klen = match envelope {
        [k0, k1, ..] => u16::from_be_bytes([*k0, *k1]) as usize,
        _ => return Err(CryptoError::Malformed("envelope")),
    };
    let body_len = envelope.len() - TAG_LEN;
    if 2 + klen + NONCE_LEN > body_len {
        return Err(CryptoError::Malformed("envelope"));
    }
    let wrapped = &envelope[2..2 + klen];
    let nonce_start = 2 + klen;
    let ct_start = nonce_start + NONCE_LEN;
    let (body, tag) = envelope.split_at(body_len);

    let seed = recipient.decrypt(wrapped)?;
    if seed.len() != SEED_LEN {
        return Err(CryptoError::InvalidPadding);
    }
    let (cipher_key, mac_key) = derive_keys(&seed);
    if !ct::eq(&Hmac::<Sha256>::mac(&mac_key, body), tag) {
        return Err(CryptoError::BadMac);
    }
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&envelope[nonce_start..ct_start]);
    Ok(chacha20::decrypt(&cipher_key, &nonce, &body[ct_start..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;

    fn setup() -> (RsaKeyPair, ChaChaRng) {
        (RsaKeyPair::insecure_test_key(3), ChaChaRng::seed_from_u64(33))
    }

    #[test]
    fn roundtrip_various_sizes() {
        let (kp, mut rng) = setup();
        for n in [0usize, 1, 100, 4096, 100_000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 31) as u8).collect();
            let env = seal(&kp.public, &mut rng, &data).unwrap();
            assert_eq!(open(&kp.private, &env).unwrap(), data, "size {n}");
        }
    }

    #[test]
    fn wrong_recipient_fails() {
        let (kp, mut rng) = setup();
        let other = RsaKeyPair::insecure_test_key(4);
        let env = seal(&kp.public, &mut rng, b"for alice only").unwrap();
        assert!(open(&other.private, &env).is_err());
    }

    #[test]
    fn every_byte_is_authenticated() {
        let (kp, mut rng) = setup();
        let env = seal(&kp.public, &mut rng, b"evidence payload").unwrap();
        for i in 0..env.len() {
            let mut bad = env.clone();
            bad[i] ^= 0x01;
            assert!(open(&kp.private, &bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncation_rejected() {
        let (kp, mut rng) = setup();
        let env = seal(&kp.public, &mut rng, b"payload").unwrap();
        for cut in [0usize, 1, 10, env.len() - 1] {
            assert!(open(&kp.private, &env[..cut]).is_err());
        }
    }

    #[test]
    fn sealing_is_randomized() {
        let (kp, mut rng) = setup();
        let a = seal(&kp.public, &mut rng, b"same").unwrap();
        let b = seal(&kp.public, &mut rng, b"same").unwrap();
        assert_ne!(a, b);
    }
}
