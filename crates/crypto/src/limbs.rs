//! Stack-allocated fixed-width big integers and Montgomery kernels.
//!
//! [`crate::bigint::BigUint`] stores limbs in a `Vec<u64>`, so every ring
//! operation allocates — at E10 scale the evidence hot loop spends more time
//! in the allocator than in arithmetic. This module provides the fixed-width
//! counterpart in the `bigint_impl!` style of arkworks: a const-generic
//! [`FixedUint<N>`] (`[u64; N]`, little-endian) with carry-chain add/sub and
//! schoolbook widening multiply, plus [`FixedMontgomeryCtx<N>`], a CIOS
//! Montgomery multiplier whose scratch state is two stack arrays and two
//! scalar spill limbs — **zero heap allocations per modular multiply**.
//!
//! [`BigUint::mod_pow`] auto-selects these kernels for odd moduli of up to
//! 4 / 8 / 16 / 32 limbs (256/512/1024/2048-bit RSA moduli and their CRT
//! halves) and falls back to the `Vec`-backed path beyond that, so callers
//! never see the dispatch.
//!
//! Exponentiation is left-to-right sliding-window with precomputed odd
//! powers: ~`bit_len` squarings plus ~`bit_len / (w+1)` multiplies instead
//! of the per-bit multiply of the classic path. The window width is a pure
//! function of the exponent's bit length (see [`window_bits`]), so the
//! operation sequence — and therefore any timing-visible behaviour in the
//! deterministic simulation — depends only on `(bit_len(exp), exp bits)`,
//! never on heap layout or platform.
//!
//! This file is the allocation-free hot path: ci.sh greps it for the heap
//! vector constructors and fails the build if any sneaks in. Conversions to
//! and from heap-backed [`BigUint`] go through [`BigUint::from_limb_slice`],
//! which lives (and allocates) on the `bigint` side of the boundary.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// A fixed-width unsigned integer of `N` 64-bit limbs, little-endian.
///
/// Unlike [`BigUint`] there is no canonical-form invariant: high limbs may
/// be zero. Values are compared over the full width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FixedUint<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> FixedUint<N> {
    /// The value zero.
    pub const fn zero() -> Self {
        FixedUint { limbs: [0; N] }
    }

    /// The value one.
    pub fn one() -> Self {
        let mut limbs = [0u64; N];
        if let Some(lo) = limbs.first_mut() {
            *lo = 1;
        }
        FixedUint { limbs }
    }

    /// Builds from a heap-backed integer; `None` if it needs more than `N`
    /// limbs.
    pub fn from_biguint(v: &BigUint) -> Option<Self> {
        let src = v.limbs();
        if src.len() > N {
            return None;
        }
        let mut limbs = [0u64; N];
        limbs[..src.len()].copy_from_slice(src);
        Some(FixedUint { limbs })
    }

    /// Converts into the heap-backed representation (normalising high
    /// zero limbs).
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_limb_slice(&self.limbs)
    }

    /// Borrows the little-endian limbs.
    pub fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// True iff every limb is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Full-width three-way comparison.
    pub fn cmp_fixed(&self, other: &Self) -> Ordering {
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Carry-chain addition; returns `(sum mod 2^(64N), carry_out)`.
    pub fn add_carry(&self, other: &Self) -> (Self, u64) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&other.limbs) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = c1 as u64 + c2 as u64;
        }
        (FixedUint { limbs: out }, carry)
    }

    /// Borrow-chain subtraction; returns `(diff mod 2^(64N), borrow_out)`.
    pub fn sub_borrow(&self, other: &Self) -> (Self, u64) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&other.limbs) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = b1 as u64 + b2 as u64;
        }
        (FixedUint { limbs: out }, borrow)
    }

    /// Schoolbook widening multiplication; returns `(low N limbs, high N
    /// limbs)` of the 2N-limb product. Stack-only.
    pub fn mul_wide(&self, other: &Self) -> (Self, Self) {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let pos = i + j;
                let cell = if pos < N { &mut lo[pos] } else { &mut hi[pos - N] };
                let t = *cell as u128 + (a as u128) * (b as u128) + carry;
                *cell = t as u64;
                carry = t >> 64;
            }
            let mut pos = i + N;
            while carry != 0 && pos < 2 * N {
                let cell = if pos < N { &mut lo[pos] } else { &mut hi[pos - N] };
                let t = *cell as u128 + carry;
                *cell = t as u64;
                carry = t >> 64;
                pos += 1;
            }
        }
        (FixedUint { limbs: lo }, FixedUint { limbs: hi })
    }
}

/// Sliding-window width as a pure function of the exponent bit length.
///
/// Deterministic by construction: two exponents of equal bit length use the
/// same width, so the squaring/multiply schedule depends only on the
/// exponent's bits — never on the value of the base or on heap state.
pub fn window_bits(exp_bits: usize) -> usize {
    match exp_bits {
        0..=23 => 2,
        24..=79 => 3,
        80..=239 => 4,
        _ => 5,
    }
}

/// Largest precomputed-odd-powers table any window width needs
/// (`2^(5-1)` entries for w = 5).
const MAX_TABLE: usize = 16;

/// CIOS Montgomery multiplication context over a fixed width.
///
/// `R = 2^(64·N)`. The modulus must be odd, greater than one and fit in `N`
/// limbs. All per-multiply state lives on the stack; building the context
/// performs the only heap work (computing `R mod n` / `R² mod n` via
/// [`BigUint`]), once per exponentiation.
pub struct FixedMontgomeryCtx<const N: usize> {
    /// The modulus.
    n: [u64; N],
    /// Low limb of the modulus, hoisted out of the reduction loop.
    n0: u64,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R mod n` — the value one in Montgomery form.
    r1: FixedUint<N>,
    /// `R² mod n` — the to-Montgomery conversion factor.
    r2: FixedUint<N>,
}

impl<const N: usize> FixedMontgomeryCtx<N> {
    /// Builds a context for an odd `modulus > 1` of at most `N` limbs;
    /// `None` if the modulus is even, trivial or too wide.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if N == 0 || modulus.is_even() || modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let n_fixed = FixedUint::<N>::from_biguint(modulus)?;
        let n0 = modulus.low_u64();
        // Newton iteration for n0^{-1} mod 2^64 (odd n0 ⇒ invertible).
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let r1 = FixedUint::from_biguint(&BigUint::one().shl(64 * N).rem(modulus))?;
        let r2 = FixedUint::from_biguint(&BigUint::one().shl(64 * N * 2).rem(modulus))?;
        Some(FixedMontgomeryCtx { n: *n_fixed.limbs(), n0, n_prime, r1, r2 })
    }

    /// The value one in Montgomery form (`R mod n`).
    pub fn one(&self) -> FixedUint<N> {
        self.r1
    }

    /// Montgomery product `a·b·R^{-1} mod n` (inputs in Montgomery form).
    ///
    /// CIOS with the two spill limbs (`t[N]`, `t[N+1]`) kept in scalars:
    /// no heap traffic, no bounds checks beyond the const-width arrays.
    pub fn mul(&self, a: &FixedUint<N>, b: &FixedUint<N>) -> FixedUint<N> {
        let mut t = [0u64; N];
        let mut t_n = 0u64; // t[N]
        let mut t_n1 = 0u64; // t[N+1]
        for &ai in a.limbs.iter() {
            // t += ai · b
            let mut carry = 0u128;
            for (tj, &bj) in t.iter_mut().zip(&b.limbs) {
                let s = *tj as u128 + (ai as u128) * (bj as u128) + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t_n as u128 + carry;
            t_n = s as u64;
            t_n1 = (s >> 64) as u64;

            // m = t[0]·n' mod 2^64; t = (t + m·n) / 2^64
            let t0 = t.first().copied().unwrap_or(0);
            let m = t0.wrapping_mul(self.n_prime);
            let s = t0 as u128 + (m as u128) * (self.n0 as u128);
            let mut carry = s >> 64;
            for j in 1..N {
                let s = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t_n as u128 + carry;
            t[N - 1] = s as u64;
            carry = s >> 64;
            let s = t_n1 as u128 + carry;
            t_n = s as u64;
            t_n1 = (s >> 64) as u64;
        }
        debug_assert_eq!(t_n1, 0);
        // t < 2n: one conditional subtraction completes the reduction. A
        // set spill limb is cancelled exactly by the subtraction borrow.
        let result = FixedUint { limbs: t };
        let n_fixed = FixedUint { limbs: self.n };
        if t_n != 0 || result.cmp_fixed(&n_fixed) != Ordering::Less {
            let (d, borrow) = result.sub_borrow(&n_fixed);
            debug_assert_eq!(borrow, t_n);
            d
        } else {
            result
        }
    }

    /// Converts into Montgomery form: `a·R mod n`.
    pub fn to_mont(&self, a: &FixedUint<N>) -> FixedUint<N> {
        self.mul(a, &self.r2)
    }

    /// Converts out of Montgomery form: `a·R^{-1} mod n`.
    pub fn from_mont(&self, a: &FixedUint<N>) -> FixedUint<N> {
        self.mul(a, &FixedUint::one())
    }

    /// Sliding-window exponentiation on a Montgomery-form base; the result
    /// stays in Montgomery form.
    ///
    /// Left-to-right: runs of zero bits cost one squaring each; each window
    /// ending in a set bit costs `width` squarings plus one multiply by a
    /// precomputed odd power. The table (≤ 16 entries) lives on the stack.
    pub fn pow_mont(&self, base_mont: &FixedUint<N>, exp: &BigUint) -> FixedUint<N> {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.r1;
        }
        let w = window_bits(bits);
        let table_len = 1usize << (w - 1);
        // table[i] = base^(2i+1) in Montgomery form.
        let sq = self.mul(base_mont, base_mont);
        let mut table = [*base_mont; MAX_TABLE];
        for i in 1..table_len {
            table[i] = self.mul(&table[i - 1], &sq);
        }
        let mut acc = self.r1;
        let mut i = bits; // exclusive upper cursor: bits [0, i) remain
        while i > 0 {
            if !exp.bit(i - 1) {
                acc = self.mul(&acc, &acc);
                i -= 1;
                continue;
            }
            // Window [j, i): at most `w` bits, ending (at j) in a set bit so
            // the window value is odd and lives in the table.
            let mut j = i.saturating_sub(w);
            while !exp.bit(j) {
                j += 1;
            }
            let mut val = 0usize;
            for b in (j..i).rev() {
                val = (val << 1) | exp.bit(b) as usize;
            }
            for _ in 0..i - j {
                acc = self.mul(&acc, &acc);
            }
            acc = self.mul(&acc, &table[(val - 1) / 2]);
            i = j;
        }
        acc
    }

    /// Full modular exponentiation `base^exp mod n` in the normal domain.
    pub fn pow(&self, base: &FixedUint<N>, exp: &BigUint) -> FixedUint<N> {
        if exp.is_zero() {
            return FixedUint::one();
        }
        let base_mont = self.to_mont(base);
        let acc = self.pow_mont(&base_mont, exp);
        self.from_mont(&acc)
    }
}

/// `base^exp mod modulus` through the `N`-limb fixed kernel, or `None` when
/// the modulus does not qualify (even, trivial, or wider than `N` limbs).
///
/// This is the dispatch target of [`BigUint::mod_pow`].
pub fn mod_pow_fixed<const N: usize>(
    base: &BigUint,
    exp: &BigUint,
    modulus: &BigUint,
) -> Option<BigUint> {
    let ctx = FixedMontgomeryCtx::<N>::new(modulus)?;
    let reduced = base.rem(modulus);
    let b = FixedUint::from_biguint(&reduced)?;
    Some(ctx.pow(&b, exp).to_biguint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn fixed_roundtrip_and_width_limit() {
        let v = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5]);
        let f = FixedUint::<4>::from_biguint(&v).unwrap();
        assert_eq!(f.to_biguint(), v);
        let wide = BigUint::one().shl(64 * 4);
        assert!(FixedUint::<4>::from_biguint(&wide).is_none());
        assert!(FixedUint::<5>::from_biguint(&wide).is_some());
    }

    #[test]
    fn add_carry_chain() {
        let max =
            FixedUint::<2>::from_biguint(&BigUint::from_limb_slice(&[u64::MAX, u64::MAX])).unwrap();
        let one = FixedUint::<2>::one();
        let (sum, carry) = max.add_carry(&one);
        assert!(sum.is_zero());
        assert_eq!(carry, 1);
        let (diff, borrow) = sum.sub_borrow(&one);
        assert_eq!(borrow, 1);
        assert_eq!(diff, max);
    }

    #[test]
    fn mul_wide_matches_biguint() {
        let a = BigUint::from_limb_slice(&[u64::MAX, 12345, 7]);
        let b = BigUint::from_limb_slice(&[99, u64::MAX - 3, 1]);
        let fa = FixedUint::<3>::from_biguint(&a).unwrap();
        let fb = FixedUint::<3>::from_biguint(&b).unwrap();
        let (lo, hi) = fa.mul_wide(&fb);
        let combined = hi.to_biguint().shl(64 * 3).add(&lo.to_biguint());
        assert_eq!(combined, a.mul(&b));
    }

    #[test]
    fn cmp_fixed_orders_by_high_limbs() {
        let a = FixedUint::<2>::from_biguint(&BigUint::from_limb_slice(&[0, 2])).unwrap();
        let b = FixedUint::<2>::from_biguint(&BigUint::from_limb_slice(&[u64::MAX, 1])).unwrap();
        assert_eq!(a.cmp_fixed(&b), Ordering::Greater);
        assert_eq!(b.cmp_fixed(&a), Ordering::Less);
        assert_eq!(a.cmp_fixed(&a), Ordering::Equal);
    }

    #[test]
    fn montgomery_mul_matches_mul_mod() {
        let m = big(1_000_003);
        let ctx = FixedMontgomeryCtx::<2>::new(&m).unwrap();
        for (x, y) in [(2u64, 3u64), (999_999, 999_999), (123_456, 654_321)] {
            let fx = ctx.to_mont(&FixedUint::from_biguint(&big(x)).unwrap());
            let fy = ctx.to_mont(&FixedUint::from_biguint(&big(y)).unwrap());
            let got = ctx.from_mont(&ctx.mul(&fx, &fy)).to_biguint();
            assert_eq!(got, big(x).mul_mod(&big(y), &m), "{x}·{y} mod 1000003");
        }
    }

    #[test]
    fn pow_matches_vec_path() {
        let m = big(1_000_003);
        let ctx = FixedMontgomeryCtx::<2>::new(&m).unwrap();
        for (b, e) in [(4u64, 13u64), (2, 1000), (999_999, 65537)] {
            let fb = FixedUint::from_biguint(&big(b)).unwrap();
            let got = ctx.pow(&fb, &big(e)).to_biguint();
            assert_eq!(got, big(b).mod_pow_classic(&big(e), &m), "{b}^{e}");
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = big(97);
        let ctx = FixedMontgomeryCtx::<1>::new(&m).unwrap();
        let fb = FixedUint::from_biguint(&big(5)).unwrap();
        assert!(ctx.pow(&fb, &BigUint::zero()).to_biguint().is_one());
    }

    #[test]
    fn ctx_rejects_even_trivial_and_oversized() {
        assert!(FixedMontgomeryCtx::<2>::new(&big(16)).is_none());
        assert!(FixedMontgomeryCtx::<2>::new(&BigUint::one()).is_none());
        assert!(FixedMontgomeryCtx::<2>::new(&BigUint::zero()).is_none());
        let wide = BigUint::one().shl(130).add(&BigUint::one());
        assert!(FixedMontgomeryCtx::<2>::new(&wide).is_none());
        assert!(FixedMontgomeryCtx::<3>::new(&wide).is_some());
    }

    #[test]
    fn mod_pow_fixed_dispatch_agrees_with_classic() {
        // 2^61-1 is prime: Fermat gives a^(p-1) = 1.
        let p = big(2_305_843_009_213_693_951);
        let a = big(123_456_789);
        let e = p.sub(&BigUint::one());
        let got = mod_pow_fixed::<1>(&a, &e, &p).unwrap();
        assert!(got.is_one());
        assert_eq!(
            mod_pow_fixed::<4>(&a, &big(65537), &p).unwrap(),
            a.mod_pow_classic(&big(65537), &p)
        );
    }

    #[test]
    fn window_bits_are_deterministic_in_bit_len() {
        assert_eq!(window_bits(17), 2); // e = 65537
        assert_eq!(window_bits(64), 3);
        assert_eq!(window_bits(239), 4);
        assert_eq!(window_bits(512), 5);
        assert_eq!(window_bits(2048), 5);
        // Table never exceeds the stack buffer.
        assert!(1usize << (window_bits(usize::MAX) - 1) <= MAX_TABLE);
    }
}
