//! Random number generation.
//!
//! [`ChaChaRng`] is a deterministic ChaCha20-based generator: seeded from OS
//! entropy in production, or from a fixed seed in tests and in the
//! discrete-event simulator (replayable attack traces require determinism —
//! DESIGN.md §4.1).

use crate::chacha20;

/// ChaCha20-based deterministic random generator.
///
/// Not `rand`-trait based on purpose: the whole workspace draws randomness
/// through this one type so simulations replay bit-for-bit.
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaChaRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng { key: seed, nonce: [0; 12], counter: 0, buf: [0; 64], buf_pos: 64 }
    }

    /// Creates a generator from a `u64` seed (convenience for tests and
    /// experiment sweeps; the seed is expanded by hashing).
    pub fn seed_from_u64(seed: u64) -> Self {
        let digest = crate::sha2::Sha256::digest(&seed.to_le_bytes());
        use crate::hash::Digest as _;
        let mut s = [0u8; 32];
        s.copy_from_slice(&digest);
        Self::from_seed(s)
    }

    /// Creates a generator seeded from the operating system
    /// (`/dev/urandom` where available, otherwise clock/address entropy —
    /// adequate for simulations; not a substitute for a vetted CSPRNG when
    /// keys must resist a real adversary).
    pub fn from_entropy() -> Self {
        let mut seed = [0u8; 32];
        let mut filled = false;
        if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
            use std::io::Read;
            filled = f.read_exact(&mut seed).is_ok();
        }
        if !filled {
            use crate::hash::Digest as _;
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            let stack_probe = &seed as *const _ as usize;
            let mut material = Vec::with_capacity(32);
            material.extend_from_slice(&now.to_le_bytes());
            material.extend_from_slice(&(stack_probe as u64).to_le_bytes());
            material.extend_from_slice(&std::process::id().to_le_bytes());
            seed.copy_from_slice(&crate::sha2::Sha256::digest(&material));
        }
        Self::from_seed(seed)
    }

    fn refill(&mut self) {
        self.buf = chacha20::block(&self.key, &self.nonce, self.counter);
        self.counter = self.counter.checked_add(1).unwrap_or_else(|| {
            // Counter exhausted (2^32 blocks = 256 GiB): roll the nonce.
            for b in self.nonce.iter_mut() {
                *b = b.wrapping_add(1);
                if *b != 0 {
                    break;
                }
            }
            0
        });
        self.buf_pos = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            if self.buf_pos == 64 {
                self.refill();
            }
            let take = (64 - self.buf_pos).min(dest.len() - i);
            dest[i..i + take].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            i += take;
        }
    }

    /// Returns `n` random bytes.
    pub fn gen_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a uniform random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniform random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Uniform value in `[0, bound)` via rejection sampling. Panics if
    /// `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to [0,1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaChaRng::from_seed([42; 32]);
        let mut b = ChaChaRng::from_seed([42; 32]);
        assert_eq!(a.gen_bytes(100), b.gen_bytes(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaRng::from_seed([1; 32]);
        let mut b = ChaChaRng::from_seed([2; 32]);
        assert_ne!(a.gen_bytes(32), b.gen_bytes(32));
    }

    #[test]
    fn u64_seed_expansion() {
        let mut a = ChaChaRng::seed_from_u64(7);
        let mut b = ChaChaRng::seed_from_u64(7);
        let mut c = ChaChaRng::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_below_in_range_and_covers() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_below_power_of_two() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_below(16) < 16);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_below_zero_panics() {
        ChaChaRng::seed_from_u64(0).gen_below(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_spans_block_boundaries() {
        let mut a = ChaChaRng::from_seed([9; 32]);
        let mut whole = vec![0u8; 200];
        a.fill_bytes(&mut whole);
        let mut b = ChaChaRng::from_seed([9; 32]);
        let mut parts = vec![0u8; 200];
        for chunk in parts.chunks_mut(13) {
            b.fill_bytes(chunk);
        }
        assert_eq!(whole, parts);
    }
}
