//! # tpnr-crypto
//!
//! From-scratch cryptographic primitives for the TPNR reproduction
//! (Feng, Chen, Ku & Liu, *Analysis of Integrity Vulnerabilities and a
//! Non-repudiation Protocol for Cloud Data Storage Platforms*, SCC@ICPP
//! 2010).
//!
//! The offline-crate policy of this reproduction provides no cryptography
//! crate, so everything the paper's platforms and protocol need is
//! implemented here:
//!
//! * [`bigint`] — arbitrary-precision arithmetic with Montgomery
//!   exponentiation (the RSA substrate);
//! * [`limbs`] — stack-allocated fixed-width kernels (CIOS Montgomery,
//!   sliding-window exponentiation) that `bigint` auto-selects for RSA-sized
//!   odd moduli;
//! * [`md5`], [`sha1`], [`sha2`] — the 2010-era hash suite (MD5 is what the
//!   platforms under study used for content integrity; SHA-256 is the
//!   library default);
//! * [`hmac`] — RFC 2104 MAC (Azure's `SharedKey` request auth);
//! * [`rsa`] — PKCS#1 v1.5 signatures and encryption (the evidence
//!   primitives of paper §4.1);
//! * [`chacha20`] + [`envelope`] — hybrid public-key encryption of evidence;
//! * [`shamir`] — secret sharing for the SKS bridging schemes of paper §3;
//! * [`merkle`] — hash trees for partial verification of TB-scale objects;
//! * [`rng`] — a deterministic ChaCha20 DRBG so simulations replay exactly;
//! * [`encoding`], [`ct`], [`prime`], [`error`] — supporting utilities.
//!
//! ## Security status
//!
//! Every algorithm passes its RFC/FIPS test vectors and the signatures are
//! interoperable PKCS#1 v1.5, but the implementations are **not hardened
//! against local side channels** (no blinding; constant-time code only where
//! noted). They are faithful research artifacts, not a production TLS stack.
//! MD5 and SHA-1 are included solely to model the platforms the paper
//! analyses.

#![forbid(unsafe_code)]

pub mod bigint;
pub mod chacha20;
pub mod ct;
pub mod encoding;
pub mod envelope;
pub mod error;
pub mod hash;
pub mod hmac;
pub mod limbs;
pub mod md5;
pub mod merkle;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha2;
pub mod shamir;

pub use bigint::BigUint;
pub use error::CryptoError;
pub use hash::{Digest, HashAlg};
pub use hmac::Hmac;
pub use rng::ChaChaRng;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
