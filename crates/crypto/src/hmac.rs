//! HMAC (RFC 2104 / FIPS 198-1), generic over any [`Digest`].
//!
//! HMAC-SHA256 is the Azure shared-key request authentication of paper §2.2
//! / Table 1; HMAC also authenticates the secure-channel frames in
//! `tpnr-net`.

use crate::ct;
use crate::hash::{Digest, HashAlg};
use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha2::{Sha256, Sha512};

/// Incremental HMAC state over digest `D`.
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Key XOR opad, kept to finish the outer hash.
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC context for `key` (any length; long keys are hashed
    /// first per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut k = if key.len() > D::BLOCK_LEN { D::digest(key) } else { key.to_vec() };
        k.resize(D::BLOCK_LEN, 0);
        let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::default();
        inner.update(&ipad);
        Hmac { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalises and returns the tag.
    pub fn finalize(self) -> Vec<u8> {
        let inner_hash = self.inner.finalize();
        let mut outer = D::default();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time verification of a full-length tag.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct::eq(&Self::mac(key, data), tag)
    }
}

/// One-shot HMAC with a runtime-selected hash (mirrors [`HashAlg::hash`]).
pub fn hmac(alg: HashAlg, key: &[u8], data: &[u8]) -> Vec<u8> {
    match alg {
        HashAlg::Md5 => Hmac::<Md5>::mac(key, data),
        HashAlg::Sha1 => Hmac::<Sha1>::mac(key, data),
        HashAlg::Sha256 => Hmac::<Sha256>::mac(key, data),
        HashAlg::Sha512 => Hmac::<Sha512>::mac(key, data),
    }
}

/// Constant-time verify with a runtime-selected hash.
pub fn hmac_verify(alg: HashAlg, key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    ct::eq(&hmac(alg, key, data), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{hex_decode, hex_encode};

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex_encode(&Hmac::<Sha512>::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// RFC 2202 HMAC-MD5 test vector 1.
    #[test]
    fn rfc2202_md5() {
        let key = [0x0bu8; 16];
        assert_eq!(
            hex_encode(&Hmac::<Md5>::mac(&key, b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
    }

    /// RFC 2202 HMAC-SHA1 test vector 2.
    #[test]
    fn rfc2202_sha1() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex_encode(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::<Sha256>::mac(b"k", b"msg");
        assert!(Hmac::<Sha256>::verify(b"k", b"msg", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k", b"msG", &tag));
        assert!(!Hmac::<Sha256>::verify(b"K", b"msg", &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!Hmac::<Sha256>::verify(b"k", b"msg", &bad));
        assert!(!Hmac::<Sha256>::verify(b"k", b"msg", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Hmac::<Sha256>::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(b"key", b"hello world"));
    }

    #[test]
    fn runtime_dispatch_matches_static() {
        let t = hmac(HashAlg::Sha256, b"k", b"d");
        assert_eq!(t, Hmac::<Sha256>::mac(b"k", b"d"));
        assert!(hmac_verify(HashAlg::Sha256, b"k", b"d", &t));
        let _ = hex_decode("00"); // keep import used in all cfg combinations
    }
}
