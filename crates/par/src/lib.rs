//! `tpnr-par`: dependency-free deterministic work-stealing executor.
//!
//! The workspace's parallelism needs are narrow but hot: run a pure
//! function over an index range on however many cores the host offers and
//! join the results **in index order**, so callers observe exactly what a
//! serial loop would have produced. That determinism requirement is
//! load-bearing — Merkle leaf hashing, the E6 trial grid, and the E10
//! multi-world settle fan-out all feed seeded, replayable pipelines where
//! "same seed → same trace" must survive parallel execution.
//!
//! PR 9 grew the crate from two static-chunk scoped-thread helpers into a
//! [`Pool`]: a persistent work-stealing executor. The old helpers split
//! `0..n` into one contiguous chunk per worker, so one slow chunk
//! serialized the whole fan-out (E10's throughput wall). The pool instead
//! splits work into ~4× as many tasks as workers, deals them round-robin
//! onto per-worker deques, and lets an idle worker steal the back half of
//! a victim's deque — a slow range now only occupies the one worker stuck
//! on it while everyone else drains the rest.
//!
//! Determinism argument: a task is a contiguous index range; workers run
//! `f` serially within a range and record `(range.start, results)`; the
//! join sorts by range start and concatenates. Which worker ran which
//! range — and every steal interleaving — is therefore invisible in the
//! output: for pure `f` the result vector is byte-identical to the serial
//! loop regardless of worker count (property-tested below).
//!
//! Two execution paths share the same deque/steal engine:
//!
//! - [`Pool::run_indexed`] — `'static` closures run on the pool's
//!   persistent worker threads (parked on a condvar mailbox between
//!   fan-outs), so hot callers like E10's lane driver stop paying thread
//!   spawn/join per batch.
//! - [`Pool::scoped_indexed`] — borrowing closures run on scoped threads
//!   spawned per call. The crate is `#![forbid(unsafe_code)]`, and safe
//!   Rust cannot hand a non-`'static` closure to a persistent thread, so
//!   borrowed fan-outs (Merkle leaf hashing over `&[u8]`) keep the scoped
//!   shape — same stealing, same join, fresh threads.
//!
//! Keeping the crate free of dependencies (std only) lets `tpnr-crypto`
//! use it without cycles and keeps the offline build trivial.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks ignoring poisoning: tasks run under `catch_unwind`, so engine
/// locks are never held across a user panic; a poisoned flag would only
/// mean another worker panicked *outside* user code, and blocking the
/// whole fan-out on that is worse than proceeding with the guarded data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The host's advertised core count (1 when it cannot be queried).
/// Experiment rows record this next to the configured worker count so
/// bench trajectories stay comparable across hosts.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Scheduler activity counters for one fan-out, or — via
/// [`Pool::lifetime_stats`] — for everything a pool has run. Steal counts
/// are timing-dependent (they depend on which worker went idle first) and
/// must never feed deterministic output; they exist for perf exhibits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Contiguous index-range tasks the fan-out was split into.
    pub tasks: u64,
    /// Steal operations: batches of tasks moved between worker deques.
    pub steals: u64,
    /// Individual tasks that changed deques via a steal.
    pub stolen_tasks: u64,
}

impl FanoutStats {
    fn absorb(&mut self, other: FanoutStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.stolen_tasks += other.stolen_tasks;
    }
}

/// One unit of stealable work: a contiguous index range.
#[derive(Clone, Copy)]
struct Task {
    start: usize,
    end: usize,
}

/// Per-fan-out result shards: `(range start, results for that range)`.
type RangeResults<R> = Mutex<Vec<(usize, Vec<R>)>>;

/// Shared state of one fan-out: the per-worker deques, the result shards,
/// a completion latch, and the panic slot. Both execution paths (persistent
/// workers and scoped threads) drive this same engine via [`Fanout::work`].
struct Fanout<R, F> {
    run: F,
    deques: Vec<Mutex<VecDeque<Task>>>,
    results: RangeResults<R>,
    /// Tasks not yet finished; the caller waits on this latch.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload from a task, rethrown by the caller. While set,
    /// remaining tasks are drained without running (the abort flag).
    panicked: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// `(steal operations, tasks moved)` — steals are rare (an idle worker
    /// at most once per refill), so a mutex costs nothing here and keeps
    /// the crate free of atomics.
    stolen: Mutex<(u64, u64)>,
    tasks: u64,
}

impl<R, F> Fanout<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Splits `0..n` into `min(n, 4 × workers)` near-equal contiguous
    /// ranges and deals them round-robin onto `min(workers, n)` deques.
    /// ~4 tasks per worker keeps deques short (cheap steals) while leaving
    /// enough slack that a slow range strands only its own worker.
    fn new(n: usize, workers: usize, run: F) -> Self {
        let w_eff = workers.min(n).max(1);
        let t = n.min(4 * w_eff).max(1);
        let deques: Vec<Mutex<VecDeque<Task>>> =
            (0..w_eff).map(|_| Mutex::new(VecDeque::new())).collect();
        let (base, rem) = (n / t, n % t);
        let mut start = 0;
        for j in 0..t {
            let len = base + usize::from(j < rem);
            lock(&deques[j % w_eff]).push_back(Task { start, end: start + len });
            start += len;
        }
        Fanout {
            run,
            deques,
            results: Mutex::new(Vec::with_capacity(t)),
            remaining: Mutex::new(t),
            done: Condvar::new(),
            panicked: Mutex::new(None),
            stolen: Mutex::new((0, 0)),
            tasks: t as u64,
        }
    }

    /// Worker loop: pop the own deque front; when it runs dry, steal the
    /// back half of another worker's deque; exit when every deque is empty
    /// (tasks are pre-dealt and only *move* between deques, so a global
    /// empty scan means no work can reappear).
    fn work(&self, worker: usize) {
        if worker >= self.deques.len() {
            return; // fan-out narrower than the pool: surplus workers idle
        }
        loop {
            let task = lock(&self.deques[worker]).pop_front();
            match task {
                Some(t) => self.run_task(t),
                None => {
                    if !self.steal_into(worker) {
                        return;
                    }
                }
            }
        }
    }

    /// Steals `ceil(len/2)` tasks from the back of the first non-empty
    /// victim deque (scanning round-robin from `worker + 1`) into
    /// `worker`'s own deque. Returns false when every deque is empty.
    fn steal_into(&self, worker: usize) -> bool {
        let w = self.deques.len();
        for off in 1..w {
            let victim = (worker + off) % w;
            let stolen = {
                let mut vq = lock(&self.deques[victim]);
                let take = vq.len().div_ceil(2);
                if take == 0 {
                    continue;
                }
                let keep = vq.len() - take;
                vq.split_off(keep)
            };
            let count = stolen.len() as u64;
            lock(&self.deques[worker]).extend(stolen);
            let mut tally = lock(&self.stolen);
            tally.0 += 1;
            tally.1 += count;
            return true;
        }
        false
    }

    /// Runs one range serially under `catch_unwind` and records its result
    /// shard. After a panic anywhere, remaining tasks are drained without
    /// running so the latch still reaches zero — `join` never deadlocks and
    /// the pool is not poisoned.
    fn run_task(&self, t: Task) {
        if lock(&self.panicked).is_none() {
            let out = catch_unwind(AssertUnwindSafe(|| {
                let mut shard = Vec::with_capacity(t.end - t.start);
                for i in t.start..t.end {
                    shard.push((self.run)(i));
                }
                shard
            }));
            match out {
                Ok(shard) => lock(&self.results).push((t.start, shard)),
                Err(payload) => {
                    let mut slot = lock(&self.panicked);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task has finished (or been drained by an abort).
    fn wait(&self) {
        let mut rem = lock(&self.remaining);
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// After [`Fanout::wait`]: the index-ordered join, or the first task
    /// panic. Sorting the shards by range start erases every trace of
    /// which worker ran what — the deterministic-output invariant.
    #[allow(clippy::type_complexity)]
    fn collect(&self) -> Result<(Vec<R>, FanoutStats), Box<dyn std::any::Any + Send + 'static>> {
        if let Some(payload) = lock(&self.panicked).take() {
            return Err(payload);
        }
        let mut shards = std::mem::take(&mut *lock(&self.results));
        shards.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(shards.iter().map(|(_, s)| s.len()).sum());
        for (_, shard) in shards {
            out.extend(shard);
        }
        let (steals, stolen_tasks) = *lock(&self.stolen);
        Ok((out, FanoutStats { tasks: self.tasks, steals, stolen_tasks }))
    }
}

/// A `'static` fan-out the persistent workers can hold behind an `Arc`.
trait Runnable: Send + Sync {
    fn work(&self, worker: usize);
}

impl<R, F> Runnable for Fanout<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    fn work(&self, worker: usize) {
        Fanout::work(self, worker);
    }
}

/// The mailbox persistent workers park on between fan-outs.
struct MailSlot {
    /// Bumped once per posted job; workers run each generation at most once.
    generation: u64,
    job: Option<Arc<dyn Runnable>>,
    shutdown: bool,
}

struct Mailbox {
    slot: Mutex<MailSlot>,
    bell: Condvar,
}

fn worker_loop(mb: &Mailbox, worker: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = lock(&mb.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                }
                slot = mb.bell.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
        };
        job.work(worker);
    }
}

/// A reusable work-stealing executor: `workers − 1` persistent threads
/// plus the calling thread, which always participates as worker 0. With
/// `workers == 1` no threads exist and every fan-out runs inline — the
/// output is identical either way (see the module docs).
pub struct Pool {
    workers: usize,
    mailbox: Arc<Mailbox>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes `'static` fan-outs: the persistent workers run one job
    /// at a time (scoped fan-outs use their own threads and don't queue).
    submit: Mutex<()>,
    /// Scheduler activity accumulated across every fan-out (one lock per
    /// fan-out, not per task, so a mutex is plenty).
    lifetime: Mutex<FanoutStats>,
}

impl Pool {
    /// Creates a pool targeting `workers` total workers (clamped to ≥ 1).
    /// If the OS refuses a thread the pool degrades to fewer workers
    /// rather than failing; [`Pool::workers`] reports the real count.
    pub fn new(workers: usize) -> Self {
        let target = workers.max(1);
        let mailbox = Arc::new(Mailbox {
            slot: Mutex::new(MailSlot { generation: 0, job: None, shutdown: false }),
            bell: Condvar::new(),
        });
        let handles: Vec<std::thread::JoinHandle<()>> = (1..target)
            .filter_map(|i| {
                let mb = Arc::clone(&mailbox);
                std::thread::Builder::new()
                    .name(format!("tpnr-par-{i}"))
                    .spawn(move || worker_loop(&mb, i))
                    .ok()
            })
            .collect();
        Pool {
            workers: handles.len() + 1,
            mailbox,
            handles,
            submit: Mutex::new(()),
            lifetime: Mutex::new(FanoutStats::default()),
        }
    }

    /// The process-wide pool, sized to [`available_parallelism`]. The
    /// [`par_map_indexed`] / [`par_map_mut`] wrappers route through it so
    /// the whole workspace shares one set of worker threads.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(available_parallelism()))
    }

    /// Actual worker count (calling thread included).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total scheduler activity across every fan-out this pool has run.
    pub fn lifetime_stats(&self) -> FanoutStats {
        *lock(&self.lifetime)
    }

    fn record(&self, stats: FanoutStats) {
        lock(&self.lifetime).absorb(stats);
    }

    /// Maps `f` over `0..n` on the persistent workers and returns results
    /// in index order plus the fan-out's scheduler counters. Requires
    /// `'static` captures; the hot E10 lane driver uses this path so it
    /// pays no thread spawn/join per batch. A panic inside `f` is rethrown
    /// here after every worker has drained; the pool stays usable.
    pub fn run_indexed_stats<R, F>(&self, n: usize, f: F) -> (Vec<R>, FanoutStats)
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if n == 0 {
            return (Vec::new(), FanoutStats::default());
        }
        let fan = Arc::new(Fanout::new(n, self.workers, f));
        let guard = lock(&self.submit);
        if self.workers > 1 {
            let job: Arc<dyn Runnable> = Arc::clone(&fan) as Arc<dyn Runnable>;
            {
                let mut slot = lock(&self.mailbox.slot);
                slot.generation += 1;
                slot.job = Some(job);
            }
            self.mailbox.bell.notify_all();
        }
        fan.work(0);
        fan.wait();
        if self.workers > 1 {
            lock(&self.mailbox.slot).job = None;
        }
        drop(guard);
        match fan.collect() {
            Ok((out, stats)) => {
                self.record(stats);
                (out, stats)
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`Pool::run_indexed_stats`] without the counters.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        self.run_indexed_stats(n, f).0
    }

    /// Maps a *borrowing* `f` over `0..n` with the same stealing engine,
    /// on scoped threads spawned for this call (safe Rust cannot park a
    /// non-`'static` closure on a persistent thread — see module docs).
    /// Results join in index order; a panic inside `f` is rethrown after
    /// the scope joins.
    pub fn scoped_indexed_stats<R, F>(&self, n: usize, f: F) -> (Vec<R>, FanoutStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return (Vec::new(), FanoutStats::default());
        }
        let fan = Fanout::new(n, self.workers, f);
        std::thread::scope(|scope| {
            for i in 1..fan.deques.len() {
                let fan = &fan;
                scope.spawn(move || fan.work(i));
            }
            fan.work(0);
        });
        // The scope joined every worker, so the latch is already zero.
        match fan.collect() {
            Ok((out, stats)) => {
                self.record(stats);
                (out, stats)
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`Pool::scoped_indexed_stats`] without the counters.
    pub fn scoped_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.scoped_indexed_stats(n, f).0
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.mailbox.slot);
            slot.shutdown = true;
        }
        self.mailbox.bell.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Maps `f` over `0..n` on the [global pool](Pool::global) and returns the
/// results in index order. `f` must be pure for the output to be
/// deterministic; the index-ordered join never reorders results regardless
/// of which worker ran what. With `n == 0` an empty vector is returned.
///
/// Thin wrapper over [`Pool::scoped_indexed`] (kept since the pre-pool
/// crate so call sites like Merkle leaf hashing stay unchanged).
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::global().scoped_indexed(n, f)
}

/// Runs `f` over every item of `items` in place, in parallel on the
/// [global pool](Pool::global), and returns the per-item results in index
/// order. Each item is visited exactly once; with stealing, *which* worker
/// visits it is scheduling-dependent, so every item sits behind its own
/// mutex (uncontended in practice: a lock is taken once per item).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    Pool::global().scoped_indexed(slots.len(), |i| {
        let mut item = lock(&slots[i]);
        f(i, &mut item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_range_spawns_nothing() {
        let out: Vec<u64> = par_map_indexed(0, |_| unreachable!("no indices to map"));
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_items_than_workers() {
        // With n below available_parallelism the fan-out narrows to n
        // deques, so every index still maps exactly once.
        let out = par_map_indexed(2, |i| i * 10);
        assert_eq!(out, vec![0, 10]);
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn n_not_divisible_by_chunk_size() {
        // A prime n forces ragged task ranges on any multi-worker split.
        let n = 97;
        let out = par_map_indexed(n, |i| i as u64 * i as u64);
        assert_eq!(out.len(), n);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn results_join_in_index_order() {
        // Make early indices expensive so workers finish out of order; the
        // join must still be index-ordered.
        let n = 64;
        let out = par_map_indexed(n, |i| {
            let spins = (n - i) * 1000;
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn matches_serial_map_exactly() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9e3779b9)).collect();
        let parallel = par_map_indexed(1000, |i| (i as u64).wrapping_mul(0x9e3779b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_mut_mutates_every_item_once_and_joins_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let results = par_map_mut(&mut items, |i, v| {
            *v += 1_000;
            (i, *v)
        });
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1_000, "item {i} mutated exactly once");
        }
        for (idx, (i, v)) in results.iter().enumerate() {
            assert_eq!(idx, *i);
            assert_eq!(*v, idx as u64 + 1_000);
        }
    }

    #[test]
    fn par_map_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_mut(&mut empty, |_, v| *v);
        assert!(out.is_empty());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, |_, v| *v * 6), vec![42]);
    }

    #[test]
    fn pool_clamps_to_one_worker() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run_indexed(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn pool_reuse_across_batches() {
        // One pool, many fan-outs: results stay correct, no worker is
        // respawned (the whole point of the persistent mailbox), and the
        // lifetime counters accumulate monotonically.
        let pool = Pool::new(4);
        let mut last_tasks = 0;
        for round in 0..10u64 {
            let (out, stats) = pool.run_indexed_stats(50, move |i| i as u64 + round);
            assert_eq!(out, (0..50).map(|i| i + round).collect::<Vec<_>>());
            assert!(stats.tasks > 0);
            let life = pool.lifetime_stats();
            assert!(life.tasks > last_tasks, "lifetime counters accumulate");
            last_tasks = life.tasks;
        }
    }

    #[test]
    fn forced_stealing_preserves_index_order() {
        // Round-robin dealing puts even task indices on worker 0's deque.
        // Even indices sleep, so worker 0 sits inside a sleep while its
        // deque still holds more sleepers — worker 1 drains its own (all
        // instant) tasks and must steal to finish. The output must be
        // byte-identical to the serial map no matter who stole what.
        let pool = Pool::new(2);
        let serial: Vec<u64> = (0..8u64).map(|i| i * 3 + 1).collect();
        let mut stole = false;
        for _ in 0..20 {
            let (out, stats) = pool.run_indexed_stats(8, |i| {
                if i % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(15));
                }
                i as u64 * 3 + 1
            });
            assert_eq!(out, serial);
            if stats.steals > 0 {
                assert!(stats.stolen_tasks >= stats.steals);
                stole = true;
                break;
            }
        }
        assert!(stole, "skewed fan-out on 2 workers must trigger a steal");
    }

    #[test]
    fn panic_in_task_does_not_poison_pool_or_deadlock_join() {
        let pool = Pool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(32, |i| {
                if i == 17 {
                    panic!("boom at 17");
                }
                i
            })
        }));
        let payload = caught.expect_err("task panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom at 17");
        // The pool survives: workers drained the aborted fan-out and the
        // next fan-out runs normally.
        assert_eq!(pool.run_indexed(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
        // The scoped path contains panics the same way.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_indexed(8, |i| if i == 3 { panic!("scoped boom") } else { i })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.scoped_indexed(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn surplus_workers_idle_on_narrow_fanouts() {
        // More workers than items: the fan-out narrows its deques and the
        // surplus workers return without touching anything.
        let pool = Pool::new(8);
        assert_eq!(pool.run_indexed(3, |i| i), vec![0, 1, 2]);
        assert_eq!(pool.scoped_indexed(1, |i| i + 9), vec![9]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Model check: for any (n, workers) and a pure f, both execution
        /// paths produce exactly the serial map — steal interleavings and
        /// worker counts are invisible in the output.
        #[test]
        fn pool_matches_serial_for_any_shape(
            n in 0usize..200,
            workers in 1usize..5,
            salt in any::<u64>(),
        ) {
            let f = move |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
            let serial: Vec<u64> = (0..n).map(f).collect();
            let pool = Pool::new(workers);
            prop_assert_eq!(&pool.run_indexed(n, f)[..], &serial[..]);
            prop_assert_eq!(&pool.scoped_indexed(n, f)[..], &serial[..]);
        }
    }
}
