//! `tpnr-par`: dependency-free deterministic fork-join helpers.
//!
//! The workspace's parallelism needs are narrow: run a pure function over
//! an index range on however many cores the host offers, and join the
//! results **in index order** so callers observe exactly what a serial
//! loop would have produced. That determinism requirement is load-bearing —
//! Merkle leaf hashing and the E6 trial grid both feed seeded, replayable
//! pipelines where "same seed → same trace" must survive parallel
//! execution. Keeping the crate free of dependencies (std only) lets
//! `tpnr-crypto` use it without cycles and keeps the offline build trivial.

#![forbid(unsafe_code)]

/// Maps `f` over `0..n` using scoped threads and returns the results in
/// index order. `f` must be pure for the output to be deterministic; the
/// scheduling below never reorders results regardless of which worker
/// finishes first.
///
/// Work is split into contiguous chunks, one per worker, where the worker
/// count is `min(available_parallelism, n)`. With `n == 0` no threads are
/// spawned and an empty vector is returned.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + i));
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("worker filled every slot")).collect()
}

/// Runs `f` over every item of `items` in place, in parallel, and returns
/// the per-item results in index order. The sharded-world settle fan-out
/// uses this: each lane is mutated by exactly one worker (contiguous
/// `chunks_mut` split, no aliasing), so no locks are needed and the output
/// is what the serial `for` loop would have produced.
///
/// `f` receives the item's index and a mutable reference to it. Worker
/// count and chunking follow [`par_map_indexed`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((w, item_chunk), slot_chunk) in
            items.chunks_mut(chunk).enumerate().zip(out.chunks_mut(chunk))
        {
            let f = &f;
            scope.spawn(move || {
                for (i, (item, slot)) in
                    item_chunk.iter_mut().zip(slot_chunk.iter_mut()).enumerate()
                {
                    *slot = Some(f(w * chunk + i, item));
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range_spawns_nothing() {
        let out: Vec<u64> = par_map_indexed(0, |_| unreachable!("no indices to map"));
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_items_than_workers() {
        // With n below available_parallelism the worker count is clamped to
        // n, so every index still maps exactly once.
        let out = par_map_indexed(2, |i| i * 10);
        assert_eq!(out, vec![0, 10]);
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn n_not_divisible_by_chunk_size() {
        // A prime n forces a ragged final chunk on any multi-worker split.
        let n = 97;
        let out = par_map_indexed(n, |i| i as u64 * i as u64);
        assert_eq!(out.len(), n);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn results_join_in_index_order() {
        // Make late indices cheap and early indices expensive so workers
        // finish out of order; the join must still be index-ordered.
        let n = 64;
        let out = par_map_indexed(n, |i| {
            let spins = (n - i) * 1000;
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn matches_serial_map_exactly() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9e3779b9)).collect();
        let parallel = par_map_indexed(1000, |i| (i as u64).wrapping_mul(0x9e3779b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_mut_mutates_every_item_once_and_joins_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let results = par_map_mut(&mut items, |i, v| {
            *v += 1_000;
            (i, *v)
        });
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1_000, "item {i} mutated exactly once");
        }
        for (idx, (i, v)) in results.iter().enumerate() {
            assert_eq!(idx, *i);
            assert_eq!(*v, idx as u64 + 1_000);
        }
    }

    #[test]
    fn par_map_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_mut(&mut empty, |_, v| *v);
        assert!(out.is_empty());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, |_, v| *v * 6), vec![42]);
    }
}
