//! Minimal, dependency-free drop-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `proptest`
//! cannot be fetched. This shim keeps the workspace's property tests
//! compiling and running with the same source text:
//!
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy, ..) {..} }`
//! - `any::<T>()` for the integer/bool types the tests draw
//! - integer and float range strategies (`0u64..1000`, `0.0f64..0.6`, …)
//! - `proptest::collection::vec(elem, len_range)`
//! - tuple strategies + `.prop_map(..)`
//! - string strategies from simple character-class patterns
//!   (`"[a-z]{1,8}"` — full regex syntax is *not* supported)
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic across runs), and failing inputs are
//! printed but **not shrunk**.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod test_runner {
    /// Run configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Configures the number of cases to run.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator: good enough statistics for test
    /// data, zero dependencies, and stable across platforms.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test-name string (FNV-1a), so every
        /// property gets a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            // Rejection sampling keeps the distribution uniform.
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of test values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Produces arbitrary values of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` entry point.
pub fn any<T>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Strategy for Any<[u8; N]> {
    type Value = [u8; N];
    fn sample(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        out
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strings from a `"[class]{m,n}"` pattern. Only this simple character-class
/// shape is understood; anything else falls back to short alphanumerics.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            (
                "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789".chars().collect(),
                0,
                16,
            )
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            for c in a..=b {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    (!alphabet.is_empty() && lo <= hi).then_some((alphabet, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the workspace's test files import.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ..)` into a
/// `#[test]` (the attribute is written inside the block, as in real
/// proptest) running `cases` generated inputs. Failing inputs are printed
/// before the panic propagates; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg),*
                    );
                    let __run = move || { $body };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {}/{} failed with inputs:\n{}",
                            __case + 1, __config.cases, __inputs
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
