//! The arbitrator — Figure 6(d): "If disputation happens, the Arbitrator can
//! ask Alice and Bob to provide evidence for judging."
//!
//! Judgement is a pure function over submitted evidence, so its fairness
//! properties are directly testable:
//!
//! * an honest client whose data was tampered **always** wins (she holds
//!   Bob's upload-time NRR and Bob's download-time NRR with different
//!   hashes — both signed by Bob);
//! * a blackmailing client (paper §2.4 concern 4) **always** loses: the
//!   provider's evidence shows upload hash = download hash;
//! * forged evidence never helps: every signature is re-verified against
//!   the authenticated directory before it counts.

use crate::config::ProtocolConfig;
use crate::evidence::{Flag, VerifiedEvidence};
use crate::principal::{Directory, PrincipalId};
use std::cell::RefCell;
use tpnr_crypto::ChaChaRng;

/// A dispute brought before the arbitrator.
///
/// Each side submits whatever archived evidence it chooses; withholding is
/// allowed (and handled).
#[derive(Debug, Clone, Default)]
pub struct DisputeCase {
    /// The complaining client.
    pub claimant: Option<PrincipalId>,
    /// The accused provider.
    pub respondent: Option<PrincipalId>,
    /// Claimant's copy of the provider-signed upload receipt (NRR).
    pub upload_nrr: Option<VerifiedEvidence>,
    /// Claimant's copy of the provider-signed download response (NRR).
    pub download_nrr: Option<VerifiedEvidence>,
    /// Respondent's copy of the client-signed upload transfer (NRO).
    pub upload_nro: Option<VerifiedEvidence>,
    /// Respondent's copy of the client-signed download request (NRO).
    pub download_nro: Option<VerifiedEvidence>,
}

/// The arbitrator's ruling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The provider is liable: it signed for one content at upload and a
    /// different content at download.
    ProviderAtFault,
    /// The claim fails: the provider served exactly what was uploaded
    /// (blackmail defence).
    ClaimRejected,
    /// The evidence is insufficient or mutually consistent with either
    /// story; no liability assigned.
    Inconclusive,
    /// A party submitted forged or invalid evidence; ruled against it.
    ForgedEvidence {
        /// The party whose submission failed verification.
        by_claimant: bool,
    },
}

/// The arbitrator: holds the authenticated directory and the protocol
/// config (to know the signature policy).
pub struct Arbitrator {
    cfg: ProtocolConfig,
    dir: Directory,
    /// Source of the random exponents for batched signature screening.
    /// Interior mutability keeps `judge` a `&self` pure-function façade:
    /// the rng never influences a verdict (a failed combined check falls
    /// back to serial verification), it only randomizes the batch test.
    rng: RefCell<ChaChaRng>,
}

/// One submission in a dispute case, in the canonical screening order.
struct Submission<'a> {
    ev: &'a VerifiedEvidence,
    expected_flags: &'a [Flag],
    expected_signer: Option<PrincipalId>,
    /// Who is ruled against if this submission turns out forged.
    by_claimant: bool,
}

impl Arbitrator {
    /// Creates an arbitrator over the given PKI directory.
    ///
    /// The internal rng (batch-screening exponents only) is fixed-seeded for
    /// reproducible simulation runs; deployments where the evidence
    /// submitter could predict the arbitrator's exponents should prefer
    /// [`Arbitrator::with_rng`] with an unpredictable seed (see DESIGN.md
    /// §4.13 on batch-verify soundness).
    pub fn new(cfg: ProtocolConfig, dir: Directory) -> Self {
        // Seed bytes spell "ARBITER".
        Self::with_rng(cfg, dir, ChaChaRng::seed_from_u64(0x0041_5242_4954_4552))
    }

    /// Creates an arbitrator with a caller-supplied rng for the batched
    /// signature screening.
    pub fn with_rng(cfg: ProtocolConfig, dir: Directory, rng: ChaChaRng) -> Self {
        Arbitrator { cfg, dir, rng: RefCell::new(rng) }
    }

    /// Verifies one submitted evidence item: correct signer key, valid
    /// signatures, expected flag and (when known) expected signer identity.
    fn admissible(
        &self,
        ev: &VerifiedEvidence,
        expected_flags: &[Flag],
        expected_signer: Option<PrincipalId>,
    ) -> bool {
        if !expected_flags.contains(&ev.plaintext.flag) {
            return false;
        }
        if let Some(signer) = expected_signer {
            if ev.plaintext.sender != signer {
                return false;
            }
        }
        let Some(pk) = self.dir.lookup(&ev.plaintext.sender) else {
            return false;
        };
        crate::evidence::reverify_batch(&self.cfg, pk, &[ev], &mut self.rng.borrow_mut()).is_ok()
    }

    /// Screens every submitted item, batching the RSA signature checks of
    /// items signed by the same principal (each evidence token contributes
    /// two signatures, so a full case screens the provider's two NRRs — four
    /// signatures — in one combined pass, and likewise the claimant's NROs).
    ///
    /// Returns the verdict for the **first** inadmissible submission in
    /// `subs` order, reproducing exactly what per-item serial screening
    /// would rule: structural defects and signature failures are collected
    /// for every item and the minimum index wins, which is the same item a
    /// stop-at-first-failure scan would have stopped at.
    fn screen(&self, subs: &[Submission<'_>]) -> Option<Verdict> {
        // Index (into subs) of the first known failure, if any.
        let mut first_bad: Option<usize> = None;
        let note = |idx: usize, bad: &mut Option<usize>| {
            if bad.map(|b| idx < b).unwrap_or(true) {
                *bad = Some(idx);
            }
        };
        // Pass 1: structural checks (flag, claimed signer, key present).
        // Structurally sound items are queued for signature checking,
        // grouped by signer in order of first appearance.
        let mut groups: Vec<(PrincipalId, Vec<usize>)> = Vec::new();
        for (idx, sub) in subs.iter().enumerate() {
            let sound = sub.expected_flags.contains(&sub.ev.plaintext.flag)
                && sub.expected_signer.map(|s| sub.ev.plaintext.sender == s).unwrap_or(true)
                && self.dir.lookup(&sub.ev.plaintext.sender).is_some();
            if !sound {
                note(idx, &mut first_bad);
                continue;
            }
            let signer = sub.ev.plaintext.sender;
            match groups.iter_mut().find(|(s, _)| *s == signer) {
                Some((_, idxs)) => idxs.push(idx),
                None => groups.push((signer, vec![idx])),
            }
        }
        // Pass 2: one batched signature check per signer.
        for (signer, idxs) in &groups {
            let Some(pk) = self.dir.lookup(signer) else { continue };
            let evs: Vec<&VerifiedEvidence> = idxs.iter().map(|&i| subs[i].ev).collect();
            if let Err((i, _)) =
                crate::evidence::reverify_batch(&self.cfg, pk, &evs, &mut self.rng.borrow_mut())
            {
                if let Some(&orig) = idxs.get(i) {
                    note(orig, &mut first_bad);
                }
            }
        }
        first_bad
            .and_then(|idx| subs.get(idx))
            .map(|sub| Verdict::ForgedEvidence { by_claimant: sub.by_claimant })
    }

    /// Rules on a tampering claim: "the data I downloaded is not the data I
    /// uploaded".
    pub fn judge(&self, case: &DisputeCase) -> Verdict {
        // Step 1: screen every submission; forged evidence settles the case
        // immediately against the submitting party. Same-signer submissions
        // share one batched RSA check (see [`Arbitrator::screen`]).
        let mut subs: Vec<Submission<'_>> = Vec::with_capacity(4);
        if let Some(ev) = &case.upload_nrr {
            subs.push(Submission {
                ev,
                expected_flags: &[Flag::UploadReceipt],
                expected_signer: case.respondent,
                by_claimant: true,
            });
        }
        if let Some(ev) = &case.download_nrr {
            subs.push(Submission {
                ev,
                expected_flags: &[Flag::DownloadResponse],
                expected_signer: case.respondent,
                by_claimant: true,
            });
        }
        if let Some(ev) = &case.upload_nro {
            subs.push(Submission {
                ev,
                expected_flags: &[Flag::UploadRequest],
                expected_signer: case.claimant,
                by_claimant: false,
            });
        }
        if let Some(ev) = &case.download_nro {
            subs.push(Submission {
                ev,
                expected_flags: &[Flag::DownloadRequest],
                expected_signer: case.claimant,
                by_claimant: false,
            });
        }
        if let Some(verdict) = self.screen(&subs) {
            return verdict;
        }
        let up_nrr = case.upload_nrr.as_ref();
        let down_nrr = case.download_nrr.as_ref();
        let up_nro = case.upload_nro.as_ref();

        // Step 2: compare provider commitments for the same object.
        if let (Some(up), Some(down)) = (up_nrr, down_nrr) {
            if up.plaintext.object == down.plaintext.object
                && up.plaintext.hash_alg == down.plaintext.hash_alg
            {
                return if tpnr_crypto::ct::eq(&up.plaintext.data_hash, &down.plaintext.data_hash) {
                    // Provider provably served exactly what it received.
                    Verdict::ClaimRejected
                } else {
                    // Provider signed two different contents for one object.
                    Verdict::ProviderAtFault
                };
            }
            // Evidence about different objects proves nothing.
            return Verdict::Inconclusive;
        }

        // Step 3: claimant withheld the upload receipt. The provider can
        // still clear itself with the client's own upload NRO: if the hash
        // Alice signed at upload equals the hash Bob signed at download,
        // Alice received what she sent.
        if let (Some(nro), Some(down)) = (up_nro, down_nrr) {
            if nro.plaintext.object == down.plaintext.object
                && nro.plaintext.hash_alg == down.plaintext.hash_alg
            {
                return if tpnr_crypto::ct::eq(&nro.plaintext.data_hash, &down.plaintext.data_hash) {
                    Verdict::ClaimRejected
                } else {
                    Verdict::ProviderAtFault
                };
            }
        }

        Verdict::Inconclusive
    }
}

/// A loss dispute: "the provider cannot produce the object at all."
///
/// Distinct from tampering — there is no download NRR because the download
/// never completed. The claimant presents the upload receipt (the provider
/// signed for custody of the object) plus, if the download was attempted
/// through the Resolve path, the TTP's signed failure statement; the
/// respondent can clear itself by producing the object bytes matching the
/// receipt hash.
#[derive(Debug, Clone, Default)]
pub struct LossCase {
    /// The complaining client.
    pub claimant: Option<PrincipalId>,
    /// The accused provider.
    pub respondent: Option<PrincipalId>,
    /// Claimant's provider-signed upload receipt.
    pub upload_nrr: Option<VerifiedEvidence>,
    /// TTP-signed resolve-failure statement (flag = ResolveResponse,
    /// sender = TTP), proving the provider was given the chance to answer.
    pub ttp_failure: Option<VerifiedEvidence>,
    /// The bytes the respondent produces to prove continued custody
    /// (the canonical payload encoding of the stored object).
    pub produced_payload: Option<Vec<u8>>,
}

impl Arbitrator {
    /// Rules on a loss claim.
    ///
    /// * Respondent produces bytes matching the receipt's hash →
    ///   [`Verdict::ClaimRejected`] (nothing is lost).
    /// * Respondent produces nothing (or mismatching bytes) and the
    ///   claimant holds a valid receipt → [`Verdict::ProviderAtFault`]:
    ///   the provider signed for custody it can no longer honour.
    /// * No valid receipt → [`Verdict::Inconclusive`] (nothing proves the
    ///   object was ever accepted).
    pub fn judge_loss(&self, case: &LossCase) -> Verdict {
        let nrr = match &case.upload_nrr {
            Some(ev) => {
                if !self.admissible(ev, &[Flag::UploadReceipt], case.respondent) {
                    return Verdict::ForgedEvidence { by_claimant: true };
                }
                ev
            }
            None => return Verdict::Inconclusive,
        };
        if let Some(ttp_stmt) = &case.ttp_failure {
            // The failure statement must be TTP-signed, reference the same
            // transaction, and carry the ResolveResponse flag.
            let ttp_ok = ttp_stmt.plaintext.flag == Flag::ResolveResponse
                && ttp_stmt.plaintext.sender == nrr.plaintext.ttp
                && ttp_stmt.plaintext.txn_id == nrr.plaintext.txn_id
                && self
                    .dir
                    .lookup(&ttp_stmt.plaintext.sender)
                    .is_some_and(|pk| ttp_stmt.reverify(&self.cfg, pk).is_ok());
            if !ttp_ok {
                return Verdict::ForgedEvidence { by_claimant: true };
            }
        }
        match &case.produced_payload {
            Some(payload) => {
                let hash = match self.cfg.commitment {
                    crate::config::Commitment::Flat => nrr.plaintext.hash_alg.hash(payload),
                    crate::config::Commitment::Merkle { chunk_size } => {
                        tpnr_crypto::merkle::MerkleTree::build(
                            nrr.plaintext.hash_alg,
                            payload,
                            chunk_size,
                        )
                        .root()
                        .to_vec()
                    }
                };
                if tpnr_crypto::ct::eq(&hash, &nrr.plaintext.data_hash) {
                    Verdict::ClaimRejected
                } else {
                    // Producing the *wrong* bytes is as damning as none.
                    Verdict::ProviderAtFault
                }
            }
            None => Verdict::ProviderAtFault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TimeoutStrategy;
    use crate::runner::World;

    /// Builds a settled world with an upload and a download, optionally
    /// tampering in between; returns (world, upload txn, download txn).
    fn story(tamper: bool) -> (World, u64, u64) {
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"true accounts".to_vec(), TimeoutStrategy::AbortFirst);
        if tamper {
            w.provider.tamper_storage(b"ledger", b"cooked accounts".to_vec());
        }
        let down = w.download(b"ledger", TimeoutStrategy::AbortFirst);
        (w, up.txn_id, down.txn_id)
    }

    fn arbitrator(w: &World) -> Arbitrator {
        // Rebuild the directory the way the world does.
        let alice = crate::principal::Principal::test("alice", 5u64.wrapping_mul(3) + 1);
        let bob = crate::principal::Principal::test("bob", 5u64.wrapping_mul(3) + 2);
        let ttp = crate::principal::Principal::test("ttp", 5u64.wrapping_mul(3) + 3);
        let mut dir = Directory::new();
        dir.register(&alice);
        dir.register(&bob);
        dir.register(&ttp);
        let _ = w;
        Arbitrator::new(ProtocolConfig::full(), dir)
    }

    fn full_case(w: &World, up: u64, down: u64) -> DisputeCase {
        DisputeCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up).and_then(|t| t.nrr.clone()),
            download_nrr: w.client.txn(down).and_then(|t| t.nrr.clone()),
            upload_nro: w.provider.txn(up).map(|t| t.nro.clone()),
            download_nro: w.provider.txn(down).map(|t| t.nro.clone()),
        }
    }

    #[test]
    fn honest_client_wins_after_tamper() {
        let (w, up, down) = story(true);
        let arb = arbitrator(&w);
        assert_eq!(arb.judge(&full_case(&w, up, down)), Verdict::ProviderAtFault);
    }

    #[test]
    fn blackmailer_loses_on_clean_roundtrip() {
        // Alice claims tampering but nothing was tampered (paper's
        // "blackmail" concern): the evidence exonerates the provider.
        let (w, up, down) = story(false);
        let arb = arbitrator(&w);
        assert_eq!(arb.judge(&full_case(&w, up, down)), Verdict::ClaimRejected);
    }

    #[test]
    fn provider_cleared_even_if_claimant_withholds_upload_receipt() {
        let (w, up, down) = story(false);
        let arb = arbitrator(&w);
        let mut case = full_case(&w, up, down);
        case.upload_nrr = None; // Alice hides the receipt that would sink her
        assert_eq!(arb.judge(&case), Verdict::ClaimRejected);
    }

    #[test]
    fn tamper_still_proven_without_upload_receipt() {
        // Even using only Bob's own records: Alice's NRO (hash of the true
        // data) vs Bob's download NRR (hash of tampered data).
        let (w, up, down) = story(true);
        let arb = arbitrator(&w);
        let mut case = full_case(&w, up, down);
        case.upload_nrr = None;
        assert_eq!(arb.judge(&case), Verdict::ProviderAtFault);
    }

    #[test]
    fn missing_everything_is_inconclusive() {
        let (w, _, _) = story(true);
        let arb = arbitrator(&w);
        let case = DisputeCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            ..Default::default()
        };
        assert_eq!(arb.judge(&case), Verdict::Inconclusive);
    }

    #[test]
    fn forged_receipt_ruled_against_claimant() {
        let (w, up, down) = story(false);
        let arb = arbitrator(&w);
        let mut case = full_case(&w, up, down);
        // Alice edits the hash inside "Bob's" receipt to fake a mismatch.
        if let Some(ev) = case.upload_nrr.as_mut() {
            ev.plaintext.data_hash[0] ^= 1;
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: true });
    }

    #[test]
    fn forged_nro_ruled_against_respondent() {
        let (w, up, down) = story(true);
        let arb = arbitrator(&w);
        let mut case = full_case(&w, up, down);
        case.upload_nrr = None;
        // Bob edits Alice's NRO to make the upload hash match his tampered
        // download hash.
        if let (Some(nro), Some(dn)) = (case.upload_nro.as_mut(), case.download_nrr.as_ref()) {
            nro.plaintext.data_hash = dn.plaintext.data_hash.clone();
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: false });
    }

    #[test]
    fn evidence_about_different_objects_is_inconclusive() {
        let mut w = World::new(5, ProtocolConfig::full());
        let up_a = w.upload(b"obj-a", b"aaa".to_vec(), TimeoutStrategy::AbortFirst);
        let up_b = w.upload(b"obj-b", b"bbb".to_vec(), TimeoutStrategy::AbortFirst);
        let down_b = w.download(b"obj-b", TimeoutStrategy::AbortFirst);
        let arb = arbitrator(&w);
        // Alice pairs the receipt for obj-a with the download of obj-b.
        let case = DisputeCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up_a.txn_id).and_then(|t| t.nrr.clone()),
            download_nrr: w.client.txn(down_b.txn_id).and_then(|t| t.nrr.clone()),
            ..Default::default()
        };
        assert_eq!(arb.judge(&case), Verdict::Inconclusive);
        let _ = up_b;
    }

    #[test]
    fn loss_claim_with_receipt_and_no_production_convicts() {
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"archived data".to_vec(), TimeoutStrategy::AbortFirst);
        let arb = arbitrator(&w);
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
            ttp_failure: None,
            produced_payload: None,
        };
        assert_eq!(arb.judge_loss(&case), Verdict::ProviderAtFault);
    }

    #[test]
    fn loss_claim_defeated_by_producing_the_object() {
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"archived data".to_vec(), TimeoutStrategy::AbortFirst);
        let arb = arbitrator(&w);
        // The provider produces the canonical payload of the stored object.
        let payload = crate::session::Payload {
            key: b"ledger".to_vec(),
            data: w.provider.peek_storage(b"ledger").unwrap().to_vec().into(),
        };
        use tpnr_net::codec::Wire as _;
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
            ttp_failure: None,
            produced_payload: Some(payload.to_wire()),
        };
        assert_eq!(arb.judge_loss(&case), Verdict::ClaimRejected);
    }

    #[test]
    fn loss_claim_with_wrong_bytes_convicts() {
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"archived data".to_vec(), TimeoutStrategy::AbortFirst);
        w.provider.tamper_storage(b"ledger", b"rotted".to_vec());
        let arb = arbitrator(&w);
        let payload = crate::session::Payload {
            key: b"ledger".to_vec(),
            data: w.provider.peek_storage(b"ledger").unwrap().to_vec().into(),
        };
        use tpnr_net::codec::Wire as _;
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
            ttp_failure: None,
            produced_payload: Some(payload.to_wire()),
        };
        assert_eq!(arb.judge_loss(&case), Verdict::ProviderAtFault);
    }

    #[test]
    fn loss_claim_without_receipt_is_inconclusive() {
        let w = World::new(5, ProtocolConfig::full());
        let arb = arbitrator(&w);
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            ..Default::default()
        };
        assert_eq!(arb.judge_loss(&case), Verdict::Inconclusive);
    }

    #[test]
    fn loss_claim_with_forged_receipt_or_ttp_statement_backfires() {
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"archived data".to_vec(), TimeoutStrategy::AbortFirst);
        let arb = arbitrator(&w);
        let mut nrr = w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()).unwrap();
        nrr.plaintext.data_hash[0] ^= 1;
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: Some(nrr),
            ttp_failure: None,
            produced_payload: None,
        };
        assert_eq!(arb.judge_loss(&case), Verdict::ForgedEvidence { by_claimant: true });

        // A "TTP statement" actually fabricated by Alice fails reverify.
        let good_nrr = w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()).unwrap();
        let fake_ttp = w.client.txn(up.txn_id).unwrap().nro.clone();
        let case = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: Some(good_nrr),
            ttp_failure: Some(fake_ttp),
            produced_payload: None,
        };
        assert_eq!(arb.judge_loss(&case), Verdict::ForgedEvidence { by_claimant: true });
    }

    #[test]
    fn verdicts_unchanged_by_constant_time_comparison() {
        // Regression for the ct::eq conversion of the three hash
        // comparisons in judge()/judge_loss(): every verdict branch that
        // flows through a comparison must rule exactly as the old `==` did.
        use tpnr_net::codec::Wire as _;

        // Step-2 site (upload NRR vs download NRR): equal hashes reject the
        // claim, differing same-length hashes convict.
        let (w, up, down) = story(false);
        assert_eq!(arbitrator(&w).judge(&full_case(&w, up, down)), Verdict::ClaimRejected);
        let (w, up, down) = story(true);
        assert_eq!(arbitrator(&w).judge(&full_case(&w, up, down)), Verdict::ProviderAtFault);

        // Step-3 site (upload NRO vs download NRR, receipt withheld).
        let (w, up, down) = story(false);
        let mut case = full_case(&w, up, down);
        case.upload_nrr = None;
        assert_eq!(arbitrator(&w).judge(&case), Verdict::ClaimRejected);
        let (w, up, down) = story(true);
        let mut case = full_case(&w, up, down);
        case.upload_nrr = None;
        assert_eq!(arbitrator(&w).judge(&case), Verdict::ProviderAtFault);

        // judge_loss site (produced payload hash vs receipt hash).
        let mut w = World::new(5, ProtocolConfig::full());
        let up = w.upload(b"ledger", b"archived data".to_vec(), TimeoutStrategy::AbortFirst);
        let arb = arbitrator(&w);
        let honest = crate::session::Payload {
            key: b"ledger".to_vec(),
            data: w.provider.peek_storage(b"ledger").unwrap().to_vec().into(),
        };
        let base = LossCase {
            claimant: Some(w.client.id()),
            respondent: Some(w.provider.id()),
            upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
            ttp_failure: None,
            produced_payload: Some(honest.to_wire()),
        };
        assert_eq!(arb.judge_loss(&base), Verdict::ClaimRejected);
        // Producing the wrong bytes must still convict, same as `==`.
        let short =
            crate::session::Payload { key: b"ledger".to_vec(), data: b"arch".to_vec().into() };
        let mut case = base.clone();
        case.produced_payload = Some(short.to_wire());
        assert_eq!(arb.judge_loss(&case), Verdict::ProviderAtFault);
    }

    #[test]
    fn batched_screen_attributes_each_position() {
        // The screen batches same-signer submissions (two provider NRRs,
        // two claimant NROs) into combined RSA checks; tampering any single
        // submission must still rule against the right party, exactly as
        // per-item screening did.
        let (w, up, down) = story(false);
        let arb = arbitrator(&w);

        // Second provider item (download NRR) forged → against claimant.
        let mut case = full_case(&w, up, down);
        if let Some(ev) = case.download_nrr.as_mut() {
            ev.sig_plaintext[7] ^= 1;
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: true });

        // Second claimant item (download NRO) forged → against respondent.
        let mut case = full_case(&w, up, down);
        if let Some(ev) = case.download_nro.as_mut() {
            ev.sig_data_hash[7] ^= 1;
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: false });

        // Both groups bad: the NRRs are screened first, so the verdict goes
        // against the claimant — the same order serial screening used.
        let mut case = full_case(&w, up, down);
        if let Some(ev) = case.upload_nrr.as_mut() {
            ev.sig_data_hash[1] ^= 1;
        }
        if let Some(ev) = case.upload_nro.as_mut() {
            ev.sig_data_hash[1] ^= 1;
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: true });

        // A structural defect on a later item does not mask an earlier
        // signature failure (min-index merge).
        let mut case = full_case(&w, up, down);
        if let Some(ev) = case.upload_nrr.as_mut() {
            ev.sig_data_hash[1] ^= 1; // signature failure at position 0
        }
        if let Some(ev) = case.download_nro.as_mut() {
            ev.plaintext.flag = Flag::AbortRequest; // structural failure later
        }
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: true });

        // And an untampered full case still verifies through the batch path.
        assert_eq!(arb.judge(&full_case(&w, up, down)), Verdict::ClaimRejected);
    }

    #[test]
    fn evidence_signed_by_wrong_party_is_forged() {
        let (w, up, down) = story(false);
        let arb = arbitrator(&w);
        let mut case = full_case(&w, up, down);
        // Claimant presents her own NRO dressed up as Bob's receipt.
        let own = w.client.txn(up).unwrap().nro.clone();
        case.upload_nrr = Some(VerifiedEvidence {
            plaintext: crate::evidence::EvidencePlaintext {
                flag: Flag::UploadReceipt,
                ..own.plaintext.clone()
            },
            ..own
        });
        assert_eq!(arb.judge(&case), Verdict::ForgedEvidence { by_claimant: true });
    }
}
