//! Protocol configuration and ablation switches.
//!
//! Section 5 of the paper argues TPNR resists five classic attacks, each
//! defeated by a specific design element. To show those elements are
//! *load-bearing* (experiment E3), every one can be switched off
//! individually; `tpnr-attacks` then demonstrates the matching attack
//! succeeding against the weakened variant.

use crate::fault::{FaultPlan, RetryPolicy};
use tpnr_crypto::hash::HashAlg;
use tpnr_net::time::SimDuration;

/// How evidence commits to a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Commitment {
    /// A flat hash of the canonical payload bytes (the paper's MD5-style
    /// commitment).
    Flat,
    /// A Merkle-tree root over fixed-size chunks of the payload bytes —
    /// same binding strength, but enables partial verification and the
    /// storage-audit extension (`tpnr_core::chunked`), which matters at the
    /// paper's TB scale.
    Merkle {
        /// Chunk size in bytes.
        chunk_size: usize,
    },
}

/// Tunable protocol parameters plus the §5 defence switches.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Hash algorithm for data integrity inside evidence.
    pub hash_alg: HashAlg,
    /// Payload commitment scheme (flat hash or Merkle root).
    pub commitment: Commitment,
    /// How long a party waits for the counterparty before invoking
    /// Abort/Resolve (the paper's "pre-set time-out limit").
    pub response_timeout: SimDuration,
    /// Validity window stamped into each message ("we add a time limit
    /// field into the message in order to limit the reception time").
    pub message_time_limit: SimDuration,

    // ---- §5 defence ablations (all true = the full TPNR protocol) ----
    /// §5.1: authenticate public keys against the certified directory.
    /// Off → man-in-the-middle key substitution succeeds.
    pub authenticate_keys: bool,
    /// §5.4: bind a strictly-increasing per-transaction sequence number
    /// under the sender's signature. Off → replayed messages are accepted.
    pub check_sequence_numbers: bool,
    /// §5.2/§5.3: include sender/recipient/TTP identities (direction
    /// binding) in the signed plaintext. Off → reflection/interleaving
    /// succeed.
    pub bind_identities: bool,
    /// §5.5: enforce the per-message time limit on reception.
    /// Off → stale messages are accepted indefinitely.
    pub enforce_time_limits: bool,
    /// §4.1: require the evidence signature over the data hash. Off → the
    /// protocol degrades to unauthenticated checksums (repudiation returns).
    pub require_signatures: bool,

    // ---- crash-recovery subsystem ----
    /// Retry schedule for timeout-driven Abort/Resolve resends. The default
    /// ([`RetryPolicy::legacy`]) reproduces the fixed `response_timeout`
    /// behaviour exactly.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection schedule. The default is inert.
    pub faults: FaultPlan,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            hash_alg: HashAlg::Sha256,
            commitment: Commitment::Flat,
            response_timeout: SimDuration::from_secs(30),
            message_time_limit: SimDuration::from_secs(120),
            authenticate_keys: true,
            check_sequence_numbers: true,
            bind_identities: true,
            enforce_time_limits: true,
            require_signatures: true,
            retry: RetryPolicy::legacy(),
            faults: FaultPlan::none(),
        }
    }
}

impl ProtocolConfig {
    /// The full protocol exactly as the paper specifies.
    pub fn full() -> Self {
        Self::default()
    }

    /// Typed builder starting from the fully-defended defaults. Preferred
    /// over raw struct construction now that the config carries fault and
    /// retry sub-structures.
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder { cfg: Self::default() }
    }

    /// MD5 evidence hashing, mirroring the 2010 platforms.
    pub fn with_md5(mut self) -> Self {
        self.hash_alg = HashAlg::Md5;
        self
    }

    /// Merkle-root commitments with the given chunk size (enables the
    /// storage-audit extension).
    pub fn with_merkle(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.commitment = Commitment::Merkle { chunk_size };
        self
    }

    /// Named ablations used by the attack-matrix experiment.
    pub fn ablated(which: Ablation) -> Self {
        let mut cfg = Self::default();
        match which {
            Ablation::None => {}
            Ablation::NoKeyAuthentication => cfg.authenticate_keys = false,
            Ablation::NoSequenceNumbers => cfg.check_sequence_numbers = false,
            Ablation::NoIdentityBinding => cfg.bind_identities = false,
            Ablation::NoTimeLimits => cfg.enforce_time_limits = false,
            Ablation::NoSignatures => cfg.require_signatures = false,
        }
        cfg
    }
}

/// Typed builder for [`ProtocolConfig`]. Starts from the fully-defended
/// defaults; every setter is explicit, so call sites no longer juggle five
/// positional booleans and two durations through struct-update syntax.
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    cfg: ProtocolConfig,
}

impl ProtocolConfigBuilder {
    /// Hash algorithm for evidence data integrity.
    pub fn hash_alg(mut self, alg: HashAlg) -> Self {
        self.cfg.hash_alg = alg;
        self
    }

    /// MD5 evidence hashing (the 2010 platforms' choice).
    pub fn md5(self) -> Self {
        self.hash_alg(HashAlg::Md5)
    }

    /// Payload commitment scheme.
    pub fn commitment(mut self, c: Commitment) -> Self {
        self.cfg.commitment = c;
        self
    }

    /// Merkle-root commitments with the given chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero, matching
    /// [`ProtocolConfig::with_merkle`].
    pub fn merkle(self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.commitment(Commitment::Merkle { chunk_size })
    }

    /// Abort/Resolve base timeout (the paper's "pre-set time-out limit").
    pub fn response_timeout(mut self, d: SimDuration) -> Self {
        self.cfg.response_timeout = d;
        self
    }

    /// Per-message validity window.
    pub fn message_time_limit(mut self, d: SimDuration) -> Self {
        self.cfg.message_time_limit = d;
        self
    }

    /// §5.1 public-key authentication switch.
    pub fn authenticate_keys(mut self, on: bool) -> Self {
        self.cfg.authenticate_keys = on;
        self
    }

    /// §5.4 sequence-number checking switch.
    pub fn check_sequence_numbers(mut self, on: bool) -> Self {
        self.cfg.check_sequence_numbers = on;
        self
    }

    /// §5.2/§5.3 identity/direction binding switch.
    pub fn bind_identities(mut self, on: bool) -> Self {
        self.cfg.bind_identities = on;
        self
    }

    /// §5.5 reception time-limit enforcement switch.
    pub fn enforce_time_limits(mut self, on: bool) -> Self {
        self.cfg.enforce_time_limits = on;
        self
    }

    /// §4.1 evidence-signature requirement switch.
    pub fn require_signatures(mut self, on: bool) -> Self {
        self.cfg.require_signatures = on;
        self
    }

    /// Apply a named E3 ablation on top of the current settings.
    pub fn ablation(mut self, which: Ablation) -> Self {
        match which {
            Ablation::None => {}
            Ablation::NoKeyAuthentication => self.cfg.authenticate_keys = false,
            Ablation::NoSequenceNumbers => self.cfg.check_sequence_numbers = false,
            Ablation::NoIdentityBinding => self.cfg.bind_identities = false,
            Ablation::NoTimeLimits => self.cfg.enforce_time_limits = false,
            Ablation::NoSignatures => self.cfg.require_signatures = false,
        }
        self
    }

    /// Retry schedule for timeout-driven resends.
    pub fn retry_policy(mut self, p: RetryPolicy) -> Self {
        self.cfg.retry = p;
        self
    }

    /// Deterministic fault-injection schedule.
    pub fn fault_plan(mut self, p: FaultPlan) -> Self {
        self.cfg.faults = p;
        self
    }

    /// Finish, yielding the configured [`ProtocolConfig`].
    pub fn build(self) -> ProtocolConfig {
        self.cfg
    }
}

/// One defence removed (for the E3 attack matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Full protocol, nothing removed.
    None,
    /// Drop §5.1 public-key authentication.
    NoKeyAuthentication,
    /// Drop §5.4 sequence-number checking.
    NoSequenceNumbers,
    /// Drop §5.2/§5.3 identity/direction binding.
    NoIdentityBinding,
    /// Drop §5.5 message time limits.
    NoTimeLimits,
    /// Drop §4.1 evidence signatures.
    NoSignatures,
}

impl Ablation {
    /// All variants, full protocol first.
    pub fn all() -> [Ablation; 6] {
        [
            Ablation::None,
            Ablation::NoKeyAuthentication,
            Ablation::NoSequenceNumbers,
            Ablation::NoIdentityBinding,
            Ablation::NoTimeLimits,
            Ablation::NoSignatures,
        ]
    }

    /// Display label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::None => "full-TPNR",
            Ablation::NoKeyAuthentication => "-key-auth",
            Ablation::NoSequenceNumbers => "-seq-numbers",
            Ablation::NoIdentityBinding => "-identity-binding",
            Ablation::NoTimeLimits => "-time-limits",
            Ablation::NoSignatures => "-signatures",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_defended() {
        let c = ProtocolConfig::default();
        assert!(c.authenticate_keys && c.check_sequence_numbers && c.bind_identities);
        assert!(c.enforce_time_limits && c.require_signatures);
        assert_eq!(c.hash_alg, HashAlg::Sha256);
    }

    #[test]
    fn each_ablation_disables_exactly_one_defence() {
        let full = ProtocolConfig::full();
        let flags = |c: &ProtocolConfig| {
            [
                c.authenticate_keys,
                c.check_sequence_numbers,
                c.bind_identities,
                c.enforce_time_limits,
                c.require_signatures,
            ]
        };
        for a in Ablation::all() {
            let c = ProtocolConfig::ablated(a);
            let diff = flags(&full).iter().zip(flags(&c).iter()).filter(|(x, y)| x != y).count();
            let expected = if a == Ablation::None { 0 } else { 1 };
            assert_eq!(diff, expected, "{:?}", a);
        }
    }

    #[test]
    fn md5_mode() {
        assert_eq!(ProtocolConfig::full().with_md5().hash_alg, HashAlg::Md5);
    }

    #[test]
    fn merkle_mode() {
        let c = ProtocolConfig::full().with_merkle(4096);
        assert_eq!(c.commitment, Commitment::Merkle { chunk_size: 4096 });
        assert_eq!(ProtocolConfig::full().commitment, Commitment::Flat);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn merkle_zero_chunk_panics() {
        let _ = ProtocolConfig::full().with_merkle(0);
    }

    #[test]
    fn builder_defaults_match_default() {
        let b = ProtocolConfig::builder().build();
        let d = ProtocolConfig::default();
        assert_eq!(b.hash_alg, d.hash_alg);
        assert_eq!(b.commitment, d.commitment);
        assert_eq!(b.response_timeout, d.response_timeout);
        assert_eq!(b.message_time_limit, d.message_time_limit);
        assert_eq!(b.retry, d.retry);
        assert_eq!(b.faults, d.faults);
        assert!(b.authenticate_keys && b.check_sequence_numbers && b.bind_identities);
        assert!(b.enforce_time_limits && b.require_signatures);
    }

    #[test]
    fn builder_setters_apply() {
        let c = ProtocolConfig::builder()
            .md5()
            .merkle(4096)
            .response_timeout(SimDuration::from_secs(5))
            .message_time_limit(SimDuration::from_secs(10))
            .require_signatures(false)
            .retry_policy(RetryPolicy::exponential(3))
            .fault_plan(FaultPlan::none().with_seed(9))
            .build();
        assert_eq!(c.hash_alg, HashAlg::Md5);
        assert_eq!(c.commitment, Commitment::Merkle { chunk_size: 4096 });
        assert_eq!(c.response_timeout, SimDuration::from_secs(5));
        assert_eq!(c.message_time_limit, SimDuration::from_secs(10));
        assert!(!c.require_signatures);
        assert_eq!(c.retry.max_attempts, Some(3));
        assert_eq!(c.faults.seed, 9);
    }

    #[test]
    fn builder_ablation_matches_ablated() {
        for a in Ablation::all() {
            let via_builder = ProtocolConfig::builder().ablation(a).build();
            let via_fn = ProtocolConfig::ablated(a);
            assert_eq!(via_builder.authenticate_keys, via_fn.authenticate_keys, "{a:?}");
            assert_eq!(via_builder.check_sequence_numbers, via_fn.check_sequence_numbers, "{a:?}");
            assert_eq!(via_builder.bind_identities, via_fn.bind_identities, "{a:?}");
            assert_eq!(via_builder.enforce_time_limits, via_fn.enforce_time_limits, "{a:?}");
            assert_eq!(via_builder.require_signatures, via_fn.require_signatures, "{a:?}");
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            Ablation::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
