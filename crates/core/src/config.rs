//! Protocol configuration and ablation switches.
//!
//! Section 5 of the paper argues TPNR resists five classic attacks, each
//! defeated by a specific design element. To show those elements are
//! *load-bearing* (experiment E3), every one can be switched off
//! individually; `tpnr-attacks` then demonstrates the matching attack
//! succeeding against the weakened variant.

use tpnr_crypto::hash::HashAlg;
use tpnr_net::time::SimDuration;

/// How evidence commits to a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Commitment {
    /// A flat hash of the canonical payload bytes (the paper's MD5-style
    /// commitment).
    Flat,
    /// A Merkle-tree root over fixed-size chunks of the payload bytes —
    /// same binding strength, but enables partial verification and the
    /// storage-audit extension (`tpnr_core::chunked`), which matters at the
    /// paper's TB scale.
    Merkle {
        /// Chunk size in bytes.
        chunk_size: usize,
    },
}

/// Tunable protocol parameters plus the §5 defence switches.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Hash algorithm for data integrity inside evidence.
    pub hash_alg: HashAlg,
    /// Payload commitment scheme (flat hash or Merkle root).
    pub commitment: Commitment,
    /// How long a party waits for the counterparty before invoking
    /// Abort/Resolve (the paper's "pre-set time-out limit").
    pub response_timeout: SimDuration,
    /// Validity window stamped into each message ("we add a time limit
    /// field into the message in order to limit the reception time").
    pub message_time_limit: SimDuration,

    // ---- §5 defence ablations (all true = the full TPNR protocol) ----
    /// §5.1: authenticate public keys against the certified directory.
    /// Off → man-in-the-middle key substitution succeeds.
    pub authenticate_keys: bool,
    /// §5.4: bind a strictly-increasing per-transaction sequence number
    /// under the sender's signature. Off → replayed messages are accepted.
    pub check_sequence_numbers: bool,
    /// §5.2/§5.3: include sender/recipient/TTP identities (direction
    /// binding) in the signed plaintext. Off → reflection/interleaving
    /// succeed.
    pub bind_identities: bool,
    /// §5.5: enforce the per-message time limit on reception.
    /// Off → stale messages are accepted indefinitely.
    pub enforce_time_limits: bool,
    /// §4.1: require the evidence signature over the data hash. Off → the
    /// protocol degrades to unauthenticated checksums (repudiation returns).
    pub require_signatures: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            hash_alg: HashAlg::Sha256,
            commitment: Commitment::Flat,
            response_timeout: SimDuration::from_secs(30),
            message_time_limit: SimDuration::from_secs(120),
            authenticate_keys: true,
            check_sequence_numbers: true,
            bind_identities: true,
            enforce_time_limits: true,
            require_signatures: true,
        }
    }
}

impl ProtocolConfig {
    /// The full protocol exactly as the paper specifies.
    pub fn full() -> Self {
        Self::default()
    }

    /// MD5 evidence hashing, mirroring the 2010 platforms.
    pub fn with_md5(mut self) -> Self {
        self.hash_alg = HashAlg::Md5;
        self
    }

    /// Merkle-root commitments with the given chunk size (enables the
    /// storage-audit extension).
    pub fn with_merkle(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.commitment = Commitment::Merkle { chunk_size };
        self
    }

    /// Named ablations used by the attack-matrix experiment.
    pub fn ablated(which: Ablation) -> Self {
        let mut cfg = Self::default();
        match which {
            Ablation::None => {}
            Ablation::NoKeyAuthentication => cfg.authenticate_keys = false,
            Ablation::NoSequenceNumbers => cfg.check_sequence_numbers = false,
            Ablation::NoIdentityBinding => cfg.bind_identities = false,
            Ablation::NoTimeLimits => cfg.enforce_time_limits = false,
            Ablation::NoSignatures => cfg.require_signatures = false,
        }
        cfg
    }
}

/// One defence removed (for the E3 attack matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Full protocol, nothing removed.
    None,
    /// Drop §5.1 public-key authentication.
    NoKeyAuthentication,
    /// Drop §5.4 sequence-number checking.
    NoSequenceNumbers,
    /// Drop §5.2/§5.3 identity/direction binding.
    NoIdentityBinding,
    /// Drop §5.5 message time limits.
    NoTimeLimits,
    /// Drop §4.1 evidence signatures.
    NoSignatures,
}

impl Ablation {
    /// All variants, full protocol first.
    pub fn all() -> [Ablation; 6] {
        [
            Ablation::None,
            Ablation::NoKeyAuthentication,
            Ablation::NoSequenceNumbers,
            Ablation::NoIdentityBinding,
            Ablation::NoTimeLimits,
            Ablation::NoSignatures,
        ]
    }

    /// Display label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::None => "full-TPNR",
            Ablation::NoKeyAuthentication => "-key-auth",
            Ablation::NoSequenceNumbers => "-seq-numbers",
            Ablation::NoIdentityBinding => "-identity-binding",
            Ablation::NoTimeLimits => "-time-limits",
            Ablation::NoSignatures => "-signatures",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_defended() {
        let c = ProtocolConfig::default();
        assert!(c.authenticate_keys && c.check_sequence_numbers && c.bind_identities);
        assert!(c.enforce_time_limits && c.require_signatures);
        assert_eq!(c.hash_alg, HashAlg::Sha256);
    }

    #[test]
    fn each_ablation_disables_exactly_one_defence() {
        let full = ProtocolConfig::full();
        let flags = |c: &ProtocolConfig| {
            [
                c.authenticate_keys,
                c.check_sequence_numbers,
                c.bind_identities,
                c.enforce_time_limits,
                c.require_signatures,
            ]
        };
        for a in Ablation::all() {
            let c = ProtocolConfig::ablated(a);
            let diff = flags(&full).iter().zip(flags(&c).iter()).filter(|(x, y)| x != y).count();
            let expected = if a == Ablation::None { 0 } else { 1 };
            assert_eq!(diff, expected, "{:?}", a);
        }
    }

    #[test]
    fn md5_mode() {
        assert_eq!(ProtocolConfig::full().with_md5().hash_alg, HashAlg::Md5);
    }

    #[test]
    fn merkle_mode() {
        let c = ProtocolConfig::full().with_merkle(4096);
        assert_eq!(c.commitment, Commitment::Merkle { chunk_size: 4096 });
        assert_eq!(ProtocolConfig::full().commitment, Commitment::Flat);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn merkle_zero_chunk_panics() {
        let _ = ProtocolConfig::full().with_merkle(0);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            Ablation::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
