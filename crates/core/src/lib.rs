//! # tpnr-core
//!
//! The TPNR (Two-Party Non-Repudiation) protocol of Feng, Chen, Ku & Liu
//! (SCC @ ICPP 2010), plus everything around it:
//!
//! * [`principal`] — parties and the authenticated key directory;
//! * [`config`] — protocol parameters and the §5 defence ablations;
//! * [`evidence`] — NRO/NRR construction and verification (§4.1);
//! * [`message`] — the wire messages of all three modes;
//! * [`session`] — validation, replay windows, payloads;
//! * [`client`] / [`provider`] / [`ttp`] — the Alice / Bob / TTP state
//!   machines (Normal, Abort and Resolve modes, §4.1–4.3);
//! * [`arbiter`] — dispute judgement (Figure 6d), including the blackmail
//!   defence;
//! * [`runner`] — the actors wired over the `tpnr-net` simulator, with
//!   per-transaction reports;
//! * [`bridge`] — the four §3 bridging schemes (±TAC × ±SKS);
//! * [`baseline`] — a traditional four-step in-line-TTP fair NR protocol,
//!   the comparison target for the "2 steps vs 4 steps" claim;
//! * [`cert`] — the "TAC-certified" key distribution made concrete: a
//!   certificate authority, chain verification, and directories built from
//!   verified certificates;
//! * [`chunked`] — Merkle-commitment mode and remote storage audits for the
//!   paper's TB-scale setting (an extension);
//! * [`multi`] — one provider serving many interleaved clients (Figure 1 at
//!   population scale);
//! * [`obs`] — the unified observability layer: one structured event stream
//!   plus metrics, shared by both runners;
//! * [`archive`] — integrity-protected evidence bundles that survive until
//!   the dispute.
//!
//! * [`fault`] — deterministic fault injection (crash plans, TTP outages,
//!   write failures), durable snapshots and the retry policy.
//!
//! ## Quickstart
//!
//! ```
//! use tpnr_core::prelude::*;
//!
//! let mut world = World::new(42, ProtocolConfig::full());
//! let up = world.upload(b"backup/q3", b"financial data".to_vec(),
//!                       TimeoutStrategy::AbortFirst);
//! assert_eq!(up.report.messages, 2);   // Normal mode: two messages
//! assert!(!up.report.ttp_used);        // TTP stays off-line
//! let down = world.download(b"backup/q3", TimeoutStrategy::AbortFirst);
//! assert_eq!(down.data.clone().unwrap(), b"financial data");
//! assert_eq!(
//!     world.client.verify_download_against_upload(up.txn_id, down.txn_id),
//!     Some(true),                      // the upload-to-download integrity link
//! );
//! ```

#![forbid(unsafe_code)]

pub mod arbiter;
pub mod archive;
pub mod baseline;
pub mod bridge;
pub mod cert;
pub mod chunked;
pub mod client;
pub mod config;
pub mod evidence;
pub mod fault;
pub mod message;
pub mod multi;
pub mod obs;
pub mod principal;
pub mod provider;
pub mod runner;
pub mod sched;
pub mod session;
pub mod ttp;

pub use arbiter::{Arbitrator, DisputeCase, Verdict};
pub use cert::{Certificate, CertificateAuthority};
pub use client::{Client, TimeoutStrategy};
pub use config::{Ablation, ProtocolConfig};
pub use evidence::{EvidencePlaintext, Flag, SealedEvidence, VerifiedEvidence};
pub use fault::{CrashPoint, Durable, FaultPlan, FaultStats, RetryPolicy};
pub use message::Message;
pub use multi::{GenericMultiWorld, MultiWorld, TxnHandle};
pub use obs::{ActorStats, Event, EventKind, Metrics, Obs, TxnObs};
pub use principal::{Directory, Principal, PrincipalId};
pub use provider::Provider;
pub use runner::{GenericWorld, TxnReport, TxnRequest, TxnResult, World};
pub use sched::{Actor, SettleOutcome, SettleReport};
pub use session::{Outgoing, Payload, TxnState, ValidationError};
pub use ttp::Ttp;

/// One-stop imports for driving the simulation: runners (simulator-backed
/// and transport-generic), strategies, settle/fault reporting, the
/// [`Transport`](tpnr_net::transport::Transport) contract, and the config
/// builder.
pub mod prelude {
    pub use crate::client::{Client, TimeoutStrategy};
    pub use crate::config::{Ablation, Commitment, ProtocolConfig, ProtocolConfigBuilder};
    pub use crate::fault::{CrashPoint, Durable, FaultPlan, FaultStats, RetryPolicy, RetryStats};
    pub use crate::multi::{GenericMultiWorld, MultiWorld, TxnHandle};
    pub use crate::provider::Provider;
    pub use crate::runner::{GenericWorld, TxnReport, TxnRequest, TxnResult, World};
    pub use crate::sched::{Actor, SettleOutcome, SettleReport};
    pub use crate::session::TxnState;
    pub use crate::ttp::Ttp;
    pub use tpnr_net::transport::Transport;
}
