//! Durable evidence bundles — what a party walks into arbitration with.
//!
//! Evidence is only worth anything if it survives until the dispute (which
//! may come long after the session — the paper's blackmail happens "later").
//! An [`EvidenceBundle`] serialises a party's archived evidence for one or
//! more transactions into a canonical, integrity-protected byte string:
//! a versioned header, the evidence records, and a SHA-256 digest over the
//! whole body so storage corruption of the *bundle itself* is detected on
//! load. Signatures inside stay verbatim, so the arbitrator can re-verify
//! them against the certified directory after any number of save/load
//! cycles.

use crate::evidence::VerifiedEvidence;
use crate::session::TxnState;
use std::collections::{BTreeMap, VecDeque};
use tpnr_crypto::hash::Digest as _;
use tpnr_crypto::sha2::Sha256;
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};
use tpnr_net::time::{SimDuration, SimTime};

/// Bundle format version.
pub const BUNDLE_VERSION: u16 = 1;
/// Magic prefix (`"TPNR"`).
pub const BUNDLE_MAGIC: [u8; 4] = *b"TPNR";

/// One archived record: role label + the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleEntry {
    /// Free-form label ("upload-nrr", "download-nro", …).
    pub label: String,
    /// The evidence item.
    pub evidence: VerifiedEvidence,
}

impl Wire for BundleEntry {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.label);
        self.evidence.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BundleEntry { label: r.str()?, evidence: VerifiedEvidence::decode(r)? })
    }
}

/// A saved collection of evidence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvidenceBundle {
    /// The records, in insertion order.
    pub entries: Vec<BundleEntry>,
}

/// Bundle load failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Wrong magic / not a bundle.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The integrity digest does not match (bundle corrupted at rest).
    Corrupted,
    /// Structural decode failure.
    Malformed,
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a TPNR evidence bundle"),
            BundleError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleError::Corrupted => write!(f, "bundle integrity digest mismatch"),
            BundleError::Malformed => write!(f, "malformed bundle"),
        }
    }
}

impl std::error::Error for BundleError {}

impl EvidenceBundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, label: &str, evidence: VerifiedEvidence) {
        self.entries.push(BundleEntry { label: label.to_string(), evidence });
    }

    /// Looks up the first record with a label.
    pub fn get(&self, label: &str) -> Option<&VerifiedEvidence> {
        self.entries.iter().find(|e| e.label == label).map(|e| &e.evidence)
    }

    /// All records for a given transaction.
    pub fn for_txn(&self, txn_id: u64) -> Vec<&BundleEntry> {
        self.entries.iter().filter(|e| e.evidence.plaintext.txn_id == txn_id).collect()
    }

    /// Serialises: `magic ‖ version ‖ count ‖ entries… ‖ SHA-256(prefix)`.
    pub fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.fixed(&BUNDLE_MAGIC);
        w.u16(BUNDLE_VERSION);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(&mut w);
        }
        let mut out = w.finish_vec();
        let digest = Sha256::digest(&out);
        out.extend_from_slice(&digest);
        out
    }

    /// Loads and integrity-checks a saved bundle.
    pub fn load(bytes: &[u8]) -> Result<Self, BundleError> {
        if bytes.len() < 4 + 2 + 4 + 32 {
            return Err(BundleError::Malformed);
        }
        let (body, digest) = bytes.split_at(bytes.len() - 32);
        if !tpnr_crypto::ct::eq(&Sha256::digest(body), digest) {
            return Err(BundleError::Corrupted);
        }
        let mut r = Reader::new(body);
        let magic = r.array::<4>().map_err(|_| BundleError::Malformed)?;
        if magic != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic);
        }
        let version = r.u16().map_err(|_| BundleError::Malformed)?;
        if version != BUNDLE_VERSION {
            return Err(BundleError::BadVersion(version));
        }
        let count = r.u32().map_err(|_| BundleError::Malformed)? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(BundleEntry::decode(&mut r).map_err(|_| BundleError::Malformed)?);
        }
        r.expect_end().map_err(|_| BundleError::Malformed)?;
        Ok(EvidenceBundle { entries })
    }

    /// Convenience: snapshots everything a client holds for a transaction
    /// (its own NRO plus the counterparty NRR if received).
    pub fn from_client_txn(client: &crate::client::Client, txn_id: u64) -> Option<Self> {
        let txn = client.txn(txn_id)?;
        let mut b = Self::new();
        b.push("own-nro", txn.nro.clone());
        if let Some(nrr) = &txn.nrr {
            b.push("peer-nrr", nrr.clone());
        }
        Some(b)
    }

    /// Hash sanity: true if every entry's digest length matches its declared
    /// algorithm (cheap structural audit before arbitration; Merkle roots
    /// share the underlying hash's output length so the same check covers
    /// both commitment modes).
    pub fn structurally_sound(&self) -> bool {
        self.entries.iter().all(|e| {
            e.evidence.plaintext.data_hash.len() == e.evidence.plaintext.hash_alg.output_len()
        })
    }
}

/// Shard count for the settled-transaction archive. Power of two so the
/// shard index is a mask of the mixed txn id.
pub const ARCHIVE_SHARDS: usize = 16;

/// Default number of settled transactions each shard keeps resident ("hot")
/// before the oldest is sealed into the append-only log. 16 shards × 64 =
/// 1024 hot settled txns by default, comfortably above every invariant
/// test's population so eviction only engages at experiment scale (or when
/// a test lowers the cap on purpose).
pub const DEFAULT_HOT_CAPACITY: usize = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Compact accounting record kept per archived transaction — everything the
/// world still needs to answer `report()`/`state_of()` questions after the
/// live per-txn state has been dropped. The evidence itself lives in the
/// shard's sealed log; `offset`/`len` locate the bundle for re-hydration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchivedTxn {
    /// Index of the owning client in its world.
    pub client: usize,
    /// When the transaction was started.
    pub started: SimTime,
    /// Terminal state at eviction time.
    pub state: TxnState,
    /// Messages sent on the wire for this txn (from net accounting).
    pub messages: u64,
    /// Payload bytes sent for this txn.
    pub bytes: u64,
    /// Start → last delivery latency.
    pub latency: SimDuration,
    /// Whether the TTP was involved (Resolve path).
    pub ttp_used: bool,
    shard: usize,
    offset: usize,
    len: usize,
}

#[derive(Debug, Default)]
struct ArchiveShard {
    /// Settled-but-still-resident txns, oldest first.
    settled: VecDeque<u64>,
    /// Append-only sealed-bundle log ([`EvidenceBundle::save`] wire form,
    /// concatenated).
    log: Vec<u8>,
}

/// Counters for the archive's behaviour under load (E10 exhibits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Settled txns evicted to a sealed log so far.
    pub evicted: u64,
    /// Archived txns re-hydrated for arbitration/reporting.
    pub rehydrated: u64,
    /// Settled txns still resident (not yet evicted).
    pub resident_settled: usize,
    /// Total bytes across all shard logs.
    pub log_bytes: u64,
}

/// Bounded-memory store for settled transactions, sharded by txn-id hash.
///
/// Live per-txn state (validator windows, client/provider/TTP records,
/// observability tallies) grows without bound in a long-running world unless
/// settled transactions are retired. The archive keeps each shard's most
/// recent `hot_capacity` settled txns resident; older ones are *evicted*:
/// their evidence is sealed into the shard's append-only log (reusing the
/// [`EvidenceBundle`] wire form, digest-protected) and only the compact
/// [`ArchivedTxn`] index record stays in memory. Arbitration and reporting
/// re-hydrate bundles from the log on demand — evidence is never lost, it
/// just stops costing live-map memory.
#[derive(Debug)]
pub struct TxnArchive {
    shards: Vec<ArchiveShard>,
    hot_capacity: usize,
    index: BTreeMap<u64, ArchivedTxn>,
    evicted: u64,
    rehydrated: std::cell::Cell<u64>,
}

impl Default for TxnArchive {
    fn default() -> Self {
        Self::with_hot_capacity(DEFAULT_HOT_CAPACITY)
    }
}

impl TxnArchive {
    /// Archive with the default per-shard hot capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Archive keeping `hot_capacity` settled txns resident per shard
    /// (minimum 1 — a settled txn is never evicted in the same step it
    /// settles, so in-flight duplicates still hit the live validator first).
    pub fn with_hot_capacity(hot_capacity: usize) -> Self {
        TxnArchive {
            shards: (0..ARCHIVE_SHARDS).map(|_| ArchiveShard::default()).collect(),
            hot_capacity: hot_capacity.max(1),
            index: BTreeMap::new(),
            evicted: 0,
            rehydrated: std::cell::Cell::new(0),
        }
    }

    /// Changes the per-shard hot capacity. Over-full shards drain one
    /// eviction per subsequent settle (one-in-one-out beyond the cap).
    pub fn set_hot_capacity(&mut self, hot_capacity: usize) {
        self.hot_capacity = hot_capacity.max(1);
    }

    /// Which shard a transaction belongs to.
    pub fn shard_of(txn_id: u64) -> usize {
        (splitmix64(txn_id) & (ARCHIVE_SHARDS as u64 - 1)) as usize
    }

    /// Records that `txn_id` reached a terminal state. If the shard is now
    /// over its hot capacity, returns the oldest settled txn in the shard —
    /// the caller must gather its evidence and [`archive`](Self::archive) it.
    pub fn note_settled(&mut self, txn_id: u64) -> Option<u64> {
        let shard = &mut self.shards[Self::shard_of(txn_id)];
        shard.settled.push_back(txn_id);
        (shard.settled.len() > self.hot_capacity).then(|| shard.settled.pop_front()).flatten()
    }

    /// Seals a transaction's evidence into its shard log and records the
    /// index entry. `record`'s shard/offset/len are filled in here.
    pub fn archive(&mut self, txn_id: u64, bundle: &EvidenceBundle, mut record: ArchivedTxn) {
        let shard_ix = Self::shard_of(txn_id);
        let bytes = bundle.save();
        let shard = &mut self.shards[shard_ix];
        record.shard = shard_ix;
        record.offset = shard.log.len();
        record.len = bytes.len();
        shard.log.extend_from_slice(&bytes);
        self.index.insert(txn_id, record);
        self.evicted += 1;
    }

    /// Index record for an archived txn, if it was evicted.
    pub fn get(&self, txn_id: u64) -> Option<&ArchivedTxn> {
        self.index.get(&txn_id)
    }

    /// Re-hydrates an archived txn's evidence bundle from the shard log.
    /// Returns `None` if the txn was never archived *or* the log bytes fail
    /// the bundle's integrity check (corruption ⇒ evidence loss, surfaced,
    /// never silently tolerated).
    pub fn load_bundle(&self, txn_id: u64) -> Option<EvidenceBundle> {
        let rec = self.index.get(&txn_id)?;
        let bytes = self.shards[rec.shard].log.get(rec.offset..rec.offset + rec.len)?;
        let bundle = EvidenceBundle::load(bytes).ok()?;
        self.rehydrated.set(self.rehydrated.get() + 1);
        Some(bundle)
    }

    /// Archive behaviour counters.
    pub fn stats(&self) -> ArchiveStats {
        ArchiveStats {
            evicted: self.evicted,
            rehydrated: self.rehydrated.get(),
            resident_settled: self.shards.iter().map(|s| s.settled.len()).sum(),
            log_bytes: self.shards.iter().map(|s| s.log.len() as u64).sum(),
        }
    }
}

/// Blank index record for [`TxnArchive::archive`]; location fields are
/// filled by the archive itself.
impl ArchivedTxn {
    /// Builds an index record from final accounting values.
    pub fn record(
        client: usize,
        started: SimTime,
        state: TxnState,
        messages: u64,
        bytes: u64,
        latency: SimDuration,
        ttp_used: bool,
    ) -> Self {
        ArchivedTxn {
            client,
            started,
            state,
            messages,
            bytes,
            latency,
            ttp_used,
            shard: 0,
            offset: 0,
            len: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TimeoutStrategy;
    use crate::config::ProtocolConfig;
    use crate::runner::World;

    fn settled_world() -> (World, u64, u64) {
        let mut w = World::new(30, ProtocolConfig::full());
        let up = w.upload(b"obj", b"payload".to_vec(), TimeoutStrategy::AbortFirst);
        let down = w.download(b"obj", TimeoutStrategy::AbortFirst);
        (w, up.txn_id, down.txn_id)
    }

    #[test]
    fn save_load_roundtrip() {
        let (w, up, down) = settled_world();
        let mut bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        let down_bundle = EvidenceBundle::from_client_txn(&w.client, down).unwrap();
        for e in down_bundle.entries {
            bundle.entries.push(e);
        }
        assert_eq!(bundle.entries.len(), 4);
        let bytes = bundle.save();
        let loaded = EvidenceBundle::load(&bytes).unwrap();
        assert_eq!(loaded, bundle);
        assert!(loaded.structurally_sound());
    }

    #[test]
    fn loaded_evidence_still_verifies() {
        let (w, up, _) = settled_world();
        let bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        let loaded = EvidenceBundle::load(&bundle.save()).unwrap();
        let nrr = loaded.get("peer-nrr").expect("receipt archived");
        let bob_pk = w.dir.lookup(&w.provider.id()).unwrap();
        nrr.reverify(&ProtocolConfig::full(), bob_pk).unwrap();
        let nro = loaded.get("own-nro").unwrap();
        let alice_pk = w.dir.lookup(&w.client.id()).unwrap();
        nro.reverify(&ProtocolConfig::full(), alice_pk).unwrap();
    }

    #[test]
    fn every_bit_flip_detected_on_load() {
        let (w, up, _) = settled_world();
        let bytes = EvidenceBundle::from_client_txn(&w.client, up).unwrap().save();
        // Sample positions across the whole bundle (testing all ~2k bytes
        // would be slow for no extra coverage).
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(
                matches!(
                    EvidenceBundle::load(&bad),
                    Err(BundleError::Corrupted)
                        | Err(BundleError::BadMagic)
                        | Err(BundleError::Malformed)
                ),
                "flip at {i} loaded successfully"
            );
        }
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let (w, up, _) = settled_world();
        let bytes = EvidenceBundle::from_client_txn(&w.client, up).unwrap().save();
        assert_eq!(EvidenceBundle::load(&bytes[..10]), Err(BundleError::Malformed));
        assert_eq!(EvidenceBundle::load(&[]), Err(BundleError::Malformed));
        let garbage = vec![0xAA; 200];
        assert!(EvidenceBundle::load(&garbage).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let (w, up, _) = settled_world();
        let bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        // Re-serialize with a bumped version and a fixed-up digest.
        let mut bytes = bundle.save();
        let body_len = bytes.len() - 32;
        bytes[5] = 99; // version low byte
        let digest = Sha256::digest(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&digest);
        assert_eq!(
            EvidenceBundle::load(&bytes),
            Err(BundleError::BadVersion(99 | ((bytes[4] as u16) << 8)))
        );
    }

    #[test]
    fn archive_evicts_oldest_per_shard_and_rehydrates_exactly() {
        let (w, up, _) = settled_world();
        let bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        let mut arch = TxnArchive::with_hot_capacity(2);
        let mut evicted = Vec::new();
        // Drive enough settles through one shard to overflow its capacity.
        let mut in_shard = Vec::new();
        let mut txn = 1u64;
        while in_shard.len() < 4 {
            if TxnArchive::shard_of(txn) == TxnArchive::shard_of(1) {
                in_shard.push(txn);
            }
            txn += 1;
        }
        for &t in &in_shard {
            if let Some(victim) = arch.note_settled(t) {
                let rec = ArchivedTxn::record(
                    0,
                    SimTime::ZERO,
                    TxnState::Completed,
                    7,
                    128,
                    SimDuration::from_micros(42),
                    false,
                );
                arch.archive(victim, &bundle, rec);
                evicted.push(victim);
            }
        }
        // FIFO: the two oldest in the shard were evicted, in order.
        assert_eq!(evicted, in_shard[..2].to_vec());
        let stats = arch.stats();
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.resident_settled, 2);
        assert!(stats.log_bytes > 0);
        // Re-hydration returns the sealed bundle bit-for-bit.
        let loaded = arch.load_bundle(evicted[0]).expect("archived bundle loads");
        assert_eq!(loaded, bundle);
        assert_eq!(arch.stats().rehydrated, 1);
        let rec = arch.get(evicted[0]).unwrap();
        assert_eq!(rec.state, TxnState::Completed);
        assert_eq!(rec.messages, 7);
        // Never-archived txns stay invisible.
        assert!(arch.get(999_999).is_none());
        assert!(arch.load_bundle(999_999).is_none());
    }

    #[test]
    fn txn_filter_and_label_lookup() {
        let (w, up, down) = settled_world();
        let mut bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        for e in EvidenceBundle::from_client_txn(&w.client, down).unwrap().entries {
            bundle.entries.push(e);
        }
        assert_eq!(bundle.for_txn(up).len(), 2);
        assert_eq!(bundle.for_txn(down).len(), 2);
        assert_eq!(bundle.for_txn(123456).len(), 0);
        assert!(bundle.get("own-nro").is_some());
        assert!(bundle.get("no-such-label").is_none());
    }
}
