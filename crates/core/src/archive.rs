//! Durable evidence bundles — what a party walks into arbitration with.
//!
//! Evidence is only worth anything if it survives until the dispute (which
//! may come long after the session — the paper's blackmail happens "later").
//! An [`EvidenceBundle`] serialises a party's archived evidence for one or
//! more transactions into a canonical, integrity-protected byte string:
//! a versioned header, the evidence records, and a SHA-256 digest over the
//! whole body so storage corruption of the *bundle itself* is detected on
//! load. Signatures inside stay verbatim, so the arbitrator can re-verify
//! them against the certified directory after any number of save/load
//! cycles.

use crate::evidence::VerifiedEvidence;
use tpnr_crypto::hash::Digest as _;
use tpnr_crypto::sha2::Sha256;
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};

/// Bundle format version.
pub const BUNDLE_VERSION: u16 = 1;
/// Magic prefix (`"TPNR"`).
pub const BUNDLE_MAGIC: [u8; 4] = *b"TPNR";

/// One archived record: role label + the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleEntry {
    /// Free-form label ("upload-nrr", "download-nro", …).
    pub label: String,
    /// The evidence item.
    pub evidence: VerifiedEvidence,
}

impl Wire for BundleEntry {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.label);
        self.evidence.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BundleEntry { label: r.str()?, evidence: VerifiedEvidence::decode(r)? })
    }
}

/// A saved collection of evidence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvidenceBundle {
    /// The records, in insertion order.
    pub entries: Vec<BundleEntry>,
}

/// Bundle load failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Wrong magic / not a bundle.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The integrity digest does not match (bundle corrupted at rest).
    Corrupted,
    /// Structural decode failure.
    Malformed,
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a TPNR evidence bundle"),
            BundleError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleError::Corrupted => write!(f, "bundle integrity digest mismatch"),
            BundleError::Malformed => write!(f, "malformed bundle"),
        }
    }
}

impl std::error::Error for BundleError {}

impl EvidenceBundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, label: &str, evidence: VerifiedEvidence) {
        self.entries.push(BundleEntry { label: label.to_string(), evidence });
    }

    /// Looks up the first record with a label.
    pub fn get(&self, label: &str) -> Option<&VerifiedEvidence> {
        self.entries.iter().find(|e| e.label == label).map(|e| &e.evidence)
    }

    /// All records for a given transaction.
    pub fn for_txn(&self, txn_id: u64) -> Vec<&BundleEntry> {
        self.entries.iter().filter(|e| e.evidence.plaintext.txn_id == txn_id).collect()
    }

    /// Serialises: `magic ‖ version ‖ count ‖ entries… ‖ SHA-256(prefix)`.
    pub fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.fixed(&BUNDLE_MAGIC);
        w.u16(BUNDLE_VERSION);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(&mut w);
        }
        let mut out = w.finish_vec();
        let digest = Sha256::digest(&out);
        out.extend_from_slice(&digest);
        out
    }

    /// Loads and integrity-checks a saved bundle.
    pub fn load(bytes: &[u8]) -> Result<Self, BundleError> {
        if bytes.len() < 4 + 2 + 4 + 32 {
            return Err(BundleError::Malformed);
        }
        let (body, digest) = bytes.split_at(bytes.len() - 32);
        if !tpnr_crypto::ct::eq(&Sha256::digest(body), digest) {
            return Err(BundleError::Corrupted);
        }
        let mut r = Reader::new(body);
        let magic = r.array::<4>().map_err(|_| BundleError::Malformed)?;
        if magic != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic);
        }
        let version = r.u16().map_err(|_| BundleError::Malformed)?;
        if version != BUNDLE_VERSION {
            return Err(BundleError::BadVersion(version));
        }
        let count = r.u32().map_err(|_| BundleError::Malformed)? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(BundleEntry::decode(&mut r).map_err(|_| BundleError::Malformed)?);
        }
        r.expect_end().map_err(|_| BundleError::Malformed)?;
        Ok(EvidenceBundle { entries })
    }

    /// Convenience: snapshots everything a client holds for a transaction
    /// (its own NRO plus the counterparty NRR if received).
    pub fn from_client_txn(client: &crate::client::Client, txn_id: u64) -> Option<Self> {
        let txn = client.txn(txn_id)?;
        let mut b = Self::new();
        b.push("own-nro", txn.nro.clone());
        if let Some(nrr) = &txn.nrr {
            b.push("peer-nrr", nrr.clone());
        }
        Some(b)
    }

    /// Hash sanity: true if every entry's digest length matches its declared
    /// algorithm (cheap structural audit before arbitration; Merkle roots
    /// share the underlying hash's output length so the same check covers
    /// both commitment modes).
    pub fn structurally_sound(&self) -> bool {
        self.entries.iter().all(|e| {
            e.evidence.plaintext.data_hash.len() == e.evidence.plaintext.hash_alg.output_len()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TimeoutStrategy;
    use crate::config::ProtocolConfig;
    use crate::runner::World;

    fn settled_world() -> (World, u64, u64) {
        let mut w = World::new(30, ProtocolConfig::full());
        let up = w.upload(b"obj", b"payload".to_vec(), TimeoutStrategy::AbortFirst);
        let down = w.download(b"obj", TimeoutStrategy::AbortFirst);
        (w, up.txn_id, down.txn_id)
    }

    #[test]
    fn save_load_roundtrip() {
        let (w, up, down) = settled_world();
        let mut bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        let down_bundle = EvidenceBundle::from_client_txn(&w.client, down).unwrap();
        for e in down_bundle.entries {
            bundle.entries.push(e);
        }
        assert_eq!(bundle.entries.len(), 4);
        let bytes = bundle.save();
        let loaded = EvidenceBundle::load(&bytes).unwrap();
        assert_eq!(loaded, bundle);
        assert!(loaded.structurally_sound());
    }

    #[test]
    fn loaded_evidence_still_verifies() {
        let (w, up, _) = settled_world();
        let bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        let loaded = EvidenceBundle::load(&bundle.save()).unwrap();
        let nrr = loaded.get("peer-nrr").expect("receipt archived");
        let bob_pk = w.dir.lookup(&w.provider.id()).unwrap();
        nrr.reverify(&ProtocolConfig::full(), bob_pk).unwrap();
        let nro = loaded.get("own-nro").unwrap();
        let alice_pk = w.dir.lookup(&w.client.id()).unwrap();
        nro.reverify(&ProtocolConfig::full(), alice_pk).unwrap();
    }

    #[test]
    fn every_bit_flip_detected_on_load() {
        let (w, up, _) = settled_world();
        let bytes = EvidenceBundle::from_client_txn(&w.client, up).unwrap().save();
        // Sample positions across the whole bundle (testing all ~2k bytes
        // would be slow for no extra coverage).
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(
                matches!(
                    EvidenceBundle::load(&bad),
                    Err(BundleError::Corrupted)
                        | Err(BundleError::BadMagic)
                        | Err(BundleError::Malformed)
                ),
                "flip at {i} loaded successfully"
            );
        }
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let (w, up, _) = settled_world();
        let bytes = EvidenceBundle::from_client_txn(&w.client, up).unwrap().save();
        assert_eq!(EvidenceBundle::load(&bytes[..10]), Err(BundleError::Malformed));
        assert_eq!(EvidenceBundle::load(&[]), Err(BundleError::Malformed));
        let garbage = vec![0xAA; 200];
        assert!(EvidenceBundle::load(&garbage).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let (w, up, _) = settled_world();
        let bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        // Re-serialize with a bumped version and a fixed-up digest.
        let mut bytes = bundle.save();
        let body_len = bytes.len() - 32;
        bytes[5] = 99; // version low byte
        let digest = Sha256::digest(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&digest);
        assert_eq!(
            EvidenceBundle::load(&bytes),
            Err(BundleError::BadVersion(99 | ((bytes[4] as u16) << 8)))
        );
    }

    #[test]
    fn txn_filter_and_label_lookup() {
        let (w, up, down) = settled_world();
        let mut bundle = EvidenceBundle::from_client_txn(&w.client, up).unwrap();
        for e in EvidenceBundle::from_client_txn(&w.client, down).unwrap().entries {
            bundle.entries.push(e);
        }
        assert_eq!(bundle.for_txn(up).len(), 2);
        assert_eq!(bundle.for_txn(down).len(), 2);
        assert_eq!(bundle.for_txn(123456).len(), 0);
        assert!(bundle.get("own-nro").is_some());
        assert!(bundle.get("no-such-label").is_none());
    }
}
