//! The four §3 "bridging the missing link" schemes.
//!
//! Before the full TPNR protocol, the paper sketches four lighter fixes for
//! the upload-to-download integrity gap, classified by whether a Third
//! Authority Certified (TAC) party is involved and whether the agreed MD5 is
//! protected with Secret Key Sharing (SKS):
//!
//! | scheme | TAC | SKS | records after upload |
//! |--------|-----|-----|----------------------|
//! | §3.1   |  –  |  –  | MSU at provider, MSP at user |
//! | §3.2   |  –  |  ✓  | one MD5 share at each party |
//! | §3.3   |  ✓  |  –  | MSU + MSP deposited at the TAC |
//! | §3.4   |  ✓  |  ✓  | TAC-verified MD5, shares at both parties |
//!
//! (MSU = "MD5 Signature by User", MSP = "MD5 Signature by Provider".)
//!
//! Each scheme implements [`BridgingScheme`]; experiment E7 compares message
//! counts, per-party storage, and dispute power with a cooperative vs
//! uncooperative counterparty.

use crate::principal::Principal;
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::shamir;
use tpnr_crypto::ChaChaRng;

/// Which §3 variant a value represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// §3.1 — signatures exchanged directly, no third party.
    Plain,
    /// §3.2 — MD5 split by secret sharing, no third party.
    SksOnly,
    /// §3.3 — signatures deposited at the TAC.
    TacOnly,
    /// §3.4 — TAC-brokered MD5 agreement plus secret sharing.
    TacAndSks,
}

impl SchemeKind {
    /// All four variants in paper order.
    pub fn all() -> [SchemeKind; 4] {
        [SchemeKind::Plain, SchemeKind::SksOnly, SchemeKind::TacOnly, SchemeKind::TacAndSks]
    }

    /// Paper-section label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Plain => "3.1 no-TAC/no-SKS",
            SchemeKind::SksOnly => "3.2 SKS-only",
            SchemeKind::TacOnly => "3.3 TAC-only",
            SchemeKind::TacAndSks => "3.4 TAC+SKS",
        }
    }
}

/// Cost/record accounting for one upload session under a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadSummary {
    /// Protocol messages exchanged in the uploading session (paper's
    /// numbered steps, counting TAC legs).
    pub messages: u32,
    /// Bytes of dispute records the *user* must keep.
    pub user_record_bytes: usize,
    /// Bytes the *provider* must keep.
    pub provider_record_bytes: usize,
    /// Bytes the *TAC* must keep (0 without a TAC).
    pub tac_record_bytes: usize,
}

/// What a dispute can establish under a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisputePower {
    /// The agreed-on MD5 can be re-established at all.
    pub resolvable: bool,
    /// The re-established MD5 is *non-repudiable* (bound to a signature a
    /// party cannot deny), so fault can be attributed.
    pub attributable: bool,
}

/// Dispute circumstances for the E7 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisputeScenario {
    /// Whether the counterparty cooperates (hands over its records/shares).
    pub counterparty_cooperates: bool,
    /// Whether the TAC is reachable.
    pub tac_available: bool,
}

/// A §3 scheme instance bound to concrete parties and one object.
pub trait BridgingScheme {
    /// Which variant this is.
    fn kind(&self) -> SchemeKind;
    /// Runs the uploading session for `data`, creating the dispute records.
    fn upload(&mut self, data: &[u8]) -> UploadSummary;
    /// Runs the downloading session; returns the data as served plus the
    /// MD5 sent by the provider (which, per the paper, is all a client gets).
    fn download(&self) -> (Vec<u8>, Vec<u8>);
    /// Provider-side tamper between the sessions.
    fn tamper(&mut self, new_data: &[u8]);
    /// What a dispute can establish under the given circumstances.
    fn dispute_power(&self, s: DisputeScenario) -> DisputePower;
    /// Whether the records establish that the *stored* data no longer
    /// matches the agreed MD5 (i.e. the tamper is provable), under the
    /// given circumstances. `None` when the dispute cannot be resolved.
    fn tamper_proven(&self, s: DisputeScenario) -> Option<bool>;
}

/// Common state: the parties and the stored object.
struct Common {
    user: Principal,
    provider: Principal,
    stored: Vec<u8>,
    agreed_md5: Vec<u8>,
}

impl Common {
    fn new(seed: u64) -> Self {
        Common {
            user: Principal::test("user", seed.wrapping_add(100)),
            provider: Principal::test("provider", seed.wrapping_add(200)),
            stored: Vec::new(),
            agreed_md5: Vec::new(),
        }
    }

    fn set(&mut self, data: &[u8]) {
        self.stored = data.to_vec();
        self.agreed_md5 = HashAlg::Md5.hash(data);
    }

    fn served_md5(&self) -> Vec<u8> {
        HashAlg::Md5.hash(&self.stored)
    }
}

/// §3.1 — neither TAC nor SKS: MSU/MSP exchanged and archived locally.
pub struct PlainScheme {
    common: Common,
    /// MD5 Signature by User, stored at the provider.
    msu: Vec<u8>,
    /// MD5 Signature by Provider, stored at the user.
    msp: Vec<u8>,
}

impl PlainScheme {
    /// New instance with deterministic parties.
    pub fn new(seed: u64) -> Self {
        PlainScheme { common: Common::new(seed), msu: Vec::new(), msp: Vec::new() }
    }
}

impl BridgingScheme for PlainScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Plain
    }

    fn upload(&mut self, data: &[u8]) -> UploadSummary {
        self.common.set(data);
        let md5 = self.common.agreed_md5.clone();
        // 1: user → provider: data + MD5 + MSU; 2: provider → user: MD5 + MSP.
        self.msu = self.common.user.keys.private.sign_prehashed(HashAlg::Md5, &md5).unwrap();
        self.msp = self.common.provider.keys.private.sign_prehashed(HashAlg::Md5, &md5).unwrap();
        UploadSummary {
            messages: 2,
            user_record_bytes: md5.len() + self.msp.len(),
            provider_record_bytes: md5.len() + self.msu.len(),
            tac_record_bytes: 0,
        }
    }

    fn download(&self) -> (Vec<u8>, Vec<u8>) {
        (self.common.stored.clone(), self.common.served_md5())
    }

    fn tamper(&mut self, new_data: &[u8]) {
        self.common.stored = new_data.to_vec();
    }

    fn dispute_power(&self, _s: DisputeScenario) -> DisputePower {
        // Each side already holds the other's signature: resolution needs no
        // cooperation and the signature makes the agreement non-repudiable.
        DisputePower { resolvable: true, attributable: true }
    }

    fn tamper_proven(&self, s: DisputeScenario) -> Option<bool> {
        if !self.dispute_power(s).resolvable {
            return None;
        }
        // The user verifies MSP against the agreed MD5 and compares the
        // stored data's MD5 with it.
        let ok = self
            .common
            .provider
            .public()
            .verify_prehashed(HashAlg::Md5, &self.common.agreed_md5, &self.msp)
            .is_ok();
        if !ok {
            return None;
        }
        Some(self.common.served_md5() != self.common.agreed_md5)
    }
}

/// §3.2 — SKS without TAC: the agreed MD5 is 2-of-2 secret-shared.
pub struct SksScheme {
    common: Common,
    user_share: Option<shamir::Share>,
    provider_share: Option<shamir::Share>,
}

impl SksScheme {
    /// New instance with deterministic parties.
    pub fn new(seed: u64) -> Self {
        SksScheme { common: Common::new(seed), user_share: None, provider_share: None }
    }
}

impl BridgingScheme for SksScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::SksOnly
    }

    fn upload(&mut self, data: &[u8]) -> UploadSummary {
        self.common.set(data);
        // 1: user → provider: data + MD5; 2: provider → user: MD5;
        // 3: share the MD5 with SKS (one exchange).
        let mut rng = ChaChaRng::seed_from_u64(0x5b5);
        let shares = shamir::split(&self.common.agreed_md5, 2, 2, &mut rng).unwrap();
        let bytes = shares[0].to_bytes().len();
        self.user_share = Some(shares[0].clone());
        self.provider_share = Some(shares[1].clone());
        UploadSummary {
            messages: 3,
            user_record_bytes: bytes,
            provider_record_bytes: bytes,
            tac_record_bytes: 0,
        }
    }

    fn download(&self) -> (Vec<u8>, Vec<u8>) {
        (self.common.stored.clone(), self.common.served_md5())
    }

    fn tamper(&mut self, new_data: &[u8]) {
        self.common.stored = new_data.to_vec();
    }

    fn dispute_power(&self, s: DisputeScenario) -> DisputePower {
        // Recovering the agreed MD5 takes both shares; and shares carry no
        // signature, so even a recovered MD5 is repudiable.
        DisputePower { resolvable: s.counterparty_cooperates, attributable: false }
    }

    fn tamper_proven(&self, s: DisputeScenario) -> Option<bool> {
        if !self.dispute_power(s).resolvable {
            return None;
        }
        let shares = [self.user_share.clone()?, self.provider_share.clone()?];
        let md5 = shamir::combine(&shares).ok()?;
        Some(self.common.served_md5() != md5)
    }
}

/// §3.3 — TAC without SKS: both signatures deposited at the TAC.
pub struct TacScheme {
    common: Common,
    tac_msu: Vec<u8>,
    tac_msp: Vec<u8>,
}

impl TacScheme {
    /// New instance with deterministic parties.
    pub fn new(seed: u64) -> Self {
        TacScheme { common: Common::new(seed), tac_msu: Vec::new(), tac_msp: Vec::new() }
    }
}

impl BridgingScheme for TacScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::TacOnly
    }

    fn upload(&mut self, data: &[u8]) -> UploadSummary {
        self.common.set(data);
        let md5 = self.common.agreed_md5.clone();
        // 1: user → provider (data+MD5+MSU); 2: provider → user (MD5+MSP);
        // 3: MSU and MSP → TAC.
        self.tac_msu = self.common.user.keys.private.sign_prehashed(HashAlg::Md5, &md5).unwrap();
        self.tac_msp =
            self.common.provider.keys.private.sign_prehashed(HashAlg::Md5, &md5).unwrap();
        UploadSummary {
            messages: 3,
            user_record_bytes: md5.len(),
            provider_record_bytes: md5.len(),
            tac_record_bytes: self.tac_msu.len() + self.tac_msp.len() + md5.len(),
        }
    }

    fn download(&self) -> (Vec<u8>, Vec<u8>) {
        (self.common.stored.clone(), self.common.served_md5())
    }

    fn tamper(&mut self, new_data: &[u8]) {
        self.common.stored = new_data.to_vec();
    }

    fn dispute_power(&self, s: DisputeScenario) -> DisputePower {
        // The TAC holds both signatures: no counterparty cooperation needed,
        // and attribution is signature-backed — but only while the TAC is
        // reachable.
        DisputePower { resolvable: s.tac_available, attributable: s.tac_available }
    }

    fn tamper_proven(&self, s: DisputeScenario) -> Option<bool> {
        if !self.dispute_power(s).resolvable {
            return None;
        }
        let ok = self
            .common
            .provider
            .public()
            .verify_prehashed(HashAlg::Md5, &self.common.agreed_md5, &self.tac_msp)
            .is_ok()
            && self
                .common
                .user
                .public()
                .verify_prehashed(HashAlg::Md5, &self.common.agreed_md5, &self.tac_msu)
                .is_ok();
        if !ok {
            return None;
        }
        Some(self.common.served_md5() != self.common.agreed_md5)
    }
}

/// §3.4 — TAC and SKS: the TAC verifies both MD5s match, then distributes
/// shares; it keeps the agreed value on demand.
pub struct TacSksScheme {
    common: Common,
    user_share: Option<shamir::Share>,
    provider_share: Option<shamir::Share>,
    tac_md5: Vec<u8>,
}

impl TacSksScheme {
    /// New instance with deterministic parties.
    pub fn new(seed: u64) -> Self {
        TacSksScheme {
            common: Common::new(seed),
            user_share: None,
            provider_share: None,
            tac_md5: Vec::new(),
        }
    }
}

impl BridgingScheme for TacSksScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::TacAndSks
    }

    fn upload(&mut self, data: &[u8]) -> UploadSummary {
        self.common.set(data);
        // 1: user → provider (data + MD5); 2: provider verifies and replies;
        // 3+4: both send MD5 to TAC; 5+6: TAC verifies the two values match
        // and distributes shares to both parties.
        let mut rng = ChaChaRng::seed_from_u64(0x7ac);
        let shares = shamir::split(&self.common.agreed_md5, 2, 2, &mut rng).unwrap();
        let bytes = shares[0].to_bytes().len();
        self.user_share = Some(shares[0].clone());
        self.provider_share = Some(shares[1].clone());
        self.tac_md5 = self.common.agreed_md5.clone();
        UploadSummary {
            messages: 6,
            user_record_bytes: bytes,
            provider_record_bytes: bytes,
            tac_record_bytes: self.tac_md5.len(),
        }
    }

    fn download(&self) -> (Vec<u8>, Vec<u8>) {
        (self.common.stored.clone(), self.common.served_md5())
    }

    fn tamper(&mut self, new_data: &[u8]) {
        self.common.stored = new_data.to_vec();
    }

    fn dispute_power(&self, s: DisputeScenario) -> DisputePower {
        // Shares settle it when both cooperate; otherwise the TAC's record
        // does. Attribution rests on the TAC having verified both parties'
        // submissions at upload time.
        let resolvable = s.counterparty_cooperates || s.tac_available;
        DisputePower { resolvable, attributable: s.tac_available }
    }

    fn tamper_proven(&self, s: DisputeScenario) -> Option<bool> {
        if !self.dispute_power(s).resolvable {
            return None;
        }
        let agreed = if s.counterparty_cooperates {
            let shares = [self.user_share.clone()?, self.provider_share.clone()?];
            shamir::combine(&shares).ok()?
        } else {
            self.tac_md5.clone()
        };
        Some(self.common.served_md5() != agreed)
    }
}

/// Builds a scheme instance by kind (for matrix experiments).
pub fn make_scheme(kind: SchemeKind, seed: u64) -> Box<dyn BridgingScheme> {
    match kind {
        SchemeKind::Plain => Box::new(PlainScheme::new(seed)),
        SchemeKind::SksOnly => Box::new(SksScheme::new(seed)),
        SchemeKind::TacOnly => Box::new(TacScheme::new(seed)),
        SchemeKind::TacAndSks => Box::new(TacSksScheme::new(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOP: DisputeScenario =
        DisputeScenario { counterparty_cooperates: true, tac_available: true };
    const ALONE_WITH_TAC: DisputeScenario =
        DisputeScenario { counterparty_cooperates: false, tac_available: true };
    const ALONE_NO_TAC: DisputeScenario =
        DisputeScenario { counterparty_cooperates: false, tac_available: false };

    fn run_story(kind: SchemeKind, tamper: bool) -> Box<dyn BridgingScheme> {
        let mut s = make_scheme(kind, 9);
        s.upload(b"the agreed data");
        if tamper {
            s.tamper(b"not the agreed data");
        }
        s
    }

    #[test]
    fn all_schemes_prove_tamper_when_everyone_cooperates() {
        for kind in SchemeKind::all() {
            let s = run_story(kind, true);
            assert_eq!(s.tamper_proven(COOP), Some(true), "{}", kind.label());
            let s = run_story(kind, false);
            assert_eq!(s.tamper_proven(COOP), Some(false), "{}", kind.label());
        }
    }

    #[test]
    fn sks_only_fails_without_cooperation() {
        let s = run_story(SchemeKind::SksOnly, true);
        assert_eq!(s.tamper_proven(ALONE_WITH_TAC), None, "one share is never enough");
        assert!(!s.dispute_power(ALONE_NO_TAC).resolvable);
        assert!(!s.dispute_power(COOP).attributable, "no signature => repudiable");
    }

    #[test]
    fn plain_scheme_is_self_sufficient() {
        let s = run_story(SchemeKind::Plain, true);
        assert_eq!(s.tamper_proven(ALONE_NO_TAC), Some(true));
        assert!(s.dispute_power(ALONE_NO_TAC).attributable);
    }

    #[test]
    fn tac_only_depends_on_tac() {
        let s = run_story(SchemeKind::TacOnly, true);
        assert_eq!(s.tamper_proven(ALONE_WITH_TAC), Some(true));
        assert_eq!(s.tamper_proven(ALONE_NO_TAC), None);
    }

    #[test]
    fn tac_sks_survives_either_failure_mode() {
        let s = run_story(SchemeKind::TacAndSks, true);
        assert_eq!(s.tamper_proven(ALONE_WITH_TAC), Some(true), "TAC path");
        let coop_no_tac = DisputeScenario { counterparty_cooperates: true, tac_available: false };
        assert_eq!(s.tamper_proven(coop_no_tac), Some(true), "share path");
        assert_eq!(s.tamper_proven(ALONE_NO_TAC), None);
    }

    #[test]
    fn download_returns_current_bytes_and_md5() {
        for kind in SchemeKind::all() {
            let s = run_story(kind, true);
            let (data, md5) = s.download();
            assert_eq!(data, b"not the agreed data");
            assert_eq!(md5, HashAlg::Md5.hash(b"not the agreed data"));
        }
    }

    #[test]
    fn message_and_record_accounting() {
        let mut msgs = Vec::new();
        for kind in SchemeKind::all() {
            let mut s = make_scheme(kind, 1);
            let sum = s.upload(b"data");
            msgs.push((kind, sum.messages));
            match kind {
                SchemeKind::Plain | SchemeKind::SksOnly => assert_eq!(sum.tac_record_bytes, 0),
                _ => assert!(sum.tac_record_bytes > 0),
            }
            assert!(sum.user_record_bytes > 0);
            assert!(sum.provider_record_bytes > 0);
        }
        // TAC+SKS is the most message-hungry; plain the leanest.
        assert_eq!(msgs[0].1, 2);
        assert_eq!(msgs[3].1, 6);
    }
}
