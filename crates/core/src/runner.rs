//! Orchestration: TPNR actors over the discrete-event network.
//!
//! [`World`] owns one client, one provider, one TTP and the simulator,
//! encodes every protocol message to canonical bytes on the wire (so
//! adversaries manipulate real traffic), drives deliveries and timeout
//! polls, and reports per-transaction statistics — message counts, wall
//! latency, and whether the TTP was touched (the measurements behind
//! experiments E2 and E6).

use crate::client::{Client, TimeoutStrategy};
use crate::config::ProtocolConfig;
use crate::message::Message;
use crate::principal::{Directory, Principal, PrincipalId};
use crate::provider::Provider;
use crate::sched::{self, Actor, EventHub, SettleReport};
use crate::session::{Outgoing, TxnState};
use crate::ttp::Ttp;
use std::collections::{HashMap, HashSet};
use tpnr_crypto::ChaChaRng;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{Envelope, LinkConfig, NodeId, SimNet};
use tpnr_net::time::SimTime;

/// One delivered-message trace entry (for examples and debugging).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulated delivery time.
    pub at: SimTime,
    /// Sender principal.
    pub from: &'static str,
    /// Receiver principal.
    pub to: &'static str,
    /// Message kind label.
    pub kind: String,
    /// Transaction id.
    pub txn_id: u64,
    /// Whether the receiver accepted it.
    pub accepted: bool,
    /// Rejection reason when not accepted.
    pub error: Option<String>,
}

/// Per-transaction outcome report.
///
/// Counts come from the simulator's per-transaction tagged stats
/// ([`SimNet::txn_stats`]), so they are exact even when many transactions
/// interleave on the same network — not before/after deltas of global
/// counters.
#[derive(Debug, Clone)]
pub struct TxnReport {
    /// Transaction id.
    pub txn_id: u64,
    /// Final state at the client.
    pub state: TxnState,
    /// Protocol messages delivered for this transaction (duplicates count
    /// per delivered copy).
    pub messages: u64,
    /// Bytes sent on the wire for this transaction.
    pub bytes: u64,
    /// Wall-clock (simulated) duration from initiation to settlement.
    pub latency: tpnr_net::time::SimDuration,
    /// Whether the TTP handled any message of this transaction.
    pub ttp_used: bool,
}

/// The assembled world: three actors on a simulated network.
pub struct World {
    /// The network (exposed so experiments can set links/interceptors).
    pub net: SimNet,
    /// Alice.
    pub client: Client,
    /// Bob.
    pub provider: Provider,
    /// The trusted third party.
    pub ttp: Ttp,
    /// Alice's node.
    pub alice_node: NodeId,
    /// Bob's node.
    pub bob_node: NodeId,
    /// TTP's node.
    pub ttp_node: NodeId,
    node_of: HashMap<PrincipalId, NodeId>,
    principal_of: HashMap<NodeId, PrincipalId>,
    name_of: HashMap<NodeId, &'static str>,
    /// The authenticated key directory shared by all honest parties
    /// (exposed for arbitration and attack harnesses).
    pub dir: Directory,
    /// Delivery trace.
    pub trace: Vec<TraceEvent>,
    /// Safety valve against livelock in adversarial runs; when hit, settle
    /// reports [`sched::SettleOutcome::StepCapExceeded`] instead of
    /// silently stopping.
    pub max_steps: usize,
    /// Transactions the TTP has seen a message for.
    ttp_touched: HashSet<u64>,
}

impl World {
    /// Builds a world with fresh (deterministic) principals and the given
    /// protocol configuration.
    pub fn new(seed: u64, cfg: ProtocolConfig) -> Self {
        let alice = Principal::test("alice", seed.wrapping_mul(3).wrapping_add(1));
        let bob = Principal::test("bob", seed.wrapping_mul(3).wrapping_add(2));
        let ttp_p = Principal::test("ttp", seed.wrapping_mul(3).wrapping_add(3));
        let mut dir = Directory::new();
        dir.register(&alice);
        dir.register(&bob);
        dir.register(&ttp_p);

        let mut net = SimNet::new(seed);
        let alice_node = net.register("alice");
        let bob_node = net.register("bob");
        let ttp_node = net.register("ttp");

        let client = Client::new(
            alice.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            bob.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xa11ce),
        );
        let provider = Provider::new(
            bob.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xb0b),
        );
        let ttp = Ttp::new(ttp_p.clone(), cfg, dir.clone(), ChaChaRng::seed_from_u64(seed ^ 0x777));

        let node_of: HashMap<_, _> =
            [(alice.id(), alice_node), (bob.id(), bob_node), (ttp_p.id(), ttp_node)]
                .into_iter()
                .collect();
        let principal_of: HashMap<_, _> = node_of.iter().map(|(p, n)| (*n, *p)).collect();
        let name_of: HashMap<NodeId, &'static str> =
            [(alice_node, "alice"), (bob_node, "bob"), (ttp_node, "ttp")].into_iter().collect();

        World {
            net,
            client,
            provider,
            ttp,
            alice_node,
            bob_node,
            ttp_node,
            node_of,
            principal_of,
            name_of,
            dir,
            trace: Vec::new(),
            max_steps: 10_000,
            ttp_touched: HashSet::new(),
        }
    }

    /// Configures every link with the same parameters (RTT sweeps).
    pub fn set_all_links(&mut self, cfg: LinkConfig) {
        self.net.set_default_link(cfg);
    }

    fn dispatch_outgoing(&mut self, from_node: NodeId, out: Vec<Outgoing>) {
        for o in out {
            let Some(&dst) = self.node_of.get(&o.to) else { continue };
            let txn = o.msg.txn_id();
            self.net.send_tagged(from_node, dst, o.msg.to_wire(), Some(txn));
        }
    }

    /// Sends any messages produced by a client API call.
    pub fn send_from_client(&mut self, out: Vec<Outgoing>) {
        self.dispatch_outgoing(self.alice_node, out);
    }

    fn actor_nodes(&self) -> [NodeId; 3] {
        [self.alice_node, self.bob_node, self.ttp_node]
    }

    fn actor(&self, node: NodeId) -> &dyn Actor {
        if node == self.alice_node {
            &self.client
        } else if node == self.bob_node {
            &self.provider
        } else {
            &self.ttp
        }
    }

    fn actor_mut(&mut self, node: NodeId) -> &mut dyn Actor {
        if node == self.alice_node {
            &mut self.client
        } else if node == self.bob_node {
            &mut self.provider
        } else {
            &mut self.ttp
        }
    }

    /// Runs deliveries and timeout polls on the shared scheduler
    /// ([`sched::settle`]) until every timer and delivery is drained or
    /// `max_steps` is hit — check `outcome` on the returned report.
    pub fn settle(&mut self) -> SettleReport {
        let max_steps = self.max_steps;
        sched::settle(self, max_steps)
    }

    /// Uploads and settles, returning the report.
    pub fn upload(&mut self, key: &[u8], data: Vec<u8>, strategy: TimeoutStrategy) -> TxnReport {
        let started = self.net.now();
        let (txn_id, out) =
            self.client.begin_upload(key, data, started, strategy).expect("upload initiation");
        self.send_from_client(out);
        self.settle();
        self.report(txn_id, started)
    }

    /// Downloads and settles, returning the report and the data.
    pub fn download(
        &mut self,
        key: &[u8],
        strategy: TimeoutStrategy,
    ) -> (TxnReport, Option<Vec<u8>>) {
        let started = self.net.now();
        let (txn_id, out) =
            self.client.begin_download(key, started, strategy).expect("download initiation");
        self.send_from_client(out);
        self.settle();
        let data = self.client.download_result(txn_id).map(|p| p.data.clone());
        (self.report(txn_id, started), data)
    }

    /// Builds an exact per-transaction report from the simulator's tagged
    /// traffic counters.
    pub fn report(&self, txn_id: u64, started: SimTime) -> TxnReport {
        let t = self.net.txn_stats(txn_id);
        TxnReport {
            txn_id,
            state: self.client.txn_state(txn_id).unwrap_or(TxnState::Pending),
            messages: t.delivered,
            bytes: t.bytes_sent,
            latency: self.net.now().since(started),
            ttp_used: self.ttp_touched.contains(&txn_id),
        }
    }
}

impl EventHub for World {
    fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    fn next_timer(&self) -> Option<SimTime> {
        self.actor_nodes().into_iter().filter_map(|n| self.actor(n).next_deadline()).min()
    }

    fn fire_timers(&mut self, now: SimTime) -> usize {
        let mut dispatched = 0;
        for node in self.actor_nodes() {
            let out = self.actor_mut(node).on_tick(now);
            dispatched += out.len();
            self.dispatch_outgoing(node, out);
        }
        dispatched
    }

    fn deliver(&mut self, env: Envelope) {
        let now = self.net.now();
        let from_principal = self.principal_of[&env.src];
        let decoded = Message::from_wire(&env.payload);
        let (kind, txn_id) = match &decoded {
            Ok(m) => (m.kind().to_string(), m.txn_id()),
            Err(_) => ("<garbled>".to_string(), 0),
        };
        if env.dst == self.ttp_node {
            if let Ok(m) = &decoded {
                self.ttp_touched.insert(m.txn_id());
            }
        }
        let result: Result<Vec<Outgoing>, String> = match decoded {
            Err(e) => Err(format!("decode: {e}")),
            Ok(msg) => self
                .actor_mut(env.dst)
                .on_message(from_principal, &msg, now)
                .map_err(|e| e.to_string()),
        };
        let accepted = result.is_ok();
        let error = result.as_ref().err().cloned();
        self.trace.push(TraceEvent {
            at: now,
            from: self.name_of[&env.src],
            to: self.name_of[&env.dst],
            kind,
            txn_id,
            accepted,
            error,
        });
        if let Ok(out) = result {
            self.dispatch_outgoing(env.dst, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SettleOutcome;
    use tpnr_net::time::SimDuration;

    fn world() -> World {
        World::new(1, ProtocolConfig::full())
    }

    #[test]
    fn normal_upload_takes_two_messages_no_ttp() {
        let mut w = world();
        let r = w.upload(b"backup/q3", b"financial data".to_vec(), TimeoutStrategy::AbortFirst);
        assert_eq!(r.state, TxnState::Completed);
        assert_eq!(r.messages, 2, "paper: Normal mode is a two-step exchange");
        assert!(!r.ttp_used, "paper: TTP stays off-line in Normal mode");
        assert_eq!(w.provider.peek_storage(b"backup/q3"), Some(&b"financial data"[..]));
    }

    #[test]
    fn normal_download_roundtrip() {
        let mut w = world();
        w.upload(b"k", b"hello cloud".to_vec(), TimeoutStrategy::AbortFirst);
        let (r, data) = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(r.state, TxnState::Completed);
        assert_eq!(r.messages, 2);
        assert_eq!(data.unwrap(), b"hello cloud");
    }

    #[test]
    fn evidence_archived_on_both_sides() {
        let mut w = world();
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        let ct = w.client.txn(r.txn_id).unwrap();
        assert!(ct.nrr.is_some(), "Alice holds Bob's NRR");
        let pt = w.provider.txn(r.txn_id).unwrap();
        assert_eq!(pt.nro.plaintext.txn_id, r.txn_id, "Bob holds Alice's NRO");
    }

    #[test]
    fn upload_download_integrity_link_detects_tamper() {
        let mut w = world();
        let up = w.upload(b"k", b"true data".to_vec(), TimeoutStrategy::AbortFirst);
        w.provider.tamper_storage(b"k", b"fake data".to_vec());
        let (down, data) = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(down.state, TxnState::Completed);
        assert_eq!(data.unwrap(), b"fake data", "tampered bytes arrive 'validly'");
        // The TPNR integrity link catches it where the platforms could not:
        assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(false));
    }

    #[test]
    fn integrity_link_confirms_clean_roundtrip() {
        let mut w = world();
        let up = w.upload(b"k", b"stable".to_vec(), TimeoutStrategy::AbortFirst);
        let (down, _) = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(true));
    }

    #[test]
    fn silent_provider_abort_path() {
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        // Bob ignored the transfer but answered the abort.
        assert_eq!(r.state, TxnState::Aborted);
        assert!(!r.ttp_used, "abort is an off-line-TTP sub-protocol");
    }

    #[test]
    fn fully_silent_provider_resolve_declares_failure() {
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        w.provider.behavior.respond_aborts = false;
        w.provider.behavior.respond_resolves = false;
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
        assert_eq!(r.state, TxnState::Failed);
        assert!(r.ttp_used);
        assert_eq!(w.ttp.stats.failures_declared, 1);
    }

    #[test]
    fn lost_receipt_recovered_via_resolve() {
        let mut w = world();
        // Drop Bob→Alice receipts only: Bob stores the data and issues the
        // NRR but Alice never sees it, so she resolves via the TTP.
        let alice = w.alice_node;
        let bob = w.bob_node;
        w.net.set_link(bob, alice, LinkConfig { drop_prob: 1.0, ..LinkConfig::default() });
        let (txn_id, out) = w
            .client
            .begin_upload(b"k", b"data".to_vec(), w.net.now(), TimeoutStrategy::ResolveImmediately)
            .unwrap();
        w.send_from_client(out);
        // Heal the link after the first loss so the resolve reply gets back.
        w.settle();
        // The receipt was dropped; resolve went through the TTP path.
        // (TTP relays Bob's re-issued NRR to Alice over ttp→alice link,
        // which is not the dropped one.)
        assert_eq!(w.client.txn_state(txn_id), Some(TxnState::Completed));
        assert!(w.ttp.stats.replies_relayed >= 1);
        assert!(w.client.txn(txn_id).unwrap().nrr.is_some());
    }

    #[test]
    fn settle_terminates_under_heavy_loss() {
        // Every protocol run must end in a terminal state even on a 30%
        // lossy network (no stuck sessions) — DESIGN.md §6 — and the
        // scheduler must reach true quiescence, not a silent step cap.
        for seed in 0..5 {
            let mut w = World::new(seed, ProtocolConfig::full());
            w.set_all_links(LinkConfig::lossy(SimDuration::from_millis(20), 0.3));
            let started = w.net.now();
            let (txn_id, out) = w
                .client
                .begin_upload(b"k", vec![1, 2, 3], started, TimeoutStrategy::ResolveImmediately)
                .unwrap();
            w.send_from_client(out);
            let s = w.settle();
            assert_eq!(s.outcome, SettleOutcome::Quiescent, "seed {seed}");
            let r = w.report(txn_id, started);
            assert!(r.state.is_terminal(), "seed {seed} left state {:?}", r.state);
        }
    }

    #[test]
    fn overdue_timer_fires_despite_background_traffic() {
        // Regression for the settle-loop starvation bug: the old loop only
        // fired a timer while `deadline >= now`, so once deliveries pushed
        // the clock past the deadline, Abort/Resolve was postponed until
        // the network drained. Flood the wire with undecodable chatter
        // spread over ~2 minutes (latency jitter reorders it) against a
        // silent provider: the resolve must still go out at its deadline,
        // not after the flood.
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        let (a, b) = (w.alice_node, w.bob_node);
        w.net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::from_secs(120),
                ..Default::default()
            },
        );
        let started = w.net.now();
        let (txn_id, out) = w
            .client
            .begin_upload(b"k", b"data".to_vec(), started, TimeoutStrategy::ResolveImmediately)
            .unwrap();
        w.send_from_client(out);
        for _ in 0..200 {
            w.net.send(a, b, b"not a protocol message".to_vec());
        }
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        // A provider that drops transfers never records the NRO, so the
        // resolve ends in a TTP-mediated Restart and the client marks the
        // session failed — the fair outcome, and a terminal one.
        assert_eq!(w.client.txn_state(txn_id), Some(TxnState::Failed));
        let resolve_at = w.trace.iter().find(|t| t.kind == "Resolve").expect("resolve was sent").at;
        // The client deadline is response_timeout after start — the flood
        // tail is ~2 minutes out, so firing anywhere near the deadline
        // proves the timer was not starved.
        assert!(
            resolve_at.micros() < 60_000_000,
            "resolve delayed until the flood drained: {} µs",
            resolve_at.micros()
        );
    }

    #[test]
    fn step_cap_reports_exceeded_instead_of_silently_settling() {
        let mut w = world();
        w.max_steps = 1;
        let started = w.net.now();
        let (_, out) = w
            .client
            .begin_upload(b"k", b"d".to_vec(), started, TimeoutStrategy::AbortFirst)
            .unwrap();
        w.send_from_client(out);
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::StepCapExceeded);
        // Resuming with a sane cap finishes the run.
        w.max_steps = 10_000;
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
    }

    #[test]
    fn timer_delivery_tie_is_deterministic_timer_first() {
        // Arrange an exact tie: the receipt arrives at the very instant the
        // client's response deadline expires (response_timeout == one RTT).
        // The documented rule is timer-first — a reply landing exactly at
        // the deadline is late — so the abort goes out even though the
        // receipt was deliverable at the same timestamp, and the run is
        // reproducible event-for-event.
        let run = || {
            let mut cfg = ProtocolConfig::full();
            cfg.response_timeout = SimDuration::from_millis(50); // == RTT
            let mut w = World::new(9, cfg);
            let r = w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
            let kinds: Vec<String> = w.trace.iter().map(|t| t.kind.clone()).collect();
            (r.state, kinds)
        };
        let (state1, kinds1) = run();
        let (state2, kinds2) = run();
        assert_eq!(kinds1, kinds2, "tie-break must be deterministic");
        assert_eq!(state1, state2);
        assert!(
            kinds1.iter().any(|k| k == "Abort"),
            "timer fired before the same-instant receipt delivery: {kinds1:?}"
        );
    }

    #[test]
    fn trace_records_deliveries() {
        let mut w = world();
        w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
        assert_eq!(w.trace.len(), 2);
        assert_eq!(w.trace[0].kind, "Transfer");
        assert_eq!(w.trace[1].kind, "Receipt");
        assert!(w.trace.iter().all(|t| t.accepted));
    }

    #[test]
    fn latency_scales_with_rtt() {
        let mut lat = Vec::new();
        for rtt_ms in [10u64, 100] {
            let mut w = world();
            w.set_all_links(LinkConfig::ideal(SimDuration::from_millis(rtt_ms / 2)));
            let r = w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
            lat.push(r.latency.micros());
        }
        assert_eq!(lat[0], 10_000);
        assert_eq!(lat[1], 100_000);
    }
}
