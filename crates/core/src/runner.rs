//! Orchestration: TPNR actors over a [`Transport`].
//!
//! [`GenericWorld`] owns one client, one provider, one TTP and the wire,
//! encodes every protocol message to canonical bytes on the wire (so
//! adversaries manipulate real traffic), drives deliveries and timeout
//! polls, and reports per-transaction statistics — message counts, wall
//! latency, and whether the TTP was touched (the measurements behind
//! experiments E2 and E6).
//!
//! The world is generic over its [`Transport`] backend — the same
//! protocol code runs on the deterministic simulator ([`World`] =
//! `GenericWorld<SimNet>`), the in-process channel, and loopback TCP
//! (experiment E14) with zero per-backend branches.

use crate::client::{Client, TimeoutStrategy};
use crate::config::ProtocolConfig;
use crate::evidence::VerifiedEvidence;
use crate::fault::{DeliveryVerdict, Durable, FaultCtl, FaultStats, SyncDecision};
use crate::message::Message;
use crate::obs::{Event, EventKind, Obs};
use crate::principal::{Directory, Principal, PrincipalId};
use crate::provider::Provider;
use crate::sched::{self, Actor, EventHub, SettleReport, TimerWheel};
use crate::session::{Outgoing, TxnState};
use crate::ttp::Ttp;
use std::collections::{HashMap, HashSet};
use tpnr_crypto::ChaChaRng;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{Envelope, LinkConfig, NodeId, SimNet};
use tpnr_net::time::SimTime;
use tpnr_net::transport::Transport;
use tpnr_net::Bytes;

/// Per-transaction outcome report.
///
/// Counts come from the simulator's per-transaction tagged stats
/// ([`SimNet::txn_stats`]), so they are exact even when many transactions
/// interleave on the same network — not before/after deltas of global
/// counters.
#[derive(Debug, Clone)]
pub struct TxnReport {
    /// Transaction id.
    pub txn_id: u64,
    /// Final state at the client.
    pub state: TxnState,
    /// Protocol messages delivered for this transaction (duplicates count
    /// per delivered copy).
    pub messages: u64,
    /// Bytes sent on the wire for this transaction.
    pub bytes: u64,
    /// Wall-clock (simulated) duration from initiation to settlement.
    pub latency: tpnr_net::time::SimDuration,
    /// Whether the TTP handled any message of this transaction.
    pub ttp_used: bool,
}

/// A typed transaction request — what to run, not how to plumb it.
///
/// Replaces the loose `(key, data, strategy)` argument lists: build one with
/// [`TxnRequest::upload`] / [`TxnRequest::download`], adjust it with
/// [`TxnRequest::with_strategy`], and hand it to [`World::run`].
#[derive(Debug, Clone)]
pub struct TxnRequest {
    /// Object key.
    pub key: Vec<u8>,
    /// Payload for uploads; `None` makes this a download.
    pub data: Option<Bytes>,
    /// Timeout sub-protocol the client arms at initiation.
    pub strategy: TimeoutStrategy,
}

impl TxnRequest {
    /// An upload of `data` under `key` (strategy defaults to
    /// [`TimeoutStrategy::AbortFirst`]).
    pub fn upload(key: &[u8], data: impl Into<Bytes>) -> Self {
        TxnRequest {
            key: key.to_vec(),
            data: Some(data.into()),
            strategy: TimeoutStrategy::AbortFirst,
        }
    }

    /// A download of `key` (strategy defaults to
    /// [`TimeoutStrategy::AbortFirst`]).
    pub fn download(key: &[u8]) -> Self {
        TxnRequest { key: key.to_vec(), data: None, strategy: TimeoutStrategy::AbortFirst }
    }

    /// Overrides the timeout strategy.
    pub fn with_strategy(mut self, strategy: TimeoutStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// The typed outcome of a settled transaction.
///
/// Replaces [`World::download`]'s old `(TxnReport, Option<Bytes>)` tuple and
/// the report-only return of [`World::upload`]: the terminal state, the
/// payload (downloads), both evidence pieces as the client holds them, and
/// the full wire-level [`TxnReport`] in one place.
#[derive(Debug, Clone)]
pub struct TxnResult {
    /// Transaction id (0 is the failed-initiation sentinel; real ids start
    /// at 1).
    pub txn_id: u64,
    /// Final state at the client.
    pub outcome: TxnState,
    /// Download payload, if this was a download that completed.
    pub data: Option<Bytes>,
    /// The client's own sealed non-repudiation-of-origin evidence.
    pub nro: Option<VerifiedEvidence>,
    /// The provider's receipt (NRR) as verified by the client, if received.
    pub nrr: Option<VerifiedEvidence>,
    /// Wire-level statistics (messages, bytes, latency, TTP use).
    pub report: TxnReport,
}

impl TxnResult {
    /// True when the exchange completed with the full evidence pair.
    pub fn completed(&self) -> bool {
        self.outcome == TxnState::Completed
    }

    /// True when the transaction is in a state a dispute arbiter can act
    /// on: a terminal outcome with the client's sealed NRO retained. This
    /// is the no-evidence-less-limbo property experiment E8 measures.
    pub fn arbitrable(&self) -> bool {
        self.outcome.is_terminal() && self.nro.is_some()
    }
}

/// Last synced durable images of the three actors (the crash recovery
/// points). Allocated only when the fault plan can actually inject.
struct WorldSnapshots {
    client: crate::client::ClientSnapshot,
    provider: crate::provider::ProviderSnapshot,
    ttp: crate::ttp::TtpSnapshot,
}

/// The assembled world: three actors on a [`Transport`] backend.
///
/// `T` defaults to the deterministic simulator; [`World`] is the
/// `GenericWorld<SimNet>` alias almost all code uses. Every protocol
/// decision below is written against the [`Transport`] trait, so swapping
/// `T` for [`tpnr_net::ChannelNet`] or [`tpnr_net::TcpNet`] changes the
/// wire, never the protocol.
pub struct GenericWorld<T: Transport = SimNet> {
    /// The wire. Private since the transport redesign: use the typed
    /// accessors [`GenericWorld::net`] / [`GenericWorld::net_mut`], which
    /// keep the backend's full inherent API (links, interceptors)
    /// reachable without freezing the field layout into the public API.
    net: T,
    /// Alice.
    pub client: Client,
    /// Bob.
    pub provider: Provider,
    /// The trusted third party.
    pub ttp: Ttp,
    /// Alice's node.
    pub alice_node: NodeId,
    /// Bob's node.
    pub bob_node: NodeId,
    /// TTP's node.
    pub ttp_node: NodeId,
    node_of: HashMap<PrincipalId, NodeId>,
    principal_of: HashMap<NodeId, PrincipalId>,
    name_of: HashMap<NodeId, &'static str>,
    /// The authenticated key directory shared by all honest parties
    /// (exposed for arbitration and attack harnesses).
    pub dir: Directory,
    /// The shared observability sink: structured events (deliveries,
    /// rejections, garbled arrivals, drops, duplications, timer fires,
    /// state transitions) plus the metrics registry. Same type and
    /// semantics as [`MultiWorld`](crate::multi::MultiWorld)'s.
    pub obs: Obs,
    /// Safety valve against livelock in adversarial runs; when hit, settle
    /// reports [`sched::SettleOutcome::StepCapExceeded`] instead of
    /// silently stopping.
    pub max_steps: usize,
    /// Transactions the TTP has seen a message for.
    ttp_touched: HashSet<u64>,
    /// The fault injector executing `cfg.faults` (inert and overhead-free
    /// for the default plan).
    faults: FaultCtl,
    /// Last synced snapshots; `None` when the fault plan is inert.
    snaps: Option<Box<WorldSnapshots>>,
    /// Scheduler-owned deadline index: actors register/cancel deadlines
    /// here instead of being polled each step (keys: alice 0, bob 1,
    /// ttp 2, fault wakeup [`GenericWorld::FAULT_WHEEL_KEY`]).
    wheel: TimerWheel,
}

/// The classic deterministic world: [`GenericWorld`] over [`SimNet`].
pub type World = GenericWorld<SimNet>;

impl World {
    /// Builds a world on the deterministic simulator with fresh
    /// (deterministic) principals and the given protocol configuration.
    pub fn new(seed: u64, cfg: ProtocolConfig) -> Self {
        Self::with_transport(SimNet::new(seed), seed, cfg)
    }

    /// Configures every link with the same parameters (RTT sweeps).
    pub fn set_all_links(&mut self, cfg: LinkConfig) {
        self.net.set_default_link(cfg);
    }
}

impl<T: Transport> GenericWorld<T> {
    /// Builds a world over an arbitrary [`Transport`] backend. `seed`
    /// derives the principals' keys and each actor's RNG exactly as
    /// [`World::new`] does, so two backends given the same seed host
    /// byte-identical principals.
    pub fn with_transport(mut net: T, seed: u64, cfg: ProtocolConfig) -> Self {
        let alice = Principal::test("alice", seed.wrapping_mul(3).wrapping_add(1));
        let bob = Principal::test("bob", seed.wrapping_mul(3).wrapping_add(2));
        let ttp_p = Principal::test("ttp", seed.wrapping_mul(3).wrapping_add(3));
        let mut dir = Directory::new();
        dir.register(&alice);
        dir.register(&bob);
        dir.register(&ttp_p);

        let alice_node = net.register("alice");
        let bob_node = net.register("bob");
        let ttp_node = net.register("ttp");

        let client = Client::new(
            alice.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            bob.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xa11ce),
        );
        let provider = Provider::new(
            bob.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xb0b),
        );
        let faults = FaultCtl::new(&cfg.faults);
        let ttp = Ttp::new(ttp_p.clone(), cfg, dir.clone(), ChaChaRng::seed_from_u64(seed ^ 0x777));
        // Take the epoch-zero recovery points up front: a crash before the
        // first sync restores to the freshly-built actor, not to garbage.
        let snaps = faults.active().then(|| {
            Box::new(WorldSnapshots {
                client: client.snapshot(),
                provider: provider.snapshot(),
                ttp: ttp.snapshot(),
            })
        });

        let node_of: HashMap<_, _> =
            [(alice.id(), alice_node), (bob.id(), bob_node), (ttp_p.id(), ttp_node)]
                .into_iter()
                .collect();
        let principal_of: HashMap<_, _> = node_of.iter().map(|(p, n)| (*n, *p)).collect();
        let name_of: HashMap<NodeId, &'static str> =
            [(alice_node, "alice"), (bob_node, "bob"), (ttp_node, "ttp")].into_iter().collect();

        GenericWorld {
            net,
            client,
            provider,
            ttp,
            alice_node,
            bob_node,
            ttp_node,
            node_of,
            principal_of,
            name_of,
            dir,
            obs: Obs::new(),
            max_steps: 10_000,
            ttp_touched: HashSet::new(),
            faults,
            snaps,
            wheel: TimerWheel::new(),
        }
    }

    /// Wheel key for the fault injector's next wakeup (restart instants and
    /// outage boundaries are timers like any other).
    const FAULT_WHEEL_KEY: usize = 3;

    fn wheel_key(&self, node: NodeId) -> usize {
        if node == self.alice_node {
            0
        } else if node == self.bob_node {
            1
        } else {
            2
        }
    }

    fn node_by_name(&self, name: &str) -> NodeId {
        match name {
            "alice" => self.alice_node,
            "bob" => self.bob_node,
            _ => self.ttp_node,
        }
    }

    /// Re-registers one actor's earliest deadline with the wheel (a down
    /// actor's timers are frozen, so its entry is cancelled instead).
    fn refresh_wheel(&mut self, node: NodeId) {
        let down = self.faults.active() && self.faults.is_down(self.name_of[&node]);
        let d = if down { None } else { self.actor(node).next_deadline() };
        self.wheel.set(self.wheel_key(node), d);
    }

    fn refresh_fault_wheel(&mut self) {
        let w = self.faults.next_wakeup();
        self.wheel.set(Self::FAULT_WHEEL_KEY, w);
    }

    /// Full wheel resync from actor state. Run at every settle entry so
    /// deadlines armed or mutated outside the event loop (API calls, test
    /// and attack harnesses poking actors directly) are picked up.
    fn resync_wheel(&mut self) {
        for node in self.actor_nodes() {
            self.refresh_wheel(node);
        }
        self.refresh_fault_wheel();
    }

    /// Borrows the transport backend (typed, so the backend's inherent
    /// API — [`SimNet::stats`], link knobs — stays reachable).
    pub fn net(&self) -> &T {
        &self.net
    }

    /// Mutably borrows the transport backend (links, interceptors,
    /// manual sends in attack and test harnesses).
    pub fn net_mut(&mut self) -> &mut T {
        &mut self.net
    }

    fn dispatch_outgoing(&mut self, from_node: NodeId, out: Vec<Outgoing>) {
        for o in out {
            let Some(&dst) = self.node_of.get(&o.to) else { continue };
            let txn = o.msg.txn_id();
            // First wire activity marks the transaction's start (idempotent)
            // so terminal-state latency is measurable for every entry path.
            self.obs.note_txn_started(txn, self.net.now());
            // Encode once into a shared buffer; the simulator clones only
            // the handle from here on (queue, duplicates, inbox).
            self.net.send_tagged(from_node, dst, o.msg.to_wire_bytes(), Some(txn));
        }
    }

    /// Sends any messages produced by a client API call.
    pub fn send_from_client(&mut self, out: Vec<Outgoing>) {
        self.dispatch_outgoing(self.alice_node, out);
    }

    fn actor_nodes(&self) -> [NodeId; 3] {
        [self.alice_node, self.bob_node, self.ttp_node]
    }

    fn actor(&self, node: NodeId) -> &dyn Actor {
        if node == self.alice_node {
            &self.client
        } else if node == self.bob_node {
            &self.provider
        } else {
            &self.ttp
        }
    }

    fn actor_mut(&mut self, node: NodeId) -> &mut dyn Actor {
        if node == self.alice_node {
            &mut self.client
        } else if node == self.bob_node {
            &mut self.provider
        } else {
            &mut self.ttp
        }
    }

    /// Runs deliveries and timeout polls on the shared scheduler
    /// ([`sched::settle`]) until every timer and delivery is drained or
    /// `max_steps` is hit — check `outcome` on the returned report.
    pub fn settle(&mut self) -> SettleReport {
        self.resync_wheel();
        let max_steps = self.max_steps;
        let report = sched::settle(self, max_steps);
        // Mirror the cumulative fault counters into the metrics registry so
        // JSONL/bench output carries them without re-deriving.
        let f = report.faults;
        self.obs.metrics.crashes = f.crashes;
        self.obs.metrics.restarts = f.restarts;
        self.obs.metrics.retries = f.retries;
        self.obs.metrics.snapshot_bytes = f.snapshot_bytes;
        report
    }

    /// Runs one transaction to settlement and returns the typed result.
    ///
    /// A failed initiation (e.g. no provider key) never panics: it is
    /// recorded as a rejection in [`Obs`](crate::obs::Obs) and reported as
    /// a `Failed` transaction with the sentinel id 0 (real ids start at 1).
    pub fn run(&mut self, req: TxnRequest) -> TxnResult {
        let started = self.net.now();
        let begun = match req.data {
            Some(data) => self.client.begin_upload(&req.key, data, started, req.strategy),
            None => self.client.begin_download(&req.key, started, req.strategy),
        };
        let (txn_id, out) = match begun {
            Ok(v) => v,
            Err(e) => return self.failed_initiation(started, "Transfer", e),
        };
        self.obs.note_state(started, "alice", txn_id, TxnState::Pending);
        // Write-ahead: the NRO sealed at initiation must survive a crash
        // that lands before any reply comes back.
        self.sync_actor(self.alice_node, started, true);
        self.send_from_client(out);
        self.settle();
        self.result(txn_id, started)
    }

    /// Uploads and settles ([`TxnRequest::upload`] + [`World::run`]).
    pub fn upload(
        &mut self,
        key: &[u8],
        data: impl Into<Bytes>,
        strategy: TimeoutStrategy,
    ) -> TxnResult {
        self.run(TxnRequest::upload(key, data).with_strategy(strategy))
    }

    /// Downloads and settles ([`TxnRequest::download`] + [`World::run`]);
    /// the payload arrives as `TxnResult::data` (a shared handle into the
    /// received bytes — no copy).
    pub fn download(&mut self, key: &[u8], strategy: TimeoutStrategy) -> TxnResult {
        self.run(TxnRequest::download(key).with_strategy(strategy))
    }

    /// Assembles the typed result for a settled transaction.
    pub fn result(&self, txn_id: u64, started: SimTime) -> TxnResult {
        let report = self.report(txn_id, started);
        let t = self.client.txn(txn_id);
        TxnResult {
            txn_id,
            outcome: report.state,
            data: self.client.download_result(txn_id).map(|p| p.data.clone()),
            nro: t.map(|t| t.nro.clone()),
            nrr: t.and_then(|t| t.nrr.clone()),
            report,
        }
    }

    /// Records a client-side initiation failure and builds the degraded
    /// result (no traffic was ever generated for the transaction).
    fn failed_initiation(
        &mut self,
        started: SimTime,
        msg: &str,
        error: crate::session::ValidationError,
    ) -> TxnResult {
        self.obs.record(Event {
            at: started,
            txn: None,
            actor: "alice".to_string(),
            kind: EventKind::Rejected { from: "alice".to_string(), msg: msg.to_string(), error },
        });
        TxnResult {
            txn_id: 0,
            outcome: TxnState::Failed,
            data: None,
            nro: None,
            nrr: None,
            report: TxnReport {
                txn_id: 0,
                state: TxnState::Failed,
                messages: 0,
                bytes: 0,
                latency: started.since(started),
                ttp_used: false,
            },
        }
    }

    /// Cumulative fault counters: the injector's own plus the client's
    /// retry machinery (which lives outside snapshots so it never resets).
    pub fn fault_counters(&self) -> FaultStats {
        let mut f = self.faults.stats;
        f.retries += self.client.retry_stats.retries;
        f.gave_up += self.client.retry_stats.gave_up;
        f
    }

    /// Marks the actor at `node` crashed and records the event. The restart
    /// instant becomes a scheduler timer via [`FaultCtl::next_wakeup`].
    fn crash_actor(&mut self, node: NodeId, now: SimTime) {
        let name = self.name_of[&node];
        self.faults.crash(name, now);
        // The outage is a transport fact: queued copies addressed to the
        // node drop (and are counted) at their delivery instant instead of
        // silently evaporating in the runner.
        self.net.set_node_down(node, true);
        // Freeze the crashed actor's armed deadline: its wheel entry dies
        // with it and is re-registered from the restored snapshot. The
        // restart instant itself becomes a wheel entry.
        self.wheel.cancel(self.wheel_key(node));
        self.refresh_fault_wheel();
        self.obs.record(Event {
            at: now,
            txn: None,
            actor: name.to_string(),
            kind: EventKind::Crashed,
        });
    }

    /// Restores a restarted actor from its last synced snapshot.
    fn restore_actor(&mut self, name: &str, now: SimTime) {
        let Some(snaps) = self.snaps.take() else { return };
        let bytes = match name {
            "alice" => {
                self.client.restore(&snaps.client);
                snaps.client.bytes()
            }
            "bob" => {
                self.provider.restore(&snaps.provider);
                snaps.provider.bytes()
            }
            _ => {
                self.ttp.restore(&snaps.ttp);
                snaps.ttp.bytes()
            }
        };
        self.snaps = Some(snaps);
        self.obs.record(Event {
            at: now,
            txn: None,
            actor: name.to_string(),
            kind: EventKind::Restarted { snapshot_bytes: bytes },
        });
    }

    /// Durably syncs an actor's state if due (or forced — the write-ahead
    /// path taken before any produced message reaches the wire).
    fn sync_actor(&mut self, node: NodeId, now: SimTime, force: bool) {
        if self.snaps.is_none() {
            return;
        }
        let name = self.name_of[&node];
        match self.faults.sync_due(name, now, force) {
            SyncDecision::Skip | SyncDecision::FailedWrite => {}
            SyncDecision::Persist => {
                let Some(snaps) = self.snaps.as_mut() else { return };
                let bytes = if node == self.alice_node {
                    let s = self.client.snapshot();
                    let b = s.bytes();
                    snaps.client = s;
                    b
                } else if node == self.bob_node {
                    let s = self.provider.snapshot();
                    let b = s.bytes();
                    snaps.provider = s;
                    b
                } else {
                    let s = self.ttp.snapshot();
                    let b = s.bytes();
                    snaps.ttp = s;
                    b
                };
                self.faults.note_snapshot(bytes);
            }
        }
    }

    /// Builds an exact per-transaction report from the simulator's tagged
    /// traffic counters. Latency is txn-scoped — measured to this
    /// transaction's own last delivery, not to `net.now()`, so unrelated
    /// background traffic never inflates it (same rule as
    /// [`MultiWorld::report`](crate::multi::MultiWorld::report)).
    pub fn report(&self, txn_id: u64, started: SimTime) -> TxnReport {
        let t = self.net.txn_stats(txn_id);
        TxnReport {
            txn_id,
            state: self.client.txn_state(txn_id).unwrap_or(TxnState::Pending),
            messages: t.delivered,
            bytes: t.bytes_sent,
            latency: t.last_delivered_at.since(started),
            ttp_used: self.ttp_touched.contains(&txn_id),
        }
    }
}

impl<T: Transport> EventHub for GenericWorld<T> {
    fn transport(&mut self) -> &mut dyn Transport {
        &mut self.net
    }

    fn next_timer(&self) -> Option<SimTime> {
        // The wheel is the deadline index: actor deadlines and the fault
        // injector's wakeups (restarts, outage starts) are all entries, so
        // downtime advances the clock instead of stalling the loop and no
        // actor is polled. A crashed actor's entry is cancelled with it,
        // freezing its protocol timers until restart.
        self.wheel.peek()
    }

    fn fire_timers(&mut self, now: SimTime) -> usize {
        if self.faults.active() {
            // Restarts and outage boundaries first: a just-restored actor
            // ticks in this same round, so an overdue deadline revealed by
            // the restore produces output immediately (never barren).
            let ev = self.faults.poll("ttp", now);
            for name in ev.crashed {
                let node = self.node_by_name(&name);
                self.net.set_node_down(node, true);
                self.wheel.cancel(self.wheel_key(node));
                self.obs.record(Event {
                    at: now,
                    txn: None,
                    actor: name,
                    kind: EventKind::Crashed,
                });
            }
            for name in ev.restarted {
                self.restore_actor(&name, now);
                // Re-arm from the restored state (the stale pre-crash entry
                // was cancelled at crash time and can never fire).
                let node = self.node_by_name(&name);
                self.net.set_node_down(node, false);
                self.refresh_wheel(node);
            }
            self.refresh_fault_wheel();
        }
        let mut dispatched = 0;
        for key in self.wheel.advance(now) {
            if key == Self::FAULT_WHEEL_KEY {
                continue; // consumed by faults.poll above
            }
            let node = self.actor_nodes()[key];
            if self.faults.active() && self.faults.is_down(self.name_of[&node]) {
                continue;
            }
            let out = self.actor_mut(node).on_tick(now);
            self.obs.record(Event {
                at: now,
                txn: None,
                actor: self.name_of[&node].to_string(),
                kind: EventKind::TimerFired { messages: out.len() },
            });
            if !out.is_empty() {
                // Write-ahead: timer-driven sends (Abort/Resolve) persist
                // the state they acknowledge before hitting the wire.
                self.sync_actor(node, now, true);
            }
            dispatched += out.len();
            self.dispatch_outgoing(node, out);
            // The tick moved or kept this actor's deadline; re-register it
            // (a kept overdue deadline re-files as overdue, preserving the
            // scheduler's barren-masking comparison).
            self.refresh_wheel(node);
        }
        if self.faults.active() {
            self.refresh_fault_wheel();
        }
        // Timers move client-visible transaction states (abort/resolve
        // initiation, local failure declarations); diff them all.
        for txn in self.client.txn_ids() {
            if let Some(st) = self.client.txn_state(txn) {
                self.obs.note_state(now, "alice", txn, st);
            }
        }
        dispatched
    }

    fn deliver(&mut self, env: Envelope) {
        let now = self.net.now();
        let from_principal = self.principal_of[&env.src];
        let from = self.name_of[&env.src];
        let actor = self.name_of[&env.dst];
        if self.faults.active() && self.faults.is_down(actor) {
            // Same-instant defense in depth: the transport drops queued
            // copies for a down node at their delivery instant, but a crash
            // fired in this very settle round can race an already-polled
            // envelope. The sender's retry machinery is the recovery path.
            self.faults.note_delivery_lost();
            return;
        }
        let msg = match Message::from_wire_bytes(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                // An undecodable payload belongs to whatever transaction
                // tagged it on the wire — usually none. (It used to be
                // reported as `txn_id: 0`, colliding with a real id.)
                self.obs.record(Event {
                    at: now,
                    txn: env.txn,
                    actor: actor.to_string(),
                    kind: EventKind::Garbled { from: from.to_string() },
                });
                return;
            }
        };
        let txn_id = msg.txn_id();
        if env.dst == self.ttp_node {
            self.ttp_touched.insert(txn_id);
        }
        // Prefer the sender's wire tag; adversary injections are untagged
        // but decode, so fall back to the protocol header's id.
        let txn = env.txn.or(Some(txn_id));
        let msg_kind = msg.kind().to_string();
        let verdict = if self.faults.active() {
            self.faults.delivery_verdict(actor, &msg_kind)
        } else {
            DeliveryVerdict::Proceed
        };
        if verdict == DeliveryVerdict::CrashBefore {
            // Crash on receipt: the message is lost before processing.
            self.crash_actor(env.dst, now);
            return;
        }
        let result = self.actor_mut(env.dst).on_message(from_principal, &msg, now);
        match result {
            Ok(out) => {
                self.obs.record(Event {
                    at: now,
                    txn,
                    actor: actor.to_string(),
                    kind: EventKind::Delivered { from: from.to_string(), msg: msg_kind },
                });
                if env.dst == self.alice_node {
                    if let Some(st) = self.client.txn_state(txn_id) {
                        self.obs.note_state(now, actor, txn_id, st);
                    }
                }
                // Write-ahead durable sync: a reply acknowledges state, so
                // the state hits the snapshot before the reply hits the
                // wire. Output-less (passive) steps defer to the interval.
                let force = !out.is_empty() || verdict == DeliveryVerdict::CrashAfter;
                self.sync_actor(env.dst, now, force);
                if verdict == DeliveryVerdict::CrashAfter {
                    // State persisted, replies die with the process.
                    self.crash_actor(env.dst, now);
                } else {
                    self.dispatch_outgoing(env.dst, out);
                }
            }
            Err(error) => {
                self.obs.record(Event {
                    at: now,
                    txn,
                    actor: actor.to_string(),
                    kind: EventKind::Rejected { from: from.to_string(), msg: msg_kind, error },
                });
                if verdict == DeliveryVerdict::CrashAfter {
                    self.crash_actor(env.dst, now);
                }
            }
        }
        // The message may have armed, moved, or cleared the recipient's
        // earliest deadline; keep the wheel authoritative. (Crash paths
        // already cancelled the entry; refresh on a down actor is a no-op
        // cancellation.)
        self.refresh_wheel(env.dst);
    }

    fn obs_mut(&mut self) -> Option<&mut Obs> {
        Some(&mut self.obs)
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SettleOutcome;
    use tpnr_net::time::SimDuration;

    fn world() -> World {
        World::new(1, ProtocolConfig::full())
    }

    #[test]
    fn normal_upload_takes_two_messages_no_ttp() {
        let mut w = world();
        let r = w.upload(b"backup/q3", b"financial data".to_vec(), TimeoutStrategy::AbortFirst);
        assert_eq!(r.outcome, TxnState::Completed);
        assert!(r.completed() && r.arbitrable());
        assert_eq!(r.report.messages, 2, "paper: Normal mode is a two-step exchange");
        assert!(!r.report.ttp_used, "paper: TTP stays off-line in Normal mode");
        assert_eq!(w.provider.peek_storage(b"backup/q3"), Some(&b"financial data"[..]));
    }

    #[test]
    fn normal_download_roundtrip() {
        let mut w = world();
        w.upload(b"k", b"hello cloud".to_vec(), TimeoutStrategy::AbortFirst);
        let r = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(r.outcome, TxnState::Completed);
        assert_eq!(r.report.messages, 2);
        assert_eq!(r.data.unwrap(), b"hello cloud");
    }

    #[test]
    fn evidence_archived_on_both_sides() {
        let mut w = world();
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        let ct = w.client.txn(r.txn_id).unwrap();
        assert!(ct.nrr.is_some(), "Alice holds Bob's NRR");
        let pt = w.provider.txn(r.txn_id).unwrap();
        assert_eq!(pt.nro.plaintext.txn_id, r.txn_id, "Bob holds Alice's NRO");
    }

    #[test]
    fn upload_download_integrity_link_detects_tamper() {
        let mut w = world();
        let up = w.upload(b"k", b"true data".to_vec(), TimeoutStrategy::AbortFirst);
        w.provider.tamper_storage(b"k", b"fake data".to_vec());
        let down = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(down.outcome, TxnState::Completed);
        assert_eq!(down.data.clone().unwrap(), b"fake data", "tampered bytes arrive 'validly'");
        // The TPNR integrity link catches it where the platforms could not:
        assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(false));
    }

    #[test]
    fn integrity_link_confirms_clean_roundtrip() {
        let mut w = world();
        let up = w.upload(b"k", b"stable".to_vec(), TimeoutStrategy::AbortFirst);
        let down = w.download(b"k", TimeoutStrategy::AbortFirst);
        assert_eq!(w.client.verify_download_against_upload(up.txn_id, down.txn_id), Some(true));
    }

    #[test]
    fn silent_provider_abort_path() {
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        // Bob ignored the transfer but answered the abort.
        assert_eq!(r.outcome, TxnState::Aborted);
        assert!(r.arbitrable(), "aborted but the NRO still settles disputes");
        assert!(!r.report.ttp_used, "abort is an off-line-TTP sub-protocol");
    }

    #[test]
    fn fully_silent_provider_resolve_declares_failure() {
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        w.provider.behavior.respond_aborts = false;
        w.provider.behavior.respond_resolves = false;
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
        assert_eq!(r.outcome, TxnState::Failed);
        assert!(r.report.ttp_used);
        assert_eq!(w.ttp.stats.failures_declared, 1);
    }

    #[test]
    fn lost_receipt_recovered_via_resolve() {
        let mut w = world();
        // Drop Bob→Alice receipts only: Bob stores the data and issues the
        // NRR but Alice never sees it, so she resolves via the TTP.
        let alice = w.alice_node;
        let bob = w.bob_node;
        w.net.set_link(bob, alice, LinkConfig { drop_prob: 1.0, ..LinkConfig::default() });
        let (txn_id, out) = w
            .client
            .begin_upload(b"k", b"data".to_vec(), w.net.now(), TimeoutStrategy::ResolveImmediately)
            .unwrap();
        w.send_from_client(out);
        // Heal the link after the first loss so the resolve reply gets back.
        w.settle();
        // The receipt was dropped; resolve went through the TTP path.
        // (TTP relays Bob's re-issued NRR to Alice over ttp→alice link,
        // which is not the dropped one.)
        assert_eq!(w.client.txn_state(txn_id), Some(TxnState::Completed));
        assert!(w.ttp.stats.replies_relayed >= 1);
        assert!(w.client.txn(txn_id).unwrap().nrr.is_some());
    }

    #[test]
    fn settle_terminates_under_heavy_loss() {
        // Every protocol run must end in a terminal state even on a 30%
        // lossy network (no stuck sessions) — DESIGN.md §6 — and the
        // scheduler must reach true quiescence, not a silent step cap.
        for seed in 0..5 {
            let mut w = World::new(seed, ProtocolConfig::full());
            w.set_all_links(LinkConfig::lossy(SimDuration::from_millis(20), 0.3));
            let started = w.net.now();
            let (txn_id, out) = w
                .client
                .begin_upload(b"k", vec![1, 2, 3], started, TimeoutStrategy::ResolveImmediately)
                .unwrap();
            w.send_from_client(out);
            let s = w.settle();
            assert_eq!(s.outcome, SettleOutcome::Quiescent, "seed {seed}");
            let r = w.report(txn_id, started);
            assert!(r.state.is_terminal(), "seed {seed} left state {:?}", r.state);
        }
    }

    #[test]
    fn overdue_timer_fires_despite_background_traffic() {
        // Regression for the settle-loop starvation bug: the old loop only
        // fired a timer while `deadline >= now`, so once deliveries pushed
        // the clock past the deadline, Abort/Resolve was postponed until
        // the network drained. Flood the wire with undecodable chatter
        // spread over ~2 minutes (latency jitter reorders it) against a
        // silent provider: the resolve must still go out at its deadline,
        // not after the flood.
        let mut w = world();
        w.provider.behavior.respond_transfers = false;
        let (a, b) = (w.alice_node, w.bob_node);
        w.net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::from_secs(120),
                ..Default::default()
            },
        );
        let started = w.net.now();
        let (txn_id, out) = w
            .client
            .begin_upload(b"k", b"data".to_vec(), started, TimeoutStrategy::ResolveImmediately)
            .unwrap();
        w.send_from_client(out);
        for _ in 0..200 {
            w.net.send(a, b, b"not a protocol message".to_vec());
        }
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        // A provider that drops transfers never records the NRO, so the
        // resolve ends in a TTP-mediated Restart and the client marks the
        // session failed — the fair outcome, and a terminal one.
        assert_eq!(w.client.txn_state(txn_id), Some(TxnState::Failed));
        let resolve_at = w
            .obs
            .events()
            .iter()
            .find(|e| e.msg_kind() == Some("Resolve"))
            .expect("resolve was sent")
            .at;
        // The client deadline is response_timeout after start — the flood
        // tail is ~2 minutes out, so firing anywhere near the deadline
        // proves the timer was not starved.
        assert!(
            resolve_at.micros() < 60_000_000,
            "resolve delayed until the flood drained: {} µs",
            resolve_at.micros()
        );
    }

    #[test]
    fn step_cap_reports_exceeded_instead_of_silently_settling() {
        let mut w = world();
        w.max_steps = 1;
        let started = w.net.now();
        let (_, out) = w
            .client
            .begin_upload(b"k", b"d".to_vec(), started, TimeoutStrategy::AbortFirst)
            .unwrap();
        w.send_from_client(out);
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::StepCapExceeded);
        // Resuming with a sane cap finishes the run.
        w.max_steps = 10_000;
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
    }

    #[test]
    fn timer_delivery_tie_is_deterministic_timer_first() {
        // Arrange an exact tie: the receipt arrives at the very instant the
        // client's response deadline expires (response_timeout == one RTT).
        // The documented rule is timer-first — a reply landing exactly at
        // the deadline is late — so the abort goes out even though the
        // receipt was deliverable at the same timestamp, and the run is
        // reproducible event-for-event.
        let run = || {
            let mut cfg = ProtocolConfig::full();
            cfg.response_timeout = SimDuration::from_millis(50); // == RTT
            let mut w = World::new(9, cfg);
            let r = w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
            let kinds: Vec<String> =
                w.obs.events().iter().filter_map(|e| e.msg_kind().map(str::to_string)).collect();
            (r.outcome, kinds)
        };
        let (state1, kinds1) = run();
        let (state2, kinds2) = run();
        assert_eq!(kinds1, kinds2, "tie-break must be deterministic");
        assert_eq!(state1, state2);
        assert!(
            kinds1.iter().any(|k| k == "Abort"),
            "timer fired before the same-instant receipt delivery: {kinds1:?}"
        );
    }

    #[test]
    fn event_stream_records_deliveries_and_states() {
        let mut w = world();
        let r = w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
        let deliveries: Vec<&Event> = w
            .obs
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Delivered { .. }))
            .collect();
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].msg_kind(), Some("Transfer"));
        assert_eq!(deliveries[0].actor, "bob");
        assert_eq!(deliveries[0].txn, Some(r.txn_id));
        assert_eq!(deliveries[1].msg_kind(), Some("Receipt"));
        assert_eq!(deliveries[1].actor, "alice");
        assert_eq!(w.obs.metrics.delivered, 2);
        assert_eq!(w.obs.metrics.rejected + w.obs.metrics.garbled, 0);
        // Pending → Completed, visible as state transitions, with the
        // settlement latency sampled once.
        let states: Vec<_> = w
            .obs
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StateTransition { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            states,
            vec![(None, TxnState::Pending), (Some(TxnState::Pending), TxnState::Completed)]
        );
        assert_eq!(w.obs.metrics.latency_us.count(), 1);
        assert_eq!(w.obs.metrics.latency_us.max(), Some(r.report.latency.micros()));
        assert_eq!(w.obs.txn(r.txn_id).inbox_total(), 2);
    }

    #[test]
    fn latency_scales_with_rtt() {
        let mut lat = Vec::new();
        for rtt_ms in [10u64, 100] {
            let mut w = world();
            w.set_all_links(LinkConfig::ideal(SimDuration::from_millis(rtt_ms / 2)));
            let r = w.upload(b"k", b"d".to_vec(), TimeoutStrategy::AbortFirst);
            lat.push(r.report.latency.micros());
        }
        assert_eq!(lat[0], 10_000);
        assert_eq!(lat[1], 100_000);
    }

    #[test]
    fn report_latency_is_txn_scoped_not_clock_scoped() {
        // Regression for the latency misreport: `report` used to measure to
        // `net.now()`, so any background traffic inflated every number.
        // Flood the wire with undecodable chatter whose jitter spreads it
        // over ~2 minutes, then run a clean upload on a healed link: the
        // upload's latency must reflect its own two deliveries, not the
        // flood's tail.
        let mut w = world();
        let (a, b) = (w.alice_node, w.bob_node);
        w.net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::from_secs(120),
                ..Default::default()
            },
        );
        for _ in 0..200 {
            w.net.send(a, b, b"background noise".to_vec());
        }
        w.net.set_link(a, b, LinkConfig::default());
        let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        assert_eq!(r.outcome, TxnState::Completed);
        assert!(
            w.net.now().micros() > 60_000_000,
            "the flood should have kept the clock running: {}",
            w.net.now().micros()
        );
        assert!(
            r.report.latency.micros() <= 1_000_000,
            "latency must be txn-scoped, got {} µs",
            r.report.latency.micros()
        );
        // Satellite check: the garbled chatter is visible and attributed to
        // no transaction (it used to claim `txn_id: 0`).
        assert_eq!(w.obs.metrics.garbled, 200);
        assert!(w
            .obs
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Garbled { .. }))
            .all(|e| e.txn.is_none()));
    }

    #[test]
    fn ring_buffer_bounds_event_memory_under_flood() {
        let mut w = world();
        w.obs.set_capacity(64);
        let (a, b) = (w.alice_node, w.bob_node);
        for _ in 0..500 {
            w.net.send(a, b, b"junk".to_vec());
        }
        w.settle();
        assert_eq!(w.obs.events().len(), 64, "ring never exceeds its capacity");
        assert_eq!(w.obs.evicted(), 500 - 64);
        assert_eq!(w.obs.metrics.garbled, 500, "counters stay exact under eviction");
    }
}
