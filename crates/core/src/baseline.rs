//! Baseline: a traditional four-step fair non-repudiation protocol.
//!
//! The paper's efficiency claim is comparative: "in the Normal and Abort
//! models, it takes Alice and Bob merely two steps without TTP … the same
//! operation takes four steps in the traditional non-repudiation protocol."
//! This module implements that comparator in the Zhou–Gollmann style the
//! paper's reference [13] surveys:
//!
//! 1. A → B : `c = Enc_K(data)`, NRO = Sign_A(B ‖ L ‖ H(c))
//! 2. B → A : NRR = Sign_B(A ‖ L ‖ H(c))
//! 3. A → TTP : sub_K = Sign_A(B ‖ L ‖ K)  (submit the key)
//! 4. TTP → A, TTP → B : con_K = Sign_TTP(A ‖ B ‖ L ‖ K)
//!
//! The TTP is **in-line for every transaction** (it publishes the key), so
//! TTP load is 100% of sessions — the contrast measured in experiment E6 —
//! and settlement needs two extra one-way latencies beyond TPNR's two.

use crate::principal::{Principal, PrincipalId};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::{chacha20, ChaChaRng, CryptoError};
use tpnr_net::sim::{LinkConfig, SimNet};
use tpnr_net::time::SimDuration;

/// Evidence bundle both parties hold after a successful baseline run.
#[derive(Debug, Clone)]
pub struct BaselineEvidence {
    /// Alice's NRO over the ciphertext (held by Bob).
    pub nro: Vec<u8>,
    /// Bob's NRR over the ciphertext (held by Alice).
    pub nrr: Vec<u8>,
    /// Alice's signed key submission (held by the TTP).
    pub sub_k: Vec<u8>,
    /// The TTP's key confirmation (held by both).
    pub con_k: Vec<u8>,
}

/// Outcome of one baseline exchange.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Messages placed on the wire.
    pub messages: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Simulated wall time from first send to last delivery.
    pub latency: SimDuration,
    /// Always true here: the TTP participates in every baseline session.
    pub ttp_used: bool,
    /// Evidence both parties archived.
    pub evidence: BaselineEvidence,
    /// The data as recovered by Bob (must equal the input).
    pub recovered: Vec<u8>,
}

fn label_bytes(a: &PrincipalId, b: &PrincipalId, label: u64, tail: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(72 + tail.len());
    v.extend_from_slice(&a.0);
    v.extend_from_slice(&b.0);
    v.extend_from_slice(&label.to_be_bytes());
    v.extend_from_slice(tail);
    v
}

/// Runs one complete traditional-NR exchange of `data` from Alice to Bob
/// over a fresh simulated network with the given per-link latency.
///
/// All four steps execute with real cryptography (ChaCha20 bulk encryption,
/// RSA signatures over SHA-256) so latency and byte counts are comparable
/// with the TPNR runner.
pub fn run_exchange(
    seed: u64,
    data: &[u8],
    latency: SimDuration,
) -> Result<BaselineReport, CryptoError> {
    let alice = Principal::test("alice", seed.wrapping_mul(7).wrapping_add(11));
    let bob = Principal::test("bob", seed.wrapping_mul(7).wrapping_add(12));
    let ttp = Principal::test("ttp", seed.wrapping_mul(7).wrapping_add(13));
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0xba5e);

    let mut net = SimNet::new(seed);
    let a = net.register("alice");
    let b = net.register("bob");
    let t = net.register("ttp");
    net.set_default_link(LinkConfig::ideal(latency));

    let label: u64 = rng.next_u64(); // the protocol run label L

    // Step 1: A → B with c = Enc_K(data) and NRO.
    let mut key = [0u8; 32];
    rng.fill_bytes(&mut key);
    let nonce = [0u8; 12];
    let ciphertext = chacha20::encrypt(&key, &nonce, data);
    let c_hash = HashAlg::Sha256.hash(&ciphertext);
    let nro = alice
        .keys
        .private
        .sign(HashAlg::Sha256, &label_bytes(&alice.id(), &bob.id(), label, &c_hash))?;
    let mut msg1 = ciphertext.clone();
    msg1.extend_from_slice(&nro);
    net.send(a, b, msg1);
    net.run_until_quiet();
    let _ = net.recv(b);

    // Bob verifies the NRO before answering.
    alice.public().verify(
        HashAlg::Sha256,
        &label_bytes(&alice.id(), &bob.id(), label, &c_hash),
        &nro,
    )?;

    // Step 2: B → A with NRR.
    let nrr = bob
        .keys
        .private
        .sign(HashAlg::Sha256, &label_bytes(&bob.id(), &alice.id(), label, &c_hash))?;
    net.send(b, a, nrr.clone());
    net.run_until_quiet();
    let _ = net.recv(a);
    bob.public().verify(
        HashAlg::Sha256,
        &label_bytes(&bob.id(), &alice.id(), label, &c_hash),
        &nrr,
    )?;

    // Step 3: A → TTP submits the key.
    let sub_k = alice
        .keys
        .private
        .sign(HashAlg::Sha256, &label_bytes(&alice.id(), &bob.id(), label, &key))?;
    let mut msg3 = key.to_vec();
    msg3.extend_from_slice(&sub_k);
    net.send(a, t, msg3);
    net.run_until_quiet();
    let _ = net.recv(t);
    alice.public().verify(
        HashAlg::Sha256,
        &label_bytes(&alice.id(), &bob.id(), label, &key),
        &sub_k,
    )?;

    // Step 4: TTP publishes con_K to both parties.
    let con_k = ttp
        .keys
        .private
        .sign(HashAlg::Sha256, &label_bytes(&alice.id(), &bob.id(), label, &key))?;
    let mut msg4 = key.to_vec();
    msg4.extend_from_slice(&con_k);
    net.send(t, a, msg4.clone());
    net.send(t, b, msg4);
    net.run_until_quiet();
    let _ = net.recv(a);
    let _ = net.recv(b);
    ttp.public().verify(
        HashAlg::Sha256,
        &label_bytes(&alice.id(), &bob.id(), label, &key),
        &con_k,
    )?;

    // Bob decrypts with the confirmed key.
    let recovered = chacha20::decrypt(&key, &nonce, &ciphertext);

    Ok(BaselineReport {
        messages: net.stats.sent,
        bytes: net.stats.bytes_sent,
        latency: net.now().since(tpnr_net::time::SimTime::ZERO),
        ttp_used: true,
        evidence: BaselineEvidence { nro, nrr, sub_k, con_k },
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_completes_and_recovers_data() {
        let r = run_exchange(1, b"bulk backup data", SimDuration::from_millis(10)).unwrap();
        assert_eq!(r.recovered, b"bulk backup data");
        assert!(r.ttp_used);
    }

    #[test]
    fn baseline_needs_five_wire_messages_four_steps() {
        // Steps 1–3 are one message each; step 4 fans out to both parties.
        let r = run_exchange(2, b"x", SimDuration::from_millis(10)).unwrap();
        assert_eq!(r.messages, 5);
    }

    #[test]
    fn baseline_latency_is_four_sequential_legs() {
        // 4 sequential one-way legs at 10 ms = 40 ms (step 4's two sends are
        // parallel), versus TPNR's 2 legs = 20 ms.
        let r = run_exchange(3, b"x", SimDuration::from_millis(10)).unwrap();
        assert_eq!(r.latency.micros(), 40_000);
    }

    #[test]
    fn evidence_chain_is_verifiable() {
        let r = run_exchange(4, b"data", SimDuration::from_millis(1)).unwrap();
        assert!(!r.evidence.nro.is_empty());
        assert!(!r.evidence.nrr.is_empty());
        assert!(!r.evidence.sub_k.is_empty());
        assert!(!r.evidence.con_k.is_empty());
    }

    #[test]
    fn latency_scales_with_link() {
        let fast = run_exchange(5, b"x", SimDuration::from_millis(5)).unwrap();
        let slow = run_exchange(5, b"x", SimDuration::from_millis(50)).unwrap();
        assert_eq!(slow.latency.micros(), fast.latency.micros() * 10);
    }
}
