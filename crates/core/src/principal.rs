//! Principals (Alice, Bob, TTP, Arbitrator) and the public-key directory.
//!
//! Paper §5.1: "when the party gets the other's public key, they should
//! authenticate the validity to avoid the MITM." The [`Directory`] models
//! that authenticated key distribution; the `authenticate_keys = false`
//! ablation (see [`crate::config`]) replaces it with
//! trust-whatever-arrives-on-the-wire, which is what the MITM attack
//! experiment exploits.

use tpnr_crypto::{ChaChaRng, RsaKeyPair, RsaPublicKey};

/// Stable identifier of a principal: the fingerprint of its public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub [u8; 32]);

impl PrincipalId {
    /// Hex rendering for logs.
    pub fn short_hex(&self) -> String {
        tpnr_crypto::encoding::hex_encode(&self.0[..6])
    }
}

/// A named party with a key pair.
#[derive(Debug, Clone)]
pub struct Principal {
    /// Human-readable name ("alice", "cloud-provider", …).
    pub name: String,
    /// The key pair.
    pub keys: RsaKeyPair,
}

impl Principal {
    /// Creates a principal with a freshly generated key pair.
    pub fn generate(name: &str, bits: usize, rng: &mut ChaChaRng) -> Self {
        Principal { name: name.to_string(), keys: RsaKeyPair::generate(bits, rng) }
    }

    /// Creates a principal with a deterministic test key (fast; 512-bit).
    pub fn test(name: &str, seed: u64) -> Self {
        Principal { name: name.to_string(), keys: RsaKeyPair::insecure_test_key(seed) }
    }

    /// The principal's identifier.
    pub fn id(&self) -> PrincipalId {
        PrincipalId(self.keys.public.fingerprint())
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.keys.public
    }
}

/// An authenticated public-key directory (out-of-band certified, the paper's
/// assumption for the healthy protocol).
#[derive(Default, Clone)]
pub struct Directory {
    entries: std::collections::HashMap<PrincipalId, RsaPublicKey>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a principal's public key under its fingerprint id.
    pub fn register(&mut self, p: &Principal) {
        self.entries.insert(p.id(), p.public().clone());
    }

    /// Registers a raw public key (used by attack harnesses to poison an
    /// unauthenticated directory).
    pub fn register_raw(&mut self, id: PrincipalId, pk: RsaPublicKey) {
        self.entries.insert(id, pk);
    }

    /// Looks up an authenticated key.
    pub fn lookup(&self, id: &PrincipalId) -> Option<&RsaPublicKey> {
        self.entries.get(id)
    }

    /// Checks that a key claimed on the wire matches the directory: this is
    /// the key-authentication step of §5.1.
    pub fn authenticate(&self, id: &PrincipalId, claimed: &RsaPublicKey) -> bool {
        self.lookup(id).is_some_and(|pk| pk == claimed && PrincipalId(claimed.fingerprint()) == *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_key_fingerprint() {
        let p = Principal::test("alice", 1);
        assert_eq!(p.id().0, p.public().fingerprint());
        assert_eq!(p.id().short_hex().len(), 12);
    }

    #[test]
    fn distinct_principals_distinct_ids() {
        let a = Principal::test("alice", 1);
        let b = Principal::test("bob", 2);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn directory_lookup_and_authenticate() {
        let a = Principal::test("alice", 1);
        let b = Principal::test("bob", 2);
        let mut dir = Directory::new();
        dir.register(&a);
        assert!(dir.lookup(&a.id()).is_some());
        assert!(dir.lookup(&b.id()).is_none());
        assert!(dir.authenticate(&a.id(), a.public()));
        assert!(!dir.authenticate(&a.id(), b.public()), "key substitution caught");
        assert!(!dir.authenticate(&b.id(), b.public()), "unregistered key rejected");
    }

    #[test]
    fn poisoned_directory_models_missing_authentication() {
        // An attacker who can write the directory binds their key to Alice's
        // id — authenticate() then fails because the fingerprint disagrees.
        let a = Principal::test("alice", 1);
        let mallory = Principal::test("mallory", 666);
        let mut dir = Directory::new();
        dir.register_raw(a.id(), mallory.public().clone());
        assert!(
            !dir.authenticate(&a.id(), mallory.public()),
            "fingerprint binding still catches the swap"
        );
    }
}
