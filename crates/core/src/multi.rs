//! Multi-client deployments: one provider, one TTP, many clients.
//!
//! The paper's Figure 1 shows a provider serving a population of users.
//! [`MultiWorld`] scales the single-pair runner up to N clients with
//! interleaved transactions, which exercises properties the two-party runs
//! cannot: per-(transaction, sender) replay windows under concurrency,
//! cross-client isolation of objects and evidence, and aggregate TTP load.

use crate::archive::{ArchiveStats, ArchivedTxn, EvidenceBundle, TxnArchive};
use crate::client::{Client, TimeoutStrategy};
use crate::config::ProtocolConfig;
use crate::evidence::VerifiedEvidence;
use crate::fault::{DeliveryVerdict, Durable, FaultCtl, FaultStats, SyncDecision};
use crate::message::Message;
use crate::obs::{Event, EventKind, Obs};
use crate::principal::{Directory, Principal, PrincipalId};
use crate::provider::Provider;
use crate::runner::{TxnReport, TxnResult};
use crate::sched::{self, Actor, EventHub, SettleReport, TimerWheel};
use crate::session::{Outgoing, TxnState, ValidationError};
use crate::ttp::Ttp;
use std::collections::{BTreeMap, BTreeSet};
use tpnr_crypto::ChaChaRng;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{Envelope, LinkConfig, NodeId, SimNet};
use tpnr_net::time::SimTime;
use tpnr_net::transport::Transport;

/// A typed handle to a transaction started on a [`MultiWorld`]: which
/// client owns it and its id. Replaces the bare `u64` returns of
/// `start_upload` / `start_download`, so accessors no longer take
/// easy-to-swap `(usize, u64)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnHandle {
    /// Index of the owning client in `MultiWorld::clients`.
    pub client: usize,
    /// Transaction id (0 is the failed-initiation sentinel; real ids start
    /// at 1).
    pub txn_id: u64,
}

impl TxnHandle {
    /// False for the failed-initiation sentinel.
    pub fn is_real(&self) -> bool {
        self.txn_id != 0
    }
}

/// Per-transaction bookkeeping: owner, start time, and whether the first
/// terminal transition has been funnelled through the archive's settled
/// queue yet.
#[derive(Debug, Clone, Copy)]
struct TxnMeta {
    client: usize,
    started: SimTime,
    settled: bool,
}

/// Last synced durable images of every actor (the crash recovery points).
/// Allocated only when the fault plan can actually inject.
struct MultiSnapshots {
    clients: Vec<crate::client::ClientSnapshot>,
    provider: crate::provider::ProviderSnapshot,
    ttp: crate::ttp::TtpSnapshot,
}

/// N clients sharing one provider and one TTP over a [`Transport`].
///
/// `T` defaults to the deterministic simulator; [`MultiWorld`] is the
/// `GenericMultiWorld<SimNet>` alias almost all code uses.
pub struct GenericMultiWorld<T: Transport = SimNet> {
    /// The wire. Private since the transport redesign: use the typed
    /// accessors [`GenericMultiWorld::net`] /
    /// [`GenericMultiWorld::net_mut`].
    net: T,
    /// The clients.
    pub clients: Vec<Client>,
    /// The shared provider.
    pub provider: Provider,
    /// The shared TTP.
    pub ttp: Ttp,
    /// The clients' simulator nodes (index-aligned with `clients`).
    pub client_nodes: Vec<NodeId>,
    /// The provider's simulator node.
    pub bob_node: NodeId,
    /// The TTP's simulator node.
    pub ttp_node: NodeId,
    // Ordered maps: the lint's DET-ORDER rule covers this module, and
    // iteration over these (dispatch fan-out, diagnostics) must be
    // deterministic regardless of hash seeding.
    node_of: BTreeMap<PrincipalId, NodeId>,
    principal_of: BTreeMap<NodeId, PrincipalId>,
    /// The shared observability sink — same type and semantics as
    /// [`World`](crate::runner::World)'s: every delivery, rejection,
    /// garbled arrival, drop, duplication, timer fire and state transition
    /// in this world is visible here.
    pub obs: Obs,
    /// Safety valve against livelock; when hit, settle reports
    /// [`sched::SettleOutcome::StepCapExceeded`].
    pub max_steps: usize,
    /// Owner/start/settled per started transaction (evicted entries move to
    /// `archive`).
    txn_meta: BTreeMap<u64, TxnMeta>,
    /// Transactions the TTP has seen a message for.
    ttp_touched: BTreeSet<u64>,
    /// The fault injector executing `cfg.faults` (inert and overhead-free
    /// for the default plan).
    faults: FaultCtl,
    /// Last synced snapshots; `None` when the fault plan is inert.
    snaps: Option<Box<MultiSnapshots>>,
    /// Scheduler-owned deadline index: actors register/cancel deadlines
    /// here instead of being polled each step (keys: client `i` → `i`,
    /// bob → `n`, ttp → `n + 1`, fault wakeup → `n + 2`).
    wheel: TimerWheel,
    /// Bounded-memory store for settled transactions (sharded by txn-id
    /// hash; oldest settled txns evicted to sealed evidence logs).
    archive: TxnArchive,
}

/// The classic deterministic multi-client world: [`GenericMultiWorld`]
/// over [`SimNet`].
pub type MultiWorld = GenericMultiWorld<SimNet>;

impl MultiWorld {
    /// Builds a world with `n_clients` clients (fresh deterministic keys).
    pub fn new(seed: u64, cfg: ProtocolConfig, n_clients: usize) -> Self {
        assert!(n_clients > 0);
        let bob = Principal::test("bob", seed.wrapping_mul(11).wrapping_add(1));
        let ttp_p = Principal::test("ttp", seed.wrapping_mul(11).wrapping_add(2));
        let client_principals: Vec<Principal> = (0..n_clients)
            .map(|i| Principal::test(&format!("client-{i}"), seed.wrapping_mul(11) + 10 + i as u64))
            .collect();
        Self::with_principals(seed, cfg, &client_principals, &bob, &ttp_p)
    }

    /// Builds a world from pre-generated principals. Key generation is the
    /// scale wall at E10 client counts, so sharded runners generate one
    /// fixed pool of keys and reuse it across lanes instead of paying a
    /// fresh RSA keypair per simulated client. Each client gets a minimal
    /// directory ({self, provider, TTP} — all it ever verifies); the
    /// provider and TTP hold the full population directory.
    pub fn with_principals(
        seed: u64,
        cfg: ProtocolConfig,
        client_principals: &[Principal],
        bob: &Principal,
        ttp_p: &Principal,
    ) -> Self {
        Self::with_principals_on(SimNet::new(seed), seed, cfg, client_principals, bob, ttp_p)
    }

    /// Sets one link config everywhere.
    pub fn set_all_links(&mut self, cfg: LinkConfig) {
        self.net.set_default_link(cfg);
    }

    /// Overrides the bidirectional client ⇄ provider link for client
    /// `idx`. E10 gives every client a distinct deterministic latency
    /// through this, so settle-latency percentiles measure a real
    /// distribution instead of the constant default-link round trip.
    pub fn set_client_provider_link(&mut self, idx: usize, cfg: LinkConfig) {
        self.net.set_link_bidi(self.client_nodes[idx], self.bob_node, cfg);
    }
}

impl<T: Transport> GenericMultiWorld<T> {
    /// Builds a world from pre-generated principals over an arbitrary
    /// [`Transport`] backend ([`MultiWorld::with_principals`] is the
    /// simulator shorthand). `seed` derives each actor's RNG exactly as on
    /// the simulator, so backends host byte-identical actor populations.
    pub fn with_principals_on(
        mut net: T,
        seed: u64,
        cfg: ProtocolConfig,
        client_principals: &[Principal],
        bob: &Principal,
        ttp_p: &Principal,
    ) -> Self {
        assert!(!client_principals.is_empty());
        let mut dir = Directory::new();
        dir.register(bob);
        dir.register(ttp_p);
        for c in client_principals {
            dir.register(c);
        }

        let client_nodes: Vec<NodeId> =
            client_principals.iter().map(|c| net.register(&c.name)).collect();
        let bob_node = net.register(&bob.name);
        let ttp_node = net.register(&ttp_p.name);

        let clients: Vec<Client> = client_principals
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut cdir = Directory::new();
                cdir.register(bob);
                cdir.register(ttp_p);
                cdir.register(p);
                Client::new(
                    p.clone(),
                    cfg.clone(),
                    cdir,
                    ttp_p.id(),
                    bob.id(),
                    ChaChaRng::seed_from_u64(seed ^ (0xc11e47 + i as u64)),
                )
            })
            .collect();
        let provider = Provider::new(
            bob.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xb0b),
        );
        let faults = FaultCtl::new(&cfg.faults);
        let ttp = Ttp::new(ttp_p.clone(), cfg, dir, ChaChaRng::seed_from_u64(seed ^ 0x777));
        // Epoch-zero recovery points: a crash before the first sync
        // restores to the freshly-built actor.
        let snaps = faults.active().then(|| {
            Box::new(MultiSnapshots {
                clients: clients.iter().map(Durable::snapshot).collect(),
                provider: provider.snapshot(),
                ttp: ttp.snapshot(),
            })
        });

        let mut node_of = BTreeMap::new();
        node_of.insert(bob.id(), bob_node);
        node_of.insert(ttp_p.id(), ttp_node);
        for (p, n) in client_principals.iter().zip(&client_nodes) {
            node_of.insert(p.id(), *n);
        }
        let principal_of = node_of.iter().map(|(p, n)| (*n, *p)).collect();

        GenericMultiWorld {
            net,
            clients,
            provider,
            ttp,
            client_nodes,
            bob_node,
            ttp_node,
            node_of,
            principal_of,
            obs: Obs::new(),
            max_steps: 100_000,
            txn_meta: BTreeMap::new(),
            ttp_touched: BTreeSet::new(),
            faults,
            snaps,
            wheel: TimerWheel::new(),
            archive: TxnArchive::new(),
        }
    }

    /// Borrows the transport backend (typed, so the backend's inherent
    /// API — link knobs, [`SimNet::stats`] — stays reachable).
    pub fn net(&self) -> &T {
        &self.net
    }

    /// Mutably borrows the transport backend (links, interceptors,
    /// manual sends in attack and test harnesses).
    pub fn net_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// Wheel key for an actor's node. Clients register with the simulator
    /// first, so `NodeId(i)` *is* client `i`; bob and the TTP follow.
    fn wheel_key(&self, node: NodeId) -> usize {
        node.0 as usize
    }

    /// Wheel key for the fault injector's next wakeup (restart instants and
    /// outage boundaries are timers like any other).
    fn fault_wheel_key(&self) -> usize {
        self.ttp_node.0 as usize + 1
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.actor_nodes().into_iter().find(|&n| self.net.node_name(n) == Some(name))
    }

    /// Re-registers one actor's earliest deadline with the wheel (a down
    /// actor's timers are frozen, so its entry is cancelled instead).
    fn refresh_wheel(&mut self, node: NodeId) {
        let down =
            self.faults.active() && self.faults.is_down(self.net.node_name(node).unwrap_or("?"));
        let d = if down { None } else { self.actor(node).and_then(|a| a.next_deadline()) };
        self.wheel.set(self.wheel_key(node), d);
    }

    fn refresh_fault_wheel(&mut self) {
        let w = self.faults.next_wakeup();
        self.wheel.set(self.fault_wheel_key(), w);
    }

    /// Full wheel resync from actor state. Run at every settle entry so
    /// deadlines armed or mutated outside the event loop (API calls, test
    /// and attack harnesses poking actors directly) are picked up.
    fn resync_wheel(&mut self) {
        for node in self.actor_nodes() {
            self.refresh_wheel(node);
        }
        self.refresh_fault_wheel();
    }

    fn dispatch(&mut self, from_node: NodeId, out: Vec<Outgoing>) {
        for o in out {
            if let Some(&dst) = self.node_of.get(&o.to) {
                let txn = o.msg.txn_id();
                // First wire activity marks the transaction's start
                // (idempotent), mirroring `World`.
                self.obs.note_txn_started(txn, self.net.now());
                // Encode once into a shared buffer; the simulator clones
                // only the handle from here on (queue, duplicates, inbox).
                self.net.send_tagged(from_node, dst, o.msg.to_wire_bytes(), Some(txn));
            }
        }
    }

    /// Starts an upload from client `idx` without settling (so many
    /// transactions can be in flight together). Returns a typed handle; a
    /// failed initiation yields the sentinel handle (`txn_id` 0, never a
    /// real id) and a recorded rejection in [`Obs`], never a panic.
    pub fn start_upload(
        &mut self,
        idx: usize,
        key: &[u8],
        data: impl Into<tpnr_net::Bytes>,
        strategy: TimeoutStrategy,
    ) -> TxnHandle {
        let now = self.net.now();
        let (txn, out) = match self.clients[idx].begin_upload(key, data, now, strategy) {
            Ok(v) => v,
            Err(e) => return self.failed_initiation(idx, now, e),
        };
        self.txn_meta.insert(txn, TxnMeta { client: idx, started: now, settled: false });
        self.obs.note_state(
            now,
            self.net.node_name(self.client_nodes[idx]).unwrap_or("?"),
            txn,
            TxnState::Pending,
        );
        // Write-ahead: the NRO sealed at initiation must survive a crash.
        self.sync_actor(self.client_nodes[idx], now, true);
        self.dispatch(self.client_nodes[idx], out);
        TxnHandle { client: idx, txn_id: txn }
    }

    /// Starts a download from client `idx` without settling. Initiation
    /// failures degrade exactly as in [`MultiWorld::start_upload`].
    pub fn start_download(
        &mut self,
        idx: usize,
        key: &[u8],
        strategy: TimeoutStrategy,
    ) -> TxnHandle {
        let now = self.net.now();
        let (txn, out) = match self.clients[idx].begin_download(key, now, strategy) {
            Ok(v) => v,
            Err(e) => return self.failed_initiation(idx, now, e),
        };
        self.txn_meta.insert(txn, TxnMeta { client: idx, started: now, settled: false });
        self.obs.note_state(
            now,
            self.net.node_name(self.client_nodes[idx]).unwrap_or("?"),
            txn,
            TxnState::Pending,
        );
        self.sync_actor(self.client_nodes[idx], now, true);
        self.dispatch(self.client_nodes[idx], out);
        TxnHandle { client: idx, txn_id: txn }
    }

    /// Records a client-side initiation failure; returns the sentinel
    /// handle (`txn_id` 0).
    fn failed_initiation(&mut self, idx: usize, now: SimTime, error: ValidationError) -> TxnHandle {
        let name = self.net.node_name(self.client_nodes[idx]).unwrap_or("?").to_string();
        self.obs.record(Event {
            at: now,
            txn: None,
            actor: name.clone(),
            kind: EventKind::Rejected { from: name, msg: "Transfer".to_string(), error },
        });
        TxnHandle { client: idx, txn_id: 0 }
    }

    fn client_index(&self, node: NodeId) -> Option<usize> {
        self.client_nodes.iter().position(|&n| n == node)
    }

    fn actor_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.client_nodes.clone();
        nodes.push(self.bob_node);
        nodes.push(self.ttp_node);
        nodes
    }

    fn actor(&self, node: NodeId) -> Option<&dyn Actor> {
        if node == self.bob_node {
            Some(&self.provider)
        } else if node == self.ttp_node {
            Some(&self.ttp)
        } else {
            self.client_index(node).map(|i| &self.clients[i] as &dyn Actor)
        }
    }

    fn actor_mut(&mut self, node: NodeId) -> Option<&mut dyn Actor> {
        if node == self.bob_node {
            Some(&mut self.provider)
        } else if node == self.ttp_node {
            Some(&mut self.ttp)
        } else {
            self.client_index(node).map(move |i| &mut self.clients[i] as &mut dyn Actor)
        }
    }

    /// Delivers traffic and drives timeouts on the shared scheduler
    /// ([`sched::settle`]) until every timer and delivery is drained or
    /// `max_steps` is hit — check `outcome` on the returned report.
    pub fn settle(&mut self) -> SettleReport {
        self.resync_wheel();
        let max_steps = self.max_steps;
        let report = sched::settle(self, max_steps);
        // Mirror the cumulative fault counters into the metrics registry.
        let f = report.faults;
        self.obs.metrics.crashes = f.crashes;
        self.obs.metrics.restarts = f.restarts;
        self.obs.metrics.retries = f.retries;
        self.obs.metrics.snapshot_bytes = f.snapshot_bytes;
        report
    }

    /// Final state of a client's transaction (live or archived).
    pub fn state(&self, client: usize, txn: u64) -> Option<TxnState> {
        self.clients[client]
            .txn_state(txn)
            .or_else(|| self.archive.get(txn).filter(|r| r.client == client).map(|r| r.state))
    }

    /// Final state of a handled transaction (live or archived).
    pub fn state_of(&self, h: TxnHandle) -> Option<TxnState> {
        self.clients.get(h.client)?;
        self.state(h.client, h.txn_id)
    }

    /// Typed result for a handled transaction: outcome, payload, both
    /// evidence pieces and the wire-level report — `None` for the sentinel
    /// handle or unknown ids. Mirrors [`World::run`](crate::runner::World)'s
    /// return shape.
    pub fn result(&self, h: TxnHandle) -> Option<TxnResult> {
        let report = self.report(h.txn_id)?;
        let c = self.clients.get(h.client)?;
        if let Some(t) = c.txn(h.txn_id) {
            return Some(TxnResult {
                txn_id: h.txn_id,
                outcome: report.state,
                data: c.download_result(h.txn_id).map(|p| p.data.clone()),
                nro: Some(t.nro.clone()),
                nrr: t.nrr.clone(),
                report,
            });
        }
        // Evicted: re-hydrate the sealed evidence from the archive log (the
        // downloaded payload is gone — the provider's storage holds the
        // service copy, evidence is what survives for arbitration).
        let bundle = self.archive.load_bundle(h.txn_id)?;
        Some(TxnResult {
            txn_id: h.txn_id,
            outcome: report.state,
            data: None,
            nro: bundle.get("client-nro").cloned(),
            nrr: bundle.get("client-nrr").cloned(),
            report,
        })
    }

    /// Archive behaviour counters (evictions, re-hydrations, resident
    /// settled txns, sealed log bytes).
    pub fn archive_stats(&self) -> ArchiveStats {
        self.archive.stats()
    }

    /// Live per-transaction bookkeeping entries (the bounded-memory
    /// regression hook: settled txns leave this map when evicted).
    pub fn resident_txns(&self) -> usize {
        self.txn_meta.len()
    }

    /// Re-hydrates an evicted transaction's archived evidence bundle.
    pub fn rehydrate_evidence(&self, txn: u64) -> Option<EvidenceBundle> {
        self.archive.load_bundle(txn)
    }

    /// Sets the archive's per-shard hot capacity (tests lower it to force
    /// eviction; experiments tune resident memory).
    pub fn set_archive_capacity(&mut self, hot_capacity: usize) {
        self.archive.set_hot_capacity(hot_capacity);
    }

    /// Cumulative fault counters: the injector's own plus every client's
    /// retry machinery (which lives outside snapshots so it never resets).
    pub fn fault_counters(&self) -> FaultStats {
        let mut f = self.faults.stats;
        for c in &self.clients {
            f.retries += c.retry_stats.retries;
            f.gave_up += c.retry_stats.gave_up;
        }
        f
    }

    /// Marks the actor at `node` crashed and records the event.
    fn crash_actor(&mut self, node: NodeId, now: SimTime) {
        let name = self.net.node_name(node).unwrap_or("?").to_string();
        self.faults.crash(&name, now);
        // The outage is a transport fact: queued copies addressed to the
        // node drop (and are counted) at their delivery instant.
        self.net.set_node_down(node, true);
        // Freeze the crashed actor's armed deadline: its wheel entry dies
        // with it and is re-registered from the restored snapshot. The
        // restart instant itself becomes a wheel entry.
        self.wheel.cancel(self.wheel_key(node));
        self.refresh_fault_wheel();
        self.obs.record(Event { at: now, txn: None, actor: name, kind: EventKind::Crashed });
    }

    /// Records a client-side state transition and, on the first terminal
    /// transition, funnels the txn through the archive's settled queue —
    /// possibly evicting the shard's oldest settled txn to the sealed log.
    fn note_txn_state(&mut self, now: SimTime, idx: usize, txn: u64, st: TxnState) {
        self.obs.note_state(
            now,
            self.net.node_name(self.client_nodes[idx]).unwrap_or("?"),
            txn,
            st,
        );
        let newly_settled = st.is_terminal()
            && match self.txn_meta.get_mut(&txn) {
                Some(meta) if !meta.settled => {
                    meta.settled = true;
                    true
                }
                _ => false,
            };
        if newly_settled {
            if let Some(victim) = self.archive.note_settled(txn) {
                self.evict_txn(victim);
            }
        }
    }

    /// Evicts a settled transaction: every layer's live per-txn state
    /// (client record, provider session record, TTP pending entry, all
    /// validator replay windows, obs tallies, tagged net counters,
    /// `txn_meta`) is dropped; the evidence is sealed into the archive's
    /// shard log and a compact index record keeps `report`/`state`/`result`
    /// answerable. Validators keep a tombstone, so late replays for the
    /// txn are refused instead of being handed a fresh window.
    fn evict_txn(&mut self, txn: u64) {
        let Some(meta) = self.txn_meta.remove(&txn) else { return };
        let idx = meta.client;
        let state = self.clients[idx].txn_state(txn).unwrap_or(TxnState::Failed);
        let client_rec = self.clients[idx].evict_txn(txn);
        let provider_rec = self.provider.evict_txn(txn);
        self.ttp.evict_txn(txn);
        let net = self.net.retire_txn(txn);
        self.obs.retire_txn(txn);
        let ttp_used = self.ttp_touched.remove(&txn);
        let mut bundle = EvidenceBundle::new();
        if let Some(c) = &client_rec {
            bundle.push("client-nro", c.nro.clone());
            if let Some(nrr) = &c.nrr {
                bundle.push("client-nrr", nrr.clone());
            }
        }
        if let Some(p) = &provider_rec {
            bundle.push("provider-nro", p.nro.clone());
            bundle.push(
                "provider-nrr",
                VerifiedEvidence::from_stored_parts(
                    p.nrr_plaintext.clone(),
                    p.nrr_sigs.0.clone(),
                    p.nrr_sigs.1.clone(),
                ),
            );
        }
        let rec = ArchivedTxn::record(
            idx,
            meta.started,
            state,
            net.delivered,
            net.bytes_sent,
            net.last_delivered_at.since(meta.started),
            ttp_used,
        );
        self.archive.archive(txn, &bundle, rec);
    }

    /// Restores a restarted actor (by display name) from its last synced
    /// snapshot.
    fn restore_actor(&mut self, name: &str, now: SimTime) {
        let Some(snaps) = self.snaps.take() else { return };
        let bytes = if name == "bob" {
            self.provider.restore(&snaps.provider);
            snaps.provider.bytes()
        } else if name == "ttp" {
            self.ttp.restore(&snaps.ttp);
            snaps.ttp.bytes()
        } else {
            match self.client_nodes.iter().position(|&n| self.net.node_name(n) == Some(name)) {
                Some(i) => {
                    self.clients[i].restore(&snaps.clients[i]);
                    snaps.clients[i].bytes()
                }
                None => {
                    self.snaps = Some(snaps);
                    return;
                }
            }
        };
        self.snaps = Some(snaps);
        self.obs.record(Event {
            at: now,
            txn: None,
            actor: name.to_string(),
            kind: EventKind::Restarted { snapshot_bytes: bytes },
        });
    }

    /// Durably syncs an actor's state if due (or forced — the write-ahead
    /// path taken before any produced message reaches the wire).
    fn sync_actor(&mut self, node: NodeId, now: SimTime, force: bool) {
        if self.snaps.is_none() {
            return;
        }
        let name = self.net.node_name(node).unwrap_or("?").to_string();
        match self.faults.sync_due(&name, now, force) {
            SyncDecision::Skip | SyncDecision::FailedWrite => {}
            SyncDecision::Persist => {
                let Some(snaps) = self.snaps.as_mut() else { return };
                let bytes = if node == self.bob_node {
                    let s = self.provider.snapshot();
                    let b = s.bytes();
                    snaps.provider = s;
                    b
                } else if node == self.ttp_node {
                    let s = self.ttp.snapshot();
                    let b = s.bytes();
                    snaps.ttp = s;
                    b
                } else {
                    let Some(i) = self.client_nodes.iter().position(|&n| n == node) else {
                        return;
                    };
                    let s = self.clients[i].snapshot();
                    let b = s.bytes();
                    snaps.clients[i] = s;
                    b
                };
                self.faults.note_snapshot(bytes);
            }
        }
    }

    /// Exact per-transaction report from the simulator's tagged traffic
    /// counters; `None` for unknown transaction ids. Latency runs from
    /// initiation to the transaction's own last delivery (other sessions
    /// may keep the shared clock running long after this one settled).
    pub fn report(&self, txn: u64) -> Option<TxnReport> {
        if let Some(meta) = self.txn_meta.get(&txn) {
            let t = self.net.txn_stats(txn);
            return Some(TxnReport {
                txn_id: txn,
                state: self.clients[meta.client].txn_state(txn)?,
                messages: t.delivered,
                bytes: t.bytes_sent,
                latency: t.last_delivered_at.since(meta.started),
                ttp_used: self.ttp_touched.contains(&txn),
            });
        }
        // Evicted: the index record froze the final accounting.
        let rec = self.archive.get(txn)?;
        Some(TxnReport {
            txn_id: txn,
            state: rec.state,
            messages: rec.messages,
            bytes: rec.bytes,
            latency: rec.latency,
            ttp_used: rec.ttp_used,
        })
    }
}

impl<T: Transport> EventHub for GenericMultiWorld<T> {
    fn transport(&mut self) -> &mut dyn Transport {
        &mut self.net
    }

    fn next_timer(&self) -> Option<SimTime> {
        // The wheel is the deadline index: actor deadlines and the fault
        // injector's wakeups (restarts, outage starts) are all entries, so
        // no actor is polled per step and downtime advances the clock
        // instead of stalling the loop. A crashed actor's entry is
        // cancelled with it, freezing its protocol timers until restart.
        self.wheel.peek()
    }

    fn fire_timers(&mut self, now: SimTime) -> usize {
        // Client indices whose transactions may have moved this round —
        // the state diff below is restricted to them instead of walking
        // every started txn in the world (the O(total-txns)-per-round scan
        // this wheel refactor retires).
        let mut touched: Vec<usize> = Vec::new();
        if self.faults.active() {
            // Restarts and outage boundaries first: a just-restored actor
            // ticks in this same round, so an overdue deadline revealed by
            // the restore produces output immediately (never barren).
            let ev = self.faults.poll("ttp", now);
            for name in ev.crashed {
                if let Some(node) = self.node_by_name(&name) {
                    self.net.set_node_down(node, true);
                    self.wheel.cancel(self.wheel_key(node));
                }
                self.obs.record(Event {
                    at: now,
                    txn: None,
                    actor: name,
                    kind: EventKind::Crashed,
                });
            }
            for name in ev.restarted {
                self.restore_actor(&name, now);
                // Re-arm from the restored state (the stale pre-crash entry
                // was cancelled at crash time and can never fire); a
                // restore can also revert transaction states, so the diff
                // must cover the restored client.
                if let Some(node) = self.node_by_name(&name) {
                    self.net.set_node_down(node, false);
                    self.refresh_wheel(node);
                    if let Some(i) = self.client_index(node) {
                        touched.push(i);
                    }
                }
            }
            self.refresh_fault_wheel();
        }
        let mut dispatched = 0;
        let nodes = self.actor_nodes();
        let fault_key = self.fault_wheel_key();
        for key in self.wheel.advance(now) {
            if key == fault_key {
                continue; // consumed by faults.poll above
            }
            let node = nodes[key];
            if self.faults.active() && self.faults.is_down(self.net.node_name(node).unwrap_or("?"))
            {
                continue;
            }
            let Some(actor) = self.actor_mut(node) else { continue };
            let out = actor.on_tick(now);
            self.obs.record(Event {
                at: now,
                txn: None,
                actor: self.net.node_name(node).unwrap_or("?").to_string(),
                kind: EventKind::TimerFired { messages: out.len() },
            });
            if !out.is_empty() {
                // Write-ahead: timer-driven sends persist the state they
                // acknowledge before hitting the wire.
                self.sync_actor(node, now, true);
            }
            dispatched += out.len();
            self.dispatch(node, out);
            // The tick moved or kept this actor's deadline; re-register it
            // (a kept overdue deadline re-files as overdue, preserving the
            // scheduler's barren-masking comparison).
            self.refresh_wheel(node);
            if let Some(i) = self.client_index(node) {
                touched.push(i);
            }
        }
        if self.faults.active() {
            self.refresh_fault_wheel();
        }
        // Timer rounds move client-visible states (abort/resolve
        // initiation, failure declarations); diff the touched clients'
        // txns in txn order so same-instant transitions land
        // deterministically.
        touched.sort_unstable();
        touched.dedup();
        let mut moved: Vec<(u64, usize)> = Vec::new();
        for &i in &touched {
            moved.extend(self.clients[i].txn_ids().into_iter().map(|t| (t, i)));
        }
        moved.sort_unstable();
        for (txn, idx) in moved {
            if let Some(st) = self.clients[idx].txn_state(txn) {
                self.note_txn_state(now, idx, txn, st);
            }
        }
        dispatched
    }

    fn deliver(&mut self, env: Envelope) {
        let now = self.net.now();
        let from = self.principal_of[&env.src];
        if self.faults.active() && self.faults.is_down(self.net.node_name(env.dst).unwrap_or("?")) {
            // The recipient is crashed: the message evaporates. The
            // sender's retry machinery is the recovery path.
            self.faults.note_delivery_lost();
            return;
        }
        let msg = match Message::from_wire_bytes(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                // Used to be a bare `return`: garbled arrivals were
                // invisible. Record them, attributed only by wire tag.
                let ev = Event {
                    at: now,
                    txn: env.txn,
                    actor: self.net.node_name(env.dst).unwrap_or("?").to_string(),
                    kind: EventKind::Garbled {
                        from: self.net.node_name(env.src).unwrap_or("?").to_string(),
                    },
                };
                self.obs.record(ev);
                return;
            }
        };
        let txn_id = msg.txn_id();
        if env.dst == self.ttp_node {
            self.ttp_touched.insert(txn_id);
        }
        // Prefer the sender's wire tag; adversary injections are untagged
        // but decode, so fall back to the protocol header's id.
        let txn = env.txn.or(Some(txn_id));
        let msg_kind = msg.kind().to_string();
        let verdict = if self.faults.active() {
            let actor_name = self.net.node_name(env.dst).unwrap_or("?").to_string();
            self.faults.delivery_verdict(&actor_name, &msg_kind)
        } else {
            DeliveryVerdict::Proceed
        };
        if verdict == DeliveryVerdict::CrashBefore {
            // Crash on receipt: the message is lost before processing.
            self.crash_actor(env.dst, now);
            return;
        }
        let result = match self.actor_mut(env.dst) {
            Some(actor) => actor.on_message(from, &msg, now),
            None => return,
        };
        match result {
            Ok(out) => {
                let ev = Event {
                    at: now,
                    txn,
                    actor: self.net.node_name(env.dst).unwrap_or("?").to_string(),
                    kind: EventKind::Delivered {
                        from: self.net.node_name(env.src).unwrap_or("?").to_string(),
                        msg: msg_kind,
                    },
                };
                self.obs.record(ev);
                if let Some(idx) = self.client_index(env.dst) {
                    if let Some(st) = self.clients[idx].txn_state(txn_id) {
                        self.note_txn_state(now, idx, txn_id, st);
                    }
                }
                // Write-ahead durable sync before any reply hits the wire.
                let force = !out.is_empty() || verdict == DeliveryVerdict::CrashAfter;
                self.sync_actor(env.dst, now, force);
                if verdict == DeliveryVerdict::CrashAfter {
                    // State persisted, replies die with the process.
                    self.crash_actor(env.dst, now);
                } else {
                    self.dispatch(env.dst, out);
                }
            }
            Err(error) => {
                // Used to be `unwrap_or_default()`: validation rejections
                // vanished. Record the event and its variant counter.
                let ev = Event {
                    at: now,
                    txn,
                    actor: self.net.node_name(env.dst).unwrap_or("?").to_string(),
                    kind: EventKind::Rejected {
                        from: self.net.node_name(env.src).unwrap_or("?").to_string(),
                        msg: msg_kind,
                        error,
                    },
                };
                self.obs.record(ev);
                if verdict == DeliveryVerdict::CrashAfter {
                    self.crash_actor(env.dst, now);
                }
            }
        }
        // The message may have armed, moved, or cleared the recipient's
        // earliest deadline; keep the wheel authoritative. (Crash paths
        // already cancelled the entry; refresh on a down actor is a no-op
        // cancellation.)
        self.refresh_wheel(env.dst);
    }

    fn obs_mut(&mut self) -> Option<&mut Obs> {
        Some(&mut self.obs)
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SettleOutcome;
    use tpnr_net::time::SimDuration;

    #[test]
    fn ten_clients_interleaved_uploads_all_complete() {
        let mut w = MultiWorld::new(1, ProtocolConfig::full(), 10);
        let txns: Vec<TxnHandle> = (0..10)
            .map(|i| {
                let key = format!("user{i}/data").into_bytes();
                w.start_upload(i, &key, vec![i as u8; 200], TimeoutStrategy::AbortFirst)
            })
            .collect();
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        for h in txns {
            assert!(h.is_real());
            assert_eq!(w.state_of(h), Some(TxnState::Completed), "client {}", h.client);
            assert!(w.result(h).unwrap().completed());
        }
        assert_eq!(w.provider.txn_count(), 10);
    }

    #[test]
    fn per_client_links_spread_settle_latency() {
        // Distinct client ⇄ provider latencies must surface as a spread in
        // the settle-latency histogram (the E10 percentile exhibit relies
        // on this; with one shared link p50 == p99 degenerately).
        let mut w = MultiWorld::new(5, ProtocolConfig::full(), 4);
        for i in 0..4 {
            let one_way = SimDuration::from_micros(5_000 + i as u64 * 10_000);
            w.set_client_provider_link(i, LinkConfig::ideal(one_way));
        }
        for i in 0..4 {
            let key = format!("k{i}").into_bytes();
            w.start_upload(i, &key, vec![1; 16], TimeoutStrategy::ResolveImmediately);
        }
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        let h = &w.obs.metrics.latency_us;
        assert_eq!(h.count(), 4);
        assert!(h.min().unwrap() < h.max().unwrap(), "distinct links, distinct latencies");
        let (p50, p99) = (h.quantile(0.5).unwrap(), h.quantile(0.99).unwrap());
        assert!(p50 < p99, "percentiles must separate: p50={p50} p99={p99}");
    }

    #[test]
    fn per_txn_accounting_sums_to_global_counters() {
        // Every message is tagged with its transaction at dispatch, so the
        // per-transaction counters must partition the global ones exactly —
        // even with loss, duplication and ten interleaved sessions.
        let mut w = MultiWorld::new(6, ProtocolConfig::full(), 10);
        w.set_all_links(LinkConfig {
            latency: SimDuration::from_millis(10),
            drop_prob: 0.2,
            dup_prob: 0.2,
            ..Default::default()
        });
        let txns: Vec<u64> = (0..10)
            .map(|i| {
                let key = format!("k{i}").into_bytes();
                w.start_upload(i, &key, vec![3u8; 64], TimeoutStrategy::ResolveImmediately).txn_id
            })
            .collect();
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        assert_eq!(w.net.tagged_txns().len(), txns.len());
        let (mut sent, mut bytes, mut delivered, mut dropped) = (0, 0, 0, 0);
        for &txn in &txns {
            let t = w.net.txn_stats(txn);
            sent += t.sent;
            bytes += t.bytes_sent;
            delivered += t.delivered;
            dropped += t.dropped;
        }
        assert_eq!(sent, w.net.stats.sent);
        assert_eq!(bytes, w.net.stats.bytes_sent);
        assert_eq!(dropped, w.net.stats.dropped);
        // Deliveries include duplicate copies on both sides of the ledger.
        assert_eq!(delivered, w.net.stats.delivered);
        assert_eq!(
            delivered,
            txns.iter().map(|&t| w.report(t).unwrap().messages).sum::<u64>(),
            "reports expose the same exact per-txn deliveries"
        );
    }

    #[test]
    fn fifty_clients_under_loss_and_duplication_settle_exactly() {
        // Acceptance scenario: 50 interleaved clients on a 30%-lossy,
        // duplicating network end all-terminal with exact accounting and
        // true quiescence (no silent step-cap exits).
        let mut w = MultiWorld::new(7, ProtocolConfig::full(), 50);
        w.set_all_links(LinkConfig {
            latency: SimDuration::from_millis(15),
            drop_prob: 0.3,
            dup_prob: 0.15,
            ..Default::default()
        });
        let txns: Vec<TxnHandle> = (0..50)
            .map(|i| {
                let key = format!("user{i}/obj").into_bytes();
                w.start_upload(i, &key, vec![i as u8; 48], TimeoutStrategy::ResolveImmediately)
            })
            .collect();
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        let mut delivered_sum = 0;
        for &h in &txns {
            let st = w.state_of(h).unwrap();
            assert!(st.is_terminal(), "client {} stuck in {st:?}", h.client);
            let r = w.report(h.txn_id).unwrap();
            assert!(r.messages >= 2, "client {} settled in {} messages", h.client, r.messages);
            delivered_sum += r.messages;
        }
        assert_eq!(delivered_sum, w.net.stats.delivered, "exact partition of deliveries");
    }

    #[test]
    fn clients_cannot_read_each_others_evidence_but_share_namespace() {
        let mut w = MultiWorld::new(2, ProtocolConfig::full(), 2);
        let t0 = w.start_upload(
            0,
            b"shared-key",
            b"from client 0".to_vec(),
            TimeoutStrategy::AbortFirst,
        );
        w.settle();
        let t1 = w.start_download(1, b"shared-key", TimeoutStrategy::AbortFirst);
        w.settle();
        // Client 1 can fetch the object (this model has a flat namespace,
        // like a shared bucket)…
        assert_eq!(w.state_of(t1), Some(TxnState::Completed));
        assert_eq!(w.result(t1).unwrap().data.unwrap(), b"from client 0");
        // …but holds only its own transactions' evidence.
        assert!(w.clients[1].txn(t0.txn_id).is_none());
        assert!(w.clients[0].txn(t1.txn_id).is_none());
    }

    #[test]
    fn interleaved_same_key_uploads_serialize_by_arrival() {
        let mut w = MultiWorld::new(3, ProtocolConfig::full(), 3);
        for i in 0..3 {
            w.start_upload(i, b"contested", vec![i as u8 + 1; 16], TimeoutStrategy::AbortFirst);
        }
        w.settle();
        // All three transactions completed — each holds a receipt for what
        // *it* uploaded (so each can later prove what it sent), and storage
        // holds the last arrival.
        let stored = w.provider.peek_storage(b"contested").unwrap();
        assert!(stored == [1u8; 16] || stored == [2u8; 16] || stored == [3u8; 16]);
        assert_eq!(w.provider.txn_count(), 3);
    }

    #[test]
    fn mixed_fault_population_terminates() {
        let mut w = MultiWorld::new(4, ProtocolConfig::full(), 5);
        // A lossy world for everyone.
        w.set_all_links(LinkConfig::lossy(SimDuration::from_millis(15), 0.2));
        let txns: Vec<TxnHandle> = (0..5)
            .map(|i| {
                let key = format!("k{i}").into_bytes();
                w.start_upload(i, &key, vec![7u8; 64], TimeoutStrategy::ResolveImmediately)
            })
            .collect();
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        for h in txns {
            let st = w.state_of(h).unwrap();
            assert!(st.is_terminal(), "client {} stuck in {st:?}", h.client);
        }
    }

    #[test]
    fn ttp_load_scales_with_faulted_clients_only() {
        let mut w = MultiWorld::new(5, ProtocolConfig::full(), 4);
        // Only client 0's return path is broken.
        let c0 = w.client_nodes[0];
        let bob = w.bob_node;
        w.net.set_link(bob, c0, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let mut txns = Vec::new();
        for i in 0..4 {
            let key = format!("k{i}").into_bytes();
            txns.push(w.start_upload(i, &key, vec![1u8; 32], TimeoutStrategy::ResolveImmediately));
        }
        w.settle();
        for h in txns {
            assert_eq!(w.state_of(h), Some(TxnState::Completed), "client {}", h.client);
        }
        // Exactly one client needed the TTP.
        assert_eq!(w.ttp.stats.resolves_received, 1);
    }

    #[test]
    fn per_txn_events_partition_global_counters_under_loss_and_duplication() {
        // Acceptance: 50 interleaved clients, 30% loss, duplication. The
        // observability tallies must partition the global counters exactly
        // and agree with the simulator's own per-txn ledger — no event
        // invisible, none double-counted.
        let mut w = MultiWorld::new(7, ProtocolConfig::full(), 50);
        w.set_all_links(LinkConfig {
            latency: SimDuration::from_millis(15),
            drop_prob: 0.3,
            dup_prob: 0.15,
            ..Default::default()
        });
        let txns: Vec<u64> = (0..50)
            .map(|i| {
                let key = format!("user{i}/obj").into_bytes();
                w.start_upload(i, &key, vec![i as u8; 48], TimeoutStrategy::ResolveImmediately)
                    .txn_id
            })
            .collect();
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);

        let m = w.obs.metrics.clone();
        // All traffic here is tagged and decodable, so accepted + rejected
        // events account for every delivery, and the drop/duplication
        // ledgers agree with the simulator.
        assert_eq!(m.delivered + m.rejected, w.net.stats.delivered);
        assert_eq!(m.garbled, 0);
        assert_eq!(m.dropped, w.net.stats.dropped);
        assert_eq!(m.duplicated, w.net.stats.duplicated);
        assert!(m.rejected > 0, "duplicate copies must surface as rejections");
        assert_eq!(m.rejected_by.values().sum::<u64>(), m.rejected);
        assert!(m.rejected_by.contains_key("stale-sequence"), "{:?}", m.rejected_by);

        let (mut acc, mut rej, mut drp, mut dup) = (0, 0, 0, 0);
        for &txn in &txns {
            let o = w.obs.txn(txn);
            let t = w.net.txn_stats(txn);
            assert_eq!(o.inbox_total(), t.delivered, "txn {txn}");
            assert_eq!(o.dropped, t.dropped, "txn {txn}");
            assert_eq!(o.duplicated, t.duplicated, "txn {txn}");
            acc += o.accepted;
            rej += o.rejected;
            drp += o.dropped;
            dup += o.duplicated;
        }
        assert_eq!(acc, m.delivered, "per-txn accepted partitions global deliveries");
        assert_eq!(rej, m.rejected);
        assert_eq!(drp, m.dropped);
        assert_eq!(dup, m.duplicated);
        let mut expected = txns.clone();
        expected.sort_unstable();
        assert_eq!(w.obs.txns(), expected, "no events attributed outside the real txns");
        // Every settled transaction also has a latency sample.
        assert_eq!(m.latency_us.count(), 50);
    }

    #[test]
    fn garbled_and_rejected_arrivals_are_recorded_not_discarded() {
        // Regression: `MultiWorld::deliver` used to `return` on undecodable
        // payloads and `unwrap_or_default()` validation errors away.
        use std::sync::{Arc, Mutex};
        use tpnr_net::sim::Action;

        let mut w = MultiWorld::new(8, ProtocolConfig::full(), 2);
        let (c0, bob) = (w.client_nodes[0], w.bob_node);
        // Wiretap client 0's traffic so we can replay a real capture.
        let tape: Arc<Mutex<Vec<Vec<u8>>>> = Arc::default();
        let tap = tape.clone();
        w.net.set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
            if src == c0 && dst == bob {
                tap.lock().unwrap().push(payload.to_vec());
            }
            Action::Deliver
        }));
        let t0 = w.start_upload(0, b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        w.settle();
        assert_eq!(w.state_of(t0), Some(TxnState::Completed));
        w.net.clear_interceptor();

        // Undecodable flood towards the provider: visible, unattributed.
        for _ in 0..3 {
            w.net.send(w.client_nodes[1], bob, b"garbage".to_vec());
        }
        w.settle();
        assert_eq!(w.obs.metrics.garbled, 3);
        let garbled: Vec<_> =
            w.obs.events().iter().filter(|e| matches!(e.kind, EventKind::Garbled { .. })).collect();
        assert_eq!(garbled.len(), 3);
        assert!(garbled.iter().all(|e| e.txn.is_none() && e.actor == "bob"));

        // A replayed capture decodes but fails validation: recorded with
        // its variant and attributed to the session it replays into, even
        // though the replay itself is untagged on the wire.
        let replay = tape.lock().unwrap()[0].clone();
        w.net.send(c0, bob, replay);
        w.settle();
        assert_eq!(w.obs.metrics.rejected, 1);
        assert_eq!(w.obs.metrics.rejected_by.get("stale-sequence"), Some(&1));
        let rej =
            w.obs.events().iter().find(|e| matches!(e.kind, EventKind::Rejected { .. })).unwrap();
        assert_eq!(rej.txn, Some(t0.txn_id));
        assert_eq!(rej.msg_kind(), Some("Transfer"));
        assert_eq!(w.provider.actor_stats.rejected, 1);
    }

    #[test]
    fn world_and_multiworld_report_identical_latency_semantics() {
        // Acceptance: both runners measure txn-scoped latency (initiation →
        // the transaction's own last delivery), so the same clean upload on
        // the same links reports the same number in either runner.
        let mut sw = crate::runner::World::new(21, ProtocolConfig::full());
        let rw = sw.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);

        let mut mw = MultiWorld::new(21, ProtocolConfig::full(), 1);
        let txn = mw.start_upload(0, b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        mw.settle();
        let rm = mw.report(txn.txn_id).unwrap();

        assert_eq!(rw.report.latency.micros(), 50_000, "one RTT on the default 25 ms links");
        assert_eq!(rm.latency.micros(), rw.report.latency.micros());
        assert_eq!(rm.messages, rw.report.messages);
    }

    #[test]
    fn settled_txns_are_evicted_memory_stays_bounded_and_evidence_survives() {
        // Regression (latent scale bug): `txn_meta`, the per-client txn
        // records, the validator replay windows and the obs/net per-txn
        // tallies all grew without bound per settled transaction. With a
        // small archive capacity, N settled txns must leave only a bounded
        // resident set — and every evicted txn must stay fully answerable
        // (report/state/result) with its evidence re-hydratable.
        let mut w = MultiWorld::new(9, ProtocolConfig::full(), 4);
        w.set_archive_capacity(1); // 16 shards × 1 = at most 16 resident settled
        let mut handles = Vec::new();
        for round in 0..10 {
            for i in 0..4 {
                let key = format!("c{i}/r{round}").into_bytes();
                handles.push(w.start_upload(
                    i,
                    &key,
                    vec![round as u8; 32],
                    TimeoutStrategy::AbortFirst,
                ));
            }
            let s = w.settle();
            assert_eq!(s.outcome, crate::sched::SettleOutcome::Quiescent);
        }
        let stats = w.archive_stats();
        assert!(stats.evicted > 0, "eviction must have engaged: {stats:?}");
        assert!(stats.log_bytes > 0);
        // Bounded memory: resident bookkeeping ≤ hot capacity across all
        // shards (16) plus the in-flight slack of the final round.
        assert_eq!(w.resident_txns() as u64 + stats.evicted, 40);
        assert!(
            w.resident_txns() <= 16 + 4,
            "resident txn_meta must stay bounded, got {}",
            w.resident_txns()
        );
        // Validator replay windows for evicted txns are gone; tombstones
        // remain so late replays are refused, not re-windowed.
        assert!(w.clients.iter().map(|c| c.archived_txn_count()).sum::<usize>() > 0);
        // Every txn — live or archived — still answers queries, and the
        // evicted ones re-hydrate their full evidence from the sealed log.
        let mut rehydrated = 0;
        for &h in &handles {
            assert_eq!(w.state_of(h), Some(TxnState::Completed), "client {}", h.client);
            let r = w.report(h.txn_id).unwrap();
            assert!(r.messages >= 2);
            let res = w.result(h).unwrap();
            assert!(res.nro.is_some(), "NRO must survive eviction");
            assert!(res.nrr.is_some(), "NRR must survive eviction");
            if w.clients[h.client].txn(h.txn_id).is_none() {
                let bundle = w.rehydrate_evidence(h.txn_id).expect("archived bundle loads");
                assert!(bundle.structurally_sound());
                assert!(bundle.get("client-nro").is_some());
                assert!(bundle.get("client-nrr").is_some());
                assert!(bundle.get("provider-nro").is_some());
                assert!(bundle.get("provider-nrr").is_some());
                rehydrated += 1;
            }
        }
        assert_eq!(rehydrated as u64, stats.evicted);
        assert!(w.archive_stats().rehydrated >= stats.evicted);
    }

    #[test]
    fn crash_between_timer_arm_and_fire_cancels_the_stale_wheel_entry() {
        // Regression (satellite audit): a crashed actor's armed deadline
        // must die with it — the wheel entry is cancelled at crash time and
        // re-registered only from the restored snapshot, so a stale timer
        // can never fire while the actor is down.
        let mut cfg = ProtocolConfig::full();
        // Non-inert plan (so the injector runs) that never crashes a real
        // actor on its own — the crash below is injected by hand.
        cfg.faults = cfg.faults.clone().with_chaos(&["absent-actor"], 1, 1);
        let mut w = MultiWorld::new(10, ProtocolConfig::full(), 2);
        w.faults = FaultCtl::new(&cfg.faults);
        w.snaps = None; // re-arm snapshots below, post-initiation
                        // Break bob → client-0 so client 0's response timer must fire.
        let (c0, bob) = (w.client_nodes[0], w.bob_node);
        w.net.set_link(bob, c0, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let h0 = w.start_upload(0, b"k0", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
        let h1 = w.start_upload(1, b"k1", b"data".to_vec(), TimeoutStrategy::AbortFirst);
        // Recovery points carry the armed transactions.
        w.snaps = Some(Box::new(MultiSnapshots {
            clients: w.clients.iter().map(Durable::snapshot).collect(),
            provider: w.provider.snapshot(),
            ttp: w.ttp.snapshot(),
        }));
        // Crash client 0 *between* timer-arm and fire.
        let now = w.net.now();
        w.crash_actor(c0, now);
        let s = w.settle();
        assert_eq!(s.outcome, SettleOutcome::Quiescent);
        // No timer fired for client-0 while it was down: every TimerFired
        // for it must come at/after the restart instant.
        let events = w.obs.events();
        let restarted_at = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Restarted { .. }) && e.actor == "client-0")
            .map(|e| e.at)
            .expect("client-0 restarts");
        for e in events.iter() {
            if e.actor == "client-0" && matches!(e.kind, EventKind::TimerFired { .. }) {
                assert!(
                    e.at >= restarted_at,
                    "stale timer fired at {:?} while client-0 was down (restart {:?})",
                    e.at,
                    restarted_at
                );
            }
        }
        // Both transactions still settle: the restored client re-arms from
        // its snapshot and drives its session to a terminal state.
        assert!(w.state_of(h0).unwrap().is_terminal());
        assert_eq!(w.state_of(h1), Some(TxnState::Completed));
    }
}
