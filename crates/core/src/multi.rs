//! Multi-client deployments: one provider, one TTP, many clients.
//!
//! The paper's Figure 1 shows a provider serving a population of users.
//! [`MultiWorld`] scales the single-pair runner up to N clients with
//! interleaved transactions, which exercises properties the two-party runs
//! cannot: per-(transaction, sender) replay windows under concurrency,
//! cross-client isolation of objects and evidence, and aggregate TTP load.

use crate::client::{Client, TimeoutStrategy};
use crate::config::ProtocolConfig;
use crate::message::Message;
use crate::principal::{Directory, Principal, PrincipalId};
use crate::provider::Provider;
use crate::session::{Outgoing, TxnState};
use crate::ttp::Ttp;
use std::collections::HashMap;
use tpnr_crypto::ChaChaRng;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{LinkConfig, NodeId, SimNet};
use tpnr_net::time::SimTime;

/// N clients sharing one provider and one TTP over the simulator.
pub struct MultiWorld {
    /// The network.
    pub net: SimNet,
    /// The clients.
    pub clients: Vec<Client>,
    /// The shared provider.
    pub provider: Provider,
    /// The shared TTP.
    pub ttp: Ttp,
    /// The clients' simulator nodes (index-aligned with `clients`).
    pub client_nodes: Vec<NodeId>,
    /// The provider's simulator node.
    pub bob_node: NodeId,
    /// The TTP's simulator node.
    pub ttp_node: NodeId,
    node_of: HashMap<PrincipalId, NodeId>,
    principal_of: HashMap<NodeId, PrincipalId>,
    /// Safety valve against livelock.
    pub max_steps: usize,
}

impl MultiWorld {
    /// Builds a world with `n_clients` clients.
    pub fn new(seed: u64, cfg: ProtocolConfig, n_clients: usize) -> Self {
        assert!(n_clients > 0);
        let bob = Principal::test("bob", seed.wrapping_mul(11).wrapping_add(1));
        let ttp_p = Principal::test("ttp", seed.wrapping_mul(11).wrapping_add(2));
        let client_principals: Vec<Principal> = (0..n_clients)
            .map(|i| Principal::test(&format!("client-{i}"), seed.wrapping_mul(11) + 10 + i as u64))
            .collect();

        let mut dir = Directory::new();
        dir.register(&bob);
        dir.register(&ttp_p);
        for c in &client_principals {
            dir.register(c);
        }

        let mut net = SimNet::new(seed);
        let client_nodes: Vec<NodeId> = client_principals
            .iter()
            .map(|c| net.register(&c.name))
            .collect();
        let bob_node = net.register("bob");
        let ttp_node = net.register("ttp");

        let clients: Vec<Client> = client_principals
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Client::new(
                    p.clone(),
                    cfg.clone(),
                    dir.clone(),
                    ttp_p.id(),
                    bob.id(),
                    ChaChaRng::seed_from_u64(seed ^ (0xc11e47 + i as u64)),
                )
            })
            .collect();
        let provider = Provider::new(
            bob.clone(),
            cfg.clone(),
            dir.clone(),
            ttp_p.id(),
            ChaChaRng::seed_from_u64(seed ^ 0xb0b),
        );
        let ttp = Ttp::new(ttp_p.clone(), cfg, dir, ChaChaRng::seed_from_u64(seed ^ 0x777));

        let mut node_of = HashMap::new();
        node_of.insert(bob.id(), bob_node);
        node_of.insert(ttp_p.id(), ttp_node);
        for (p, n) in client_principals.iter().zip(&client_nodes) {
            node_of.insert(p.id(), *n);
        }
        let principal_of = node_of.iter().map(|(p, n)| (*n, *p)).collect();

        MultiWorld {
            net,
            clients,
            provider,
            ttp,
            client_nodes,
            bob_node,
            ttp_node,
            node_of,
            principal_of,
            max_steps: 100_000,
        }
    }

    /// Sets one link config everywhere.
    pub fn set_all_links(&mut self, cfg: LinkConfig) {
        self.net.set_default_link(cfg);
    }

    fn dispatch(&mut self, from_node: NodeId, out: Vec<Outgoing>) {
        for o in out {
            if let Some(&dst) = self.node_of.get(&o.to) {
                self.net.send(from_node, dst, o.msg.to_wire());
            }
        }
    }

    /// Starts an upload from client `idx` without settling (so many
    /// transactions can be in flight together). Returns the txn id.
    pub fn start_upload(
        &mut self,
        idx: usize,
        key: &[u8],
        data: Vec<u8>,
        strategy: TimeoutStrategy,
    ) -> u64 {
        let now = self.net.now();
        let (txn, out) = self.clients[idx]
            .begin_upload(key, data, now, strategy)
            .expect("initiation");
        self.dispatch(self.client_nodes[idx], out);
        txn
    }

    /// Starts a download from client `idx` without settling.
    pub fn start_download(&mut self, idx: usize, key: &[u8], strategy: TimeoutStrategy) -> u64 {
        let now = self.net.now();
        let (txn, out) = self.clients[idx]
            .begin_download(key, now, strategy)
            .expect("initiation");
        self.dispatch(self.client_nodes[idx], out);
        txn
    }

    fn client_index(&self, node: NodeId) -> Option<usize> {
        self.client_nodes.iter().position(|&n| n == node)
    }

    /// Delivers traffic and drives timeouts until every transaction of
    /// every client is terminal.
    pub fn settle(&mut self) {
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.max_steps {
                break;
            }
            if let Some(env) = self.net.step() {
                let now = self.net.now();
                let from = self.principal_of[&env.src];
                let Ok(msg) = Message::from_wire(&env.payload) else { continue };
                let out = if env.dst == self.bob_node {
                    self.provider.handle(from, &msg, now).unwrap_or_default()
                } else if env.dst == self.ttp_node {
                    self.ttp.handle(from, &msg, now).unwrap_or_default()
                } else if let Some(i) = self.client_index(env.dst) {
                    self.clients[i].handle(from, &msg, now).unwrap_or_default()
                } else {
                    Vec::new()
                };
                self.dispatch(env.dst, out);
                continue;
            }

            // Quiet: any open transactions?
            let open_deadlines: Vec<SimTime> = self
                .clients
                .iter()
                .flat_map(|c| {
                    c.txn_ids().into_iter().filter_map(move |id| {
                        let t = c.txn(id)?;
                        (!t.state.is_terminal()).then_some(t.deadline)
                    })
                })
                .collect();
            if open_deadlines.is_empty() {
                break;
            }
            let next = *open_deadlines.iter().min().unwrap();
            let now = self.net.now().max(next);
            self.net.advance_to(now);
            let mut produced = false;
            for i in 0..self.clients.len() {
                let out = self.clients[i].poll_timeouts(now);
                if !out.is_empty() {
                    produced = true;
                    self.dispatch(self.client_nodes[i], out);
                }
            }
            let ttp_out = self.ttp.poll_timeouts(now);
            if !ttp_out.is_empty() {
                produced = true;
                self.dispatch(self.ttp_node, ttp_out);
            }
            if !produced && !self.net.in_flight() {
                break;
            }
        }
    }

    /// Final state of a client's transaction.
    pub fn state(&self, client: usize, txn: u64) -> Option<TxnState> {
        self.clients[client].txn_state(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_clients_interleaved_uploads_all_complete() {
        let mut w = MultiWorld::new(1, ProtocolConfig::full(), 10);
        let txns: Vec<(usize, u64)> = (0..10)
            .map(|i| {
                let key = format!("user{i}/data").into_bytes();
                (i, w.start_upload(i, &key, vec![i as u8; 200], TimeoutStrategy::AbortFirst))
            })
            .collect();
        w.settle();
        for (i, txn) in txns {
            assert_eq!(w.state(i, txn), Some(TxnState::Completed), "client {i}");
        }
        assert_eq!(w.provider.txn_count(), 10);
    }

    #[test]
    fn clients_cannot_read_each_others_evidence_but_share_namespace() {
        let mut w = MultiWorld::new(2, ProtocolConfig::full(), 2);
        let t0 = w.start_upload(0, b"shared-key", b"from client 0".to_vec(), TimeoutStrategy::AbortFirst);
        w.settle();
        let t1 = w.start_download(1, b"shared-key", TimeoutStrategy::AbortFirst);
        w.settle();
        // Client 1 can fetch the object (this model has a flat namespace,
        // like a shared bucket)…
        assert_eq!(w.state(1, t1), Some(TxnState::Completed));
        assert_eq!(
            w.clients[1].download_result(t1).unwrap().data,
            b"from client 0"
        );
        // …but holds only its own transactions' evidence.
        assert!(w.clients[1].txn(t0).is_none());
        assert!(w.clients[0].txn(t1).is_none());
    }

    #[test]
    fn interleaved_same_key_uploads_serialize_by_arrival() {
        let mut w = MultiWorld::new(3, ProtocolConfig::full(), 3);
        for i in 0..3 {
            w.start_upload(i, b"contested", vec![i as u8 + 1; 16], TimeoutStrategy::AbortFirst);
        }
        w.settle();
        // All three transactions completed — each holds a receipt for what
        // *it* uploaded (so each can later prove what it sent), and storage
        // holds the last arrival.
        let stored = w.provider.peek_storage(b"contested").unwrap();
        assert!(stored == [1u8; 16] || stored == [2u8; 16] || stored == [3u8; 16]);
        assert_eq!(w.provider.txn_count(), 3);
    }

    #[test]
    fn mixed_fault_population_terminates() {
        let mut w = MultiWorld::new(4, ProtocolConfig::full(), 5);
        // A lossy world for everyone.
        w.set_all_links(LinkConfig::lossy(tpnr_net::time::SimDuration::from_millis(15), 0.2));
        let txns: Vec<(usize, u64)> = (0..5)
            .map(|i| {
                let key = format!("k{i}").into_bytes();
                (i, w.start_upload(i, &key, vec![7u8; 64], TimeoutStrategy::ResolveImmediately))
            })
            .collect();
        w.settle();
        for (i, txn) in txns {
            let st = w.state(i, txn).unwrap();
            assert!(st.is_terminal(), "client {i} stuck in {st:?}");
        }
    }

    #[test]
    fn ttp_load_scales_with_faulted_clients_only() {
        let mut w = MultiWorld::new(5, ProtocolConfig::full(), 4);
        // Only client 0's return path is broken.
        let c0 = w.client_nodes[0];
        let bob = w.bob_node;
        w.net.set_link(bob, c0, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let mut txns = Vec::new();
        for i in 0..4 {
            let key = format!("k{i}").into_bytes();
            txns.push((i, w.start_upload(i, &key, vec![1u8; 32], TimeoutStrategy::ResolveImmediately)));
        }
        w.settle();
        for (i, txn) in txns {
            assert_eq!(w.state(i, txn), Some(TxnState::Completed), "client {i}");
        }
        // Exactly one client needed the TTP.
        assert_eq!(w.ttp.stats.resolves_received, 1);
    }
}
