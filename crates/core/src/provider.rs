//! The cloud storage provider (Bob) — TPNR responder.
//!
//! Bob accepts upload/download transfers, stores objects, answers every
//! valid Transfer with a Receipt carrying his NRR, handles Abort requests
//! (paper §4.2: verify consistency, answer Accept/Reject, or Error for a
//! malformed request), and answers TTP Resolve forwards by re-issuing the
//! NRR (§4.3).
//!
//! For experiments the provider can be made *misbehaving* via
//! [`ProviderBehavior`]: silent (never answers — the unfair counterparty the
//! Resolve mode exists for) and/or tampering with stored objects (the
//! Figure-5 integrity threat).

use crate::config::ProtocolConfig;
use crate::evidence::{open_and_verify, EvidencePlaintext, Flag, VerifiedEvidence};
use crate::message::{AbortOutcome, Message, ResolveAction};
use crate::principal::{Directory, Principal, PrincipalId};
use crate::session::{Outgoing, Payload, TxnState, ValidationError, Validator};
use std::collections::HashMap;
use tpnr_crypto::hash::DigestCache;
use tpnr_crypto::{ChaChaRng, RsaPublicKey};
use tpnr_net::codec::Wire;
use tpnr_net::time::SimTime;
use tpnr_net::Bytes;

/// Sealed NRR plus the raw `(data-sig, plaintext-sig)` pair, kept so the
/// receipt can be re-issued on a Resolve forward.
type SealedWithSigs = (crate::evidence::SealedEvidence, (Vec<u8>, Vec<u8>));

/// Behaviour knobs for misbehaving-provider experiments.
#[derive(Debug, Clone)]
pub struct ProviderBehavior {
    /// Answer Transfer messages (off → Alice's receipts never come).
    pub respond_transfers: bool,
    /// Answer Abort requests.
    pub respond_aborts: bool,
    /// Answer TTP Resolve forwards.
    pub respond_resolves: bool,
}

impl Default for ProviderBehavior {
    fn default() -> Self {
        ProviderBehavior { respond_transfers: true, respond_aborts: true, respond_resolves: true }
    }
}

/// Bob's durable record of one transaction.
#[derive(Debug, Clone)]
pub struct ProviderTxn {
    /// Counterparty (Alice).
    pub peer: PrincipalId,
    /// Object this transaction concerns.
    pub object: Vec<u8>,
    /// Upload or download.
    pub kind: Flag,
    /// The NRO Bob received and verified (his proof of what Alice sent).
    pub nro: VerifiedEvidence,
    /// The NRR plaintext Bob signed (his commitment).
    pub nrr_plaintext: EvidencePlaintext,
    /// Signatures Bob produced for the NRR (kept to re-issue on Resolve).
    pub nrr_sigs: (Vec<u8>, Vec<u8>),
    /// Transaction state from Bob's perspective.
    pub state: TxnState,
}

/// The provider actor.
pub struct Provider {
    me: Principal,
    cfg: ProtocolConfig,
    dir: Directory,
    ttp: PrincipalId,
    rng: ChaChaRng,
    validator: Validator,
    /// Stored objects as shared immutable buffers: upload, archive and
    /// download-response all hold the same allocation.
    storage: HashMap<Vec<u8>, Bytes>,
    txns: HashMap<u64, ProviderTxn>,
    wire_keys: HashMap<PrincipalId, RsaPublicKey>,
    /// Memoizes payload commitments by buffer identity: a stored object
    /// served to N downloaders hashes once, not N times.
    cache: DigestCache,
    /// Misbehaviour switches.
    pub behavior: ProviderBehavior,
    /// Message/tick counters, maintained by the scheduler-facing
    /// [`Actor`](crate::sched::Actor) impl.
    pub actor_stats: crate::obs::ActorStats,
    /// Crash-recovery epochs survived; scales the sequence skip applied on
    /// each restore.
    restarts: u64,
}

impl Provider {
    /// Creates a provider actor.
    pub fn new(
        me: Principal,
        cfg: ProtocolConfig,
        dir: Directory,
        ttp: PrincipalId,
        rng: ChaChaRng,
    ) -> Self {
        let my_id = me.id();
        Provider {
            me,
            cfg,
            dir,
            ttp,
            rng,
            validator: Validator::new(my_id, ttp),
            storage: HashMap::new(),
            txns: HashMap::new(),
            wire_keys: HashMap::new(),
            cache: DigestCache::new(32),
            behavior: ProviderBehavior::default(),
            actor_stats: crate::obs::ActorStats::default(),
            restarts: 0,
        }
    }

    /// Crash-recovery epochs this provider has survived.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// This provider's principal id.
    pub fn id(&self) -> PrincipalId {
        self.me.id()
    }

    /// Learns a key from the wire (only honoured when key authentication is
    /// ablated; attack harnesses use this to poison the key store).
    pub fn learn_wire_key(&mut self, id: PrincipalId, pk: RsaPublicKey) {
        self.wire_keys.insert(id, pk);
    }

    fn lookup_key(&self, id: &PrincipalId) -> Option<RsaPublicKey> {
        if self.cfg.authenticate_keys {
            self.dir.lookup(id).cloned()
        } else {
            self.wire_keys.get(id).cloned().or_else(|| self.dir.lookup(id).cloned())
        }
    }

    /// Provider-side storage tamper (Eve's move in the Figure-5 scenario).
    ///
    /// The tampered bytes go into a **fresh allocation** (`Bytes::from` the
    /// owned vec): stored buffers are immutable-by-sharing, and a new
    /// allocation means a new digest-cache identity — a tampered object can
    /// never be answered with the old object's memoized hash.
    pub fn tamper_storage(&mut self, key: &[u8], new_data: Vec<u8>) -> bool {
        match self.storage.get_mut(key) {
            Some(slot) => {
                *slot = Bytes::from(new_data);
                true
            }
            None => false,
        }
    }

    /// Direct storage read (assertions in tests/experiments).
    pub fn peek_storage(&self, key: &[u8]) -> Option<&[u8]> {
        self.storage.get(key).map(|v| &v[..])
    }

    /// Shared handle to a stored object — clone it to hold the object
    /// without copying (audits and experiments use this).
    pub fn stored(&self, key: &[u8]) -> Option<&Bytes> {
        self.storage.get(key)
    }

    /// Bob's archived record for a transaction.
    pub fn txn(&self, txn_id: u64) -> Option<&ProviderTxn> {
        self.txns.get(&txn_id)
    }

    /// Number of transactions archived.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Evicts a settled transaction's session record (the stored object
    /// itself stays — it is the service, not session state) and retires its
    /// validator window. Returns the record for the caller's archive.
    pub fn evict_txn(&mut self, txn_id: u64) -> Option<ProviderTxn> {
        let record = self.txns.remove(&txn_id)?;
        self.validator.retire_txn(txn_id);
        Some(record)
    }

    /// Handles one incoming protocol message; returns outgoing messages.
    ///
    /// Invalid messages are dropped with the error surfaced to the caller
    /// (the runner records them in traces).
    pub fn handle(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        match msg {
            Message::Transfer { plaintext, data, evidence } => {
                if !self.behavior.respond_transfers {
                    return Ok(Vec::new());
                }
                self.handle_transfer(from, plaintext, data, evidence, now)
            }
            Message::Abort { plaintext, evidence } => {
                if !self.behavior.respond_aborts {
                    return Ok(Vec::new());
                }
                self.handle_abort(from, plaintext, evidence, now)
            }
            Message::ResolveForward { plaintext, .. } => {
                if !self.behavior.respond_resolves {
                    return Ok(Vec::new());
                }
                self.handle_resolve_forward(from, plaintext, now)
            }
            other => Err(ValidationError::UnexpectedFlag(other.plaintext().flag)),
        }
    }

    fn handle_transfer(
        &mut self,
        from: PrincipalId,
        pt: &EvidencePlaintext,
        data: &Bytes,
        evidence: &crate::evidence::SealedEvidence,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        if !matches!(pt.flag, Flag::UploadRequest | Flag::DownloadRequest) {
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        // The claimed plaintext sender must be who the wire says delivered it
        // (when identity binding is on).
        let expected = if self.cfg.bind_identities { Some(from) } else { None };
        self.validator.check(&self.cfg, pt, expected, now)?;

        // Decode from the Bytes frame: the bulk data stays a view into the
        // received message, and the same view goes into storage below.
        let payload = Payload::from_wire_bytes(data).map_err(|_| ValidationError::HashMismatch)?;
        let commitment = payload.commit_cached(&self.cfg, &mut self.cache);
        if !tpnr_crypto::ct::eq(&pt.data_hash, &commitment) || pt.object != payload.key {
            return Err(ValidationError::HashMismatch);
        }
        let sender_pk = self.lookup_key(&pt.sender).ok_or(ValidationError::NoKey(pt.sender))?;
        let nro = open_and_verify(&self.cfg, &self.me, &sender_pk, pt, evidence)
            .map_err(ValidationError::Evidence)?;

        // Serve the request. Bytes clones are refcount bumps, so storing an
        // upload and serving a download never copy the object.
        let response_payload = match pt.flag {
            Flag::UploadRequest => {
                self.storage.insert(payload.key.clone(), payload.data.clone());
                // Upload receipt acknowledges the same payload hash; carries
                // no bulk data back.
                Payload { key: payload.key.clone(), data: payload.data }
            }
            // Guarded to UploadRequest | DownloadRequest at the top.
            _ => {
                let stored = self.storage.get(&payload.key).cloned().unwrap_or_default();
                Payload { key: payload.key.clone(), data: stored }
            }
        };
        let response_hash = response_payload.commit_cached(&self.cfg, &mut self.cache);
        let (reply_flag, reply_data) = match pt.flag {
            Flag::UploadRequest => (Flag::UploadReceipt, Bytes::new()),
            _ => (Flag::DownloadResponse, response_payload.to_wire_bytes()),
        };

        let nrr_pt = EvidencePlaintext {
            flag: reply_flag,
            sender: self.me.id(),
            recipient: pt.sender,
            ttp: self.ttp,
            txn_id: pt.txn_id,
            seq: self.validator.alloc_seq(pt.txn_id),
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object: payload.key.clone(),
            hash_alg: pt.hash_alg,
            data_hash: response_hash,
        };
        let (sealed, sigs) =
            self.sign_and_seal(&nrr_pt, &sender_pk).map_err(ValidationError::Evidence)?;

        self.txns.insert(
            pt.txn_id,
            ProviderTxn {
                peer: pt.sender,
                object: payload.key,
                kind: pt.flag,
                nro,
                nrr_plaintext: nrr_pt.clone(),
                nrr_sigs: sigs,
                state: TxnState::Completed,
            },
        );
        Ok(vec![Outgoing {
            to: pt.sender,
            msg: Message::Receipt { plaintext: nrr_pt, data: reply_data, evidence: sealed },
        }])
    }

    fn handle_abort(
        &mut self,
        from: PrincipalId,
        pt: &EvidencePlaintext,
        evidence: &crate::evidence::SealedEvidence,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        if pt.flag != Flag::AbortRequest {
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        let expected = if self.cfg.bind_identities { Some(from) } else { None };
        self.validator.check(&self.cfg, pt, expected, now)?;
        let sender_pk = self.lookup_key(&pt.sender).ok_or(ValidationError::NoKey(pt.sender))?;

        // Verify consistency of the request; an unverifiable abort gets the
        // paper's "Error" answer asking Alice to regenerate it.
        let abort_nro = open_and_verify(&self.cfg, &self.me, &sender_pk, pt, evidence);
        let outcome = match (&abort_nro, self.txns.get(&pt.txn_id)) {
            (Err(_), _) => AbortOutcome::Error,
            // Transaction already completed on our side: too late to cancel.
            (Ok(_), Some(rec)) if rec.state == TxnState::Completed => AbortOutcome::Reject,
            (Ok(_), _) => AbortOutcome::Accept,
        };
        if let (Ok(nro), AbortOutcome::Accept) = (&abort_nro, outcome) {
            // Record the aborted transaction with the abort evidence.
            let entry = self.txns.entry(pt.txn_id).or_insert_with(|| ProviderTxn {
                peer: pt.sender,
                object: pt.object.clone(),
                kind: Flag::AbortRequest,
                nro: nro.clone(),
                nrr_plaintext: pt.clone(),
                nrr_sigs: (Vec::new(), Vec::new()),
                state: TxnState::Aborted,
            });
            entry.state = TxnState::Aborted;
        }

        let reply_pt = EvidencePlaintext {
            flag: Flag::AbortResponse,
            sender: self.me.id(),
            recipient: pt.sender,
            ttp: self.ttp,
            txn_id: pt.txn_id,
            seq: self.validator.alloc_seq(pt.txn_id),
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object: pt.object.clone(),
            hash_alg: pt.hash_alg,
            data_hash: pt.data_hash.clone(),
        };
        let (sealed, _) =
            self.sign_and_seal(&reply_pt, &sender_pk).map_err(ValidationError::Evidence)?;
        Ok(vec![Outgoing {
            to: pt.sender,
            msg: Message::AbortReply { outcome, plaintext: reply_pt, evidence: sealed },
        }])
    }

    fn handle_resolve_forward(
        &mut self,
        from: PrincipalId,
        pt: &EvidencePlaintext,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        if pt.flag != Flag::ResolveForward {
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        // Resolve forwards must come from the agreed TTP.
        if self.cfg.bind_identities && (from != self.ttp || pt.sender != self.ttp) {
            return Err(ValidationError::IdentityMismatch);
        }
        self.validator.check(&self.cfg, pt, None, now)?;

        let (action, evidence) = match self.txns.get(&pt.txn_id) {
            Some(rec) if !rec.nrr_sigs.0.is_empty() => {
                // Re-issue the NRR, re-sealed for Alice (she may have never
                // received the original receipt).
                let peer_pk = self.lookup_key(&rec.peer).ok_or(ValidationError::NoKey(rec.peer))?;
                let sealed = crate::evidence::seal_signatures(
                    &peer_pk,
                    &mut self.rng,
                    &rec.nrr_sigs.0,
                    &rec.nrr_sigs.1,
                )
                .map_err(ValidationError::Evidence)?;
                (ResolveAction::Continue, Some((sealed, rec.nrr_plaintext.clone())))
            }
            // We never saw the transaction (the NRO was lost in flight):
            // ask Alice to restart the session.
            _ => (ResolveAction::Restart, None),
        };

        let (reply_pt, sealed_evidence) = match evidence {
            Some((sealed, nrr_pt)) => (nrr_pt, Some(sealed)),
            None => (
                EvidencePlaintext {
                    flag: Flag::ResolveResponse,
                    sender: self.me.id(),
                    recipient: pt.sender, // routed back via the TTP
                    ttp: self.ttp,
                    txn_id: pt.txn_id,
                    seq: self.validator.alloc_seq(pt.txn_id),
                    nonce: self.rng.next_u64(),
                    time_limit: now.after(self.cfg.message_time_limit),
                    object: pt.object.clone(),
                    hash_alg: pt.hash_alg,
                    data_hash: pt.data_hash.clone(),
                },
                None,
            ),
        };
        Ok(vec![Outgoing {
            to: self.ttp,
            msg: Message::ResolveReply { action, plaintext: reply_pt, evidence: sealed_evidence },
        }])
    }

    fn sign_and_seal(
        &mut self,
        pt: &EvidencePlaintext,
        recipient_pk: &RsaPublicKey,
    ) -> Result<SealedWithSigs, crate::evidence::EvidenceError> {
        // Sign once, keep the signatures for Resolve re-issue, and seal —
        // both steps through the core::evidence constructors so the
        // sign-then-encrypt order is witnessed by the API.
        let (s1, s2) = crate::evidence::sign_pair(&self.cfg, &self.me, pt)?;
        let sealed = crate::evidence::seal_signatures(recipient_pk, &mut self.rng, &s1, &s2)?;
        Ok((sealed, (s1, s2)))
    }
}

/// The provider is purely reactive: it answers transfers, aborts and
/// Durable image of a [`Provider`]: object store, transaction records
/// (including re-issuable NRR signatures) and validator sequence state.
#[derive(Debug, Clone)]
pub struct ProviderSnapshot {
    storage: HashMap<Vec<u8>, Bytes>,
    txns: HashMap<u64, ProviderTxn>,
    validator: crate::session::ValidatorSnapshot,
    bytes: u64,
}

impl ProviderSnapshot {
    /// Approximate serialized size of this snapshot.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl crate::fault::Durable for Provider {
    type Snapshot = ProviderSnapshot;

    fn snapshot(&self) -> ProviderSnapshot {
        let mut bytes = self.validator.state_bytes() + 8;
        for (key, data) in &self.storage {
            bytes += (key.len() + data.as_ref().len()) as u64;
        }
        for t in self.txns.values() {
            bytes += (t.object.len() + t.nrr_sigs.0.len() + t.nrr_sigs.1.len() + 64) as u64;
            bytes += crate::fault::evidence_bytes(&t.nro);
        }
        ProviderSnapshot {
            storage: self.storage.clone(),
            txns: self.txns.clone(),
            validator: self.validator.snapshot(),
            bytes,
        }
    }

    fn restore(&mut self, snap: &ProviderSnapshot) {
        self.restarts += 1;
        let skip = self.restarts.saturating_mul(crate::fault::SEQ_RECOVERY_SKIP);
        self.storage = snap.storage.clone();
        self.txns = snap.txns.clone();
        self.validator.restore_with_skip(&snap.validator, skip);
    }
}

/// resolve forwards but owns no timers, so the `Actor` timer hooks keep
/// their no-op defaults.
impl crate::sched::Actor for Provider {
    fn on_message(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let result = self.handle(from, msg, now);
        self.actor_stats.note_message(&result);
        result
    }
}
