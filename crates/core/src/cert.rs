//! Lightweight certificates — the "third authorities certified (TAC)"
//! key distribution the paper presumes.
//!
//! Paper §5.1: MITM "can be prevented by the authentication … when the
//! party gets the other's public key, they should authenticate the
//! validity." [`crate::principal::Directory`] models the *result* of that
//! authentication; this module models the *mechanism*: a certificate
//! authority signs `(subject-name, subject-key, validity-window)`
//! statements, parties verify chains instead of trusting raw keys, and a
//! [`Directory`] can be populated from verified certificates.
//!
//! This is deliberately X.509-shaped but not X.509: canonical-codec TBS
//! bytes instead of DER, one intermediate level at most.

use crate::principal::{Directory, Principal, PrincipalId};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::{CryptoError, RsaPublicKey};
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};
use tpnr_net::time::SimTime;

/// The to-be-signed body of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Subject display name.
    pub subject: String,
    /// Subject public key (modulus ‖ exponent).
    pub subject_key_n: Vec<u8>,
    /// Subject public exponent.
    pub subject_key_e: Vec<u8>,
    /// First instant the certificate is valid.
    pub not_before: SimTime,
    /// Last instant the certificate is valid.
    pub not_after: SimTime,
    /// Issuer display name.
    pub issuer: String,
    /// Issuer key fingerprint (chain link).
    pub issuer_id: PrincipalId,
    /// Whether the subject may itself issue certificates.
    pub is_ca: bool,
}

impl Wire for TbsCertificate {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.subject);
        w.bytes(&self.subject_key_n);
        w.bytes(&self.subject_key_e);
        w.u64(self.not_before.0);
        w.u64(self.not_after.0);
        w.str(&self.issuer);
        w.fixed(&self.issuer_id.0);
        w.bool(self.is_ca);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TbsCertificate {
            subject: r.str()?,
            subject_key_n: r.bytes()?,
            subject_key_e: r.bytes()?,
            not_before: SimTime(r.u64()?),
            not_after: SimTime(r.u64()?),
            issuer: r.str()?,
            issuer_id: PrincipalId(r.array::<32>()?),
            is_ca: r.bool()?,
        })
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed body.
    pub tbs: TbsCertificate,
    /// Issuer's PKCS#1 v1.5 signature over the canonical TBS bytes.
    pub signature: Vec<u8>,
}

impl Wire for Certificate {
    fn encode(&self, w: &mut Writer) {
        self.tbs.encode(w);
        w.bytes(&self.signature);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Certificate { tbs: TbsCertificate::decode(r)?, signature: r.bytes()? })
    }
}

impl Certificate {
    /// The subject's public key.
    pub fn subject_key(&self) -> RsaPublicKey {
        RsaPublicKey::from_components(&self.tbs.subject_key_n, &self.tbs.subject_key_e)
    }

    /// The subject's principal id (its key fingerprint).
    pub fn subject_id(&self) -> PrincipalId {
        PrincipalId(self.subject_key().fingerprint())
    }
}

/// Chain-verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// Signature invalid under the claimed issuer key.
    BadSignature,
    /// Certificate used outside its validity window.
    Expired {
        /// When the check happened.
        at: SimTime,
    },
    /// The issuer link does not match the presented issuer certificate.
    IssuerMismatch,
    /// The issuer certificate is not a CA.
    NotACa,
    /// Empty chain.
    EmptyChain,
    /// Crypto failure while signing.
    Crypto(CryptoError),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::Expired { at } => write!(f, "certificate not valid at t={}", at.0),
            CertError::IssuerMismatch => write!(f, "issuer link mismatch"),
            CertError::NotACa => write!(f, "issuer is not a CA"),
            CertError::EmptyChain => write!(f, "empty certificate chain"),
            CertError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for CertError {}

/// A certificate authority (the TAC).
pub struct CertificateAuthority {
    /// The CA's own principal (key pair + name).
    pub principal: Principal,
    /// Self-signed root certificate.
    pub root: Certificate,
}

impl CertificateAuthority {
    /// Creates a root CA with a self-signed certificate valid over the
    /// given window.
    pub fn new_root(
        principal: Principal,
        not_before: SimTime,
        not_after: SimTime,
    ) -> Result<Self, CertError> {
        let tbs = TbsCertificate {
            subject: principal.name.clone(),
            subject_key_n: principal.public().n_bytes(),
            subject_key_e: principal.public().e_bytes(),
            not_before,
            not_after,
            issuer: principal.name.clone(),
            issuer_id: principal.id(),
            is_ca: true,
        };
        let signature = principal
            .keys
            .private
            .sign(HashAlg::Sha256, &tbs.to_wire())
            .map_err(CertError::Crypto)?;
        Ok(CertificateAuthority { principal, root: Certificate { tbs, signature } })
    }

    /// Issues a certificate binding `subject`'s name to its key.
    pub fn issue(
        &self,
        subject: &Principal,
        not_before: SimTime,
        not_after: SimTime,
        is_ca: bool,
    ) -> Result<Certificate, CertError> {
        let tbs = TbsCertificate {
            subject: subject.name.clone(),
            subject_key_n: subject.public().n_bytes(),
            subject_key_e: subject.public().e_bytes(),
            not_before,
            not_after,
            issuer: self.principal.name.clone(),
            issuer_id: self.principal.id(),
            is_ca,
        };
        let signature = self
            .principal
            .keys
            .private
            .sign(HashAlg::Sha256, &tbs.to_wire())
            .map_err(CertError::Crypto)?;
        Ok(Certificate { tbs, signature })
    }
}

/// Verifies `cert` against its issuer's certificate at time `now`.
///
/// `issuer` must be the certificate whose subject signed `cert` (for a
/// self-signed root, pass the root itself).
pub fn verify_link(
    cert: &Certificate,
    issuer: &Certificate,
    now: SimTime,
) -> Result<(), CertError> {
    if now < cert.tbs.not_before || now > cert.tbs.not_after {
        return Err(CertError::Expired { at: now });
    }
    if cert.tbs.issuer_id != issuer.subject_id() {
        return Err(CertError::IssuerMismatch);
    }
    if !issuer.tbs.is_ca {
        return Err(CertError::NotACa);
    }
    issuer
        .subject_key()
        .verify(HashAlg::Sha256, &cert.tbs.to_wire(), &cert.signature)
        .map_err(|_| CertError::BadSignature)
}

/// Verifies a chain `[leaf, intermediate…, root]` bottom-up against a
/// trusted root, checking every link and the root's self-signature.
pub fn verify_chain(
    chain: &[Certificate],
    trusted_root: &Certificate,
    now: SimTime,
) -> Result<(), CertError> {
    if chain.is_empty() {
        return Err(CertError::EmptyChain);
    }
    for pair in chain.windows(2) {
        verify_link(&pair[0], &pair[1], now)?;
    }
    let top = chain.last().unwrap();
    if top != trusted_root {
        // The chain must terminate in the trusted anchor itself (or a cert
        // signed by it).
        verify_link(top, trusted_root, now)?;
    } else {
        verify_link(top, top, now)?; // self-signature of the root
    }
    Ok(())
}

/// Builds an authenticated [`Directory`] from verified certificates: the
/// mechanised version of the paper's "certified by TAC" assumption.
pub fn directory_from_certs(
    certs: &[Certificate],
    trusted_root: &Certificate,
    now: SimTime,
) -> (Directory, Vec<(String, CertError)>) {
    let mut dir = Directory::new();
    let mut rejected = Vec::new();
    for c in certs {
        match verify_link(c, trusted_root, now) {
            Ok(()) => dir.register_raw(c.subject_id(), c.subject_key()),
            Err(e) => rejected.push((c.tbs.subject.clone(), e)),
        }
    }
    (dir, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> (SimTime, SimTime) {
        (SimTime(0), SimTime(1_000_000_000))
    }

    fn setup() -> (CertificateAuthority, Principal, Certificate) {
        let (nb, na) = window();
        let ca = CertificateAuthority::new_root(Principal::test("tac", 500), nb, na).unwrap();
        let alice = Principal::test("alice", 501);
        let cert = ca.issue(&alice, nb, na, false).unwrap();
        (ca, alice, cert)
    }

    #[test]
    fn issued_cert_verifies_against_root() {
        let (ca, alice, cert) = setup();
        verify_link(&cert, &ca.root, SimTime(5)).unwrap();
        assert_eq!(cert.subject_id(), alice.id());
        assert_eq!(cert.subject_key(), *alice.public());
    }

    #[test]
    fn root_self_signature_verifies() {
        let (ca, _, _) = setup();
        verify_link(&ca.root, &ca.root, SimTime(5)).unwrap();
    }

    #[test]
    fn expired_and_premature_rejected() {
        let ca =
            CertificateAuthority::new_root(Principal::test("tac", 502), SimTime(100), SimTime(200))
                .unwrap();
        let alice = Principal::test("alice", 503);
        let cert = ca.issue(&alice, SimTime(100), SimTime(200), false).unwrap();
        assert!(matches!(
            verify_link(&cert, &ca.root, SimTime(50)),
            Err(CertError::Expired { .. })
        ));
        assert!(matches!(
            verify_link(&cert, &ca.root, SimTime(201)),
            Err(CertError::Expired { .. })
        ));
        verify_link(&cert, &ca.root, SimTime(150)).unwrap();
    }

    #[test]
    fn forged_fields_rejected() {
        let (ca, _, cert) = setup();
        let mallory = Principal::test("mallory", 599);
        // Mallory swaps in her key, keeping the signature.
        let mut forged = cert.clone();
        forged.tbs.subject_key_n = mallory.public().n_bytes();
        forged.tbs.subject_key_e = mallory.public().e_bytes();
        assert_eq!(verify_link(&forged, &ca.root, SimTime(5)), Err(CertError::BadSignature));
        // Or renames the subject.
        let mut forged = cert.clone();
        forged.tbs.subject = "mallory-as-alice".into();
        assert_eq!(verify_link(&forged, &ca.root, SimTime(5)), Err(CertError::BadSignature));
    }

    #[test]
    fn self_issued_by_non_ca_rejected() {
        let (ca, alice, _) = setup();
        let (nb, na) = window();
        // Alice (not a CA) tries to issue for Mallory.
        let alice_fake_ca = CertificateAuthority::new_root(alice.clone(), nb, na).unwrap();
        let mallory = Principal::test("mallory", 599);
        let rogue = alice_fake_ca.issue(&mallory, nb, na, false).unwrap();
        // It fails against the real root: wrong issuer id.
        assert_eq!(verify_link(&rogue, &ca.root, SimTime(5)), Err(CertError::IssuerMismatch));
        // And if someone presents Alice's non-CA cert as the issuer, the
        // CA bit check fires.
        let alice_cert = ca.issue(&alice, nb, na, false).unwrap();
        assert_eq!(verify_link(&rogue, &alice_cert, SimTime(5)), Err(CertError::NotACa));
    }

    #[test]
    fn intermediate_chain_verifies() {
        let (nb, na) = window();
        let root =
            CertificateAuthority::new_root(Principal::test("root-tac", 510), nb, na).unwrap();
        let inter_principal = Principal::test("regional-tac", 511);
        let inter_cert = root.issue(&inter_principal, nb, na, true).unwrap();
        let inter = CertificateAuthority { principal: inter_principal, root: inter_cert.clone() };
        let alice = Principal::test("alice", 512);
        let leaf = inter.issue(&alice, nb, na, false).unwrap();

        verify_chain(
            &[leaf.clone(), inter_cert.clone(), root.root.clone()],
            &root.root,
            SimTime(5),
        )
        .unwrap();
        // A chain missing the intermediate fails.
        assert!(verify_chain(&[leaf, root.root.clone()], &root.root, SimTime(5)).is_err());
        assert_eq!(verify_chain(&[], &root.root, SimTime(5)), Err(CertError::EmptyChain));
    }

    #[test]
    fn directory_from_certs_registers_valid_and_reports_bad() {
        let (ca, alice, cert) = setup();
        let (nb, na) = window();
        let bob = Principal::test("bob", 504);
        let bob_cert = ca.issue(&bob, nb, na, false).unwrap();
        let mut forged = cert.clone();
        forged.tbs.subject = "evil".into();

        let (dir, rejected) = directory_from_certs(&[cert, bob_cert, forged], &ca.root, SimTime(5));
        assert!(dir.authenticate(&alice.id(), alice.public()));
        assert!(dir.authenticate(&bob.id(), bob.public()));
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, "evil");
    }

    #[test]
    fn wire_roundtrip() {
        let (_, _, cert) = setup();
        let enc = cert.to_wire();
        assert_eq!(Certificate::from_wire(&enc).unwrap(), cert);
    }
}
