//! Unified observability: one structured event stream plus a metrics
//! registry, shared by every runner.
//!
//! The paper's evaluation is pure message accounting (2 steps in the Normal
//! mode, TTP touched only on faults), so the reproduction lives or dies on
//! *exact, inspectable* accounting of what happened on the wire. Before this
//! module, `World` kept a private trace that `MultiWorld` never got — there,
//! garbled payloads and validation rejections vanished without a record —
//! and drops/duplications inside [`SimNet`](tpnr_net::sim::SimNet) were
//! invisible to both. [`Obs`] is the single sink both runners share:
//!
//! - an [`Event`] ring buffer (bounded, so 50-client floods cannot grow
//!   memory without bound; eviction is counted, never silent),
//! - global [`Metrics`] counters with per-`ValidationError`-variant
//!   rejection counts and latency/settle-step [`Histogram`]s,
//! - exact per-transaction tallies ([`TxnObs`]) that partition the global
//!   counters: for fully tagged traffic, summing any field over
//!   [`Obs::txns`] reproduces the global number, and each transaction's
//!   inbox total equals its `TxnNetStats::delivered`.
//!
//! Attribution is `Option<u64>`: an undecodable flood payload belongs to no
//! transaction (it used to be reported as `txn_id: 0`). Decodable traffic
//! prefers the sender's wire tag and falls back to the protocol header's
//! transaction id, so adversary *injections* — untagged on the wire — are
//! still attributed to the session they replay into.
//!
//! The bench crate renders events and metrics as JSONL
//! (`tpnr-bench::report`); `experiments --trace-jsonl` exports a full run.

use crate::session::{Outgoing, TxnState, ValidationError};
use std::collections::{BTreeMap, VecDeque};
use tpnr_net::time::SimTime;

/// Default ring-buffer capacity (events, not bytes). Large enough to hold a
/// full 50-client faulted run; floods beyond it evict the oldest events and
/// bump [`Obs::evicted`] while every counter stays exact.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// One observable happening, attributed to a point in simulated time, an
/// actor (the affected receiver), and — when one exists — a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When it happened.
    pub at: SimTime,
    /// Transaction this event belongs to. `None` for traffic no transaction
    /// claims: undecodable floods, untagged raw sends, timer rounds.
    pub txn: Option<u64>,
    /// Display name of the actor the event happened *to* (the receiver for
    /// wire events, the timer owner for `TimerFired`, the state owner for
    /// `StateTransition`).
    pub actor: String,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy. Wire-facing variants carry the sender's display name
/// so a trace line reads as "who did what to whom".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A protocol message was decoded and accepted by its receiver.
    Delivered {
        /// Sender's display name.
        from: String,
        /// Message kind label (`Transfer`, `Receipt`, …).
        msg: String,
    },
    /// A protocol message was decoded but refused by validation.
    Rejected {
        /// Sender's display name.
        from: String,
        /// Message kind label.
        msg: String,
        /// Why it was refused.
        error: ValidationError,
    },
    /// An arriving payload did not decode as a protocol message.
    Garbled {
        /// Sender's display name.
        from: String,
    },
    /// The network lost a copy (link loss or adversary drop).
    Dropped {
        /// Sender's display name.
        from: String,
    },
    /// The link created an extra copy of a message.
    Duplicated {
        /// Sender's display name.
        from: String,
    },
    /// An actor's due protocol timers fired.
    TimerFired {
        /// How many messages the tick produced.
        messages: usize,
    },
    /// A transaction moved to a new client-visible state.
    StateTransition {
        /// Previous state; `None` when first observed.
        from: Option<TxnState>,
        /// New state.
        to: TxnState,
    },
    /// Fault injection crashed this actor; in-flight work is lost until it
    /// restarts from its durable snapshot.
    Crashed,
    /// A crashed actor came back up, restored from its last synced
    /// snapshot.
    Restarted {
        /// Approximate size of the snapshot it restored from.
        snapshot_bytes: u64,
    },
}

impl EventKind {
    /// Stable kebab-case label (JSONL `kind` field).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Delivered { .. } => "delivered",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Garbled { .. } => "garbled",
            EventKind::Dropped { .. } => "dropped",
            EventKind::Duplicated { .. } => "duplicated",
            EventKind::TimerFired { .. } => "timer-fired",
            EventKind::StateTransition { .. } => "state-transition",
            EventKind::Crashed => "crashed",
            EventKind::Restarted { .. } => "restarted",
        }
    }
}

impl Event {
    /// The protocol message kind this event carries, when it carries one
    /// (`Delivered` and `Rejected`).
    pub fn msg_kind(&self) -> Option<&str> {
        match &self.kind {
            EventKind::Delivered { msg, .. } | EventKind::Rejected { msg, .. } => Some(msg),
            _ => None,
        }
    }
}

/// Values below this are bucketed exactly (one bucket per value).
const HIST_EXACT: usize = 32;
/// Sub-buckets per power of two above the exact region (log-linear).
const HIST_SUB: usize = 16;
/// 32 exact buckets + 16 sub-buckets for each exponent 5..=63.
const HIST_BUCKETS: usize = HIST_EXACT + (64 - 5) * HIST_SUB;

/// Fixed-bucket **log-linear** histogram: values below 32 get one bucket
/// each (exact), larger values get 16 sub-buckets per power of two — the
/// bucket of `v` is keyed by `(ilog2(v), top 4 bits after the leading 1)`,
/// so quantiles resolve to ≈6% relative error instead of the 2× error a
/// pure log2 scheme gives. (The old log2 buckets made the E10 latency
/// exhibit degenerate: every settle latency landed in one bucket and
/// p50 == p99.) No allocation, O(1) record, exact count/sum/min/max
/// alongside the bucketed shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Bucket index of `value` in the log-linear layout.
    fn bucket_index(value: u64) -> usize {
        if value < HIST_EXACT as u64 {
            value as usize
        } else {
            let e = value.ilog2() as usize; // ≥ 5 here
            let sub = ((value >> (e - 4)) & 0xF) as usize;
            HIST_EXACT + (e - 5) * HIST_SUB + sub
        }
    }

    /// Largest value bucket `i` can hold (inverse of [`Self::bucket_index`]).
    fn bucket_upper(i: usize) -> u64 {
        if i < HIST_EXACT {
            i as u64
        } else {
            let e = 5 + (i - HIST_EXACT) / HIST_SUB;
            let sub = ((i - HIST_EXACT) % HIST_SUB) as u64;
            let width = 1u64 << (e - 4);
            (HIST_SUB as u64 + sub) * width + (width - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// How many values were recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one: bucket-wise addition with
    /// exact count/sum/min/max. Lets sharded runners combine per-lane
    /// latency distributions into one global quantile surface.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket containing the q-quantile (q in 0..=1),
    /// clamped to the exact max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// Global counters and distributions, updated on every [`Obs::record`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Protocol messages accepted by their receiver.
    pub delivered: u64,
    /// Protocol messages refused by validation.
    pub rejected: u64,
    /// Arriving payloads that did not decode.
    pub garbled: u64,
    /// Copies the network lost.
    pub dropped: u64,
    /// Extra copies the link created.
    pub duplicated: u64,
    /// Timer rounds that fired on some actor.
    pub timer_fires: u64,
    /// Client-visible transaction state changes.
    pub state_transitions: u64,
    /// Rejections by [`ValidationError::variant`] label.
    pub rejected_by: BTreeMap<&'static str, u64>,
    /// Actor crashes injected by the fault plan.
    pub crashes: u64,
    /// Restarts from durable snapshots.
    pub restarts: u64,
    /// Client resends driven by the retry policy (synced from the clients'
    /// retry counters by the runners' settle wrappers).
    pub retries: u64,
    /// Total bytes written across persisted durable snapshots (synced from
    /// the fault controller by the runners' settle wrappers).
    pub snapshot_bytes: u64,
    /// Per-transaction settlement latency in microseconds (recorded when a
    /// transaction first reaches a terminal state).
    pub latency_us: Histogram,
    /// Steps (deliveries + timer rounds) per settle run.
    pub settle_steps: Histogram,
}

/// Exact per-transaction event tallies. For fully tagged traffic,
/// `accepted + rejected + garbled` equals the transaction's
/// `TxnNetStats::delivered` and each field sums over all transactions to
/// the matching global [`Metrics`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnObs {
    /// Deliveries accepted.
    pub accepted: u64,
    /// Deliveries refused by validation.
    pub rejected: u64,
    /// Arrivals that did not decode.
    pub garbled: u64,
    /// Copies lost in the network.
    pub dropped: u64,
    /// Extra copies the link created.
    pub duplicated: u64,
}

impl TxnObs {
    /// Everything that reached an inbox for this transaction (equals
    /// `TxnNetStats::delivered` for tagged traffic).
    pub fn inbox_total(&self) -> u64 {
        self.accepted + self.rejected + self.garbled
    }
}

/// Per-actor message/tick counters. Each actor carries its own, so tests
/// and experiments can read "how did Bob fare" without scanning the event
/// stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActorStats {
    /// Messages this actor accepted.
    pub accepted: u64,
    /// Messages this actor refused.
    pub rejected: u64,
    /// Messages this actor produced (replies and timer output).
    pub produced: u64,
    /// Ticks that produced at least one message.
    pub productive_ticks: u64,
}

impl ActorStats {
    /// Accounts one handled message.
    pub fn note_message(&mut self, result: &Result<Vec<Outgoing>, ValidationError>) {
        match result {
            Ok(out) => {
                self.accepted += 1;
                self.produced += out.len() as u64;
            }
            Err(_) => self.rejected += 1,
        }
    }

    /// Accounts one timer tick.
    pub fn note_tick(&mut self, out: &[Outgoing]) {
        if !out.is_empty() {
            self.productive_ticks += 1;
            self.produced += out.len() as u64;
        }
    }
}

/// The shared observability sink: bounded event ring plus metrics.
#[derive(Debug, Clone)]
pub struct Obs {
    events: VecDeque<Event>,
    capacity: usize,
    evicted: u64,
    /// Global counters and distributions.
    pub metrics: Metrics,
    per_txn: BTreeMap<u64, TxnObs>,
    last_state: BTreeMap<u64, TxnState>,
    started: BTreeMap<u64, SimTime>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Sink with the default ring capacity.
    pub fn new() -> Self {
        Obs::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Sink with an explicit ring capacity (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Obs {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
            metrics: Metrics::default(),
            per_txn: BTreeMap::new(),
            last_state: BTreeMap::new(),
            started: BTreeMap::new(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-bounds the ring, evicting oldest events immediately if needed.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
    }

    /// Events evicted from the ring so far (counters are unaffected by
    /// eviction).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<Event> {
        &self.events
    }

    /// Tallies for one transaction (zeroes if it was never seen).
    pub fn txn(&self, txn: u64) -> TxnObs {
        self.per_txn.get(&txn).copied().unwrap_or_default()
    }

    /// Transactions with recorded events, ascending.
    pub fn txns(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.per_txn.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Records one event: updates the metrics, the per-transaction tallies,
    /// and the ring (evicting the oldest event when full).
    pub fn record(&mut self, event: Event) {
        match &event.kind {
            EventKind::Delivered { .. } => {
                self.metrics.delivered += 1;
                if let Some(t) = event.txn {
                    self.per_txn.entry(t).or_default().accepted += 1;
                }
            }
            EventKind::Rejected { error, .. } => {
                self.metrics.rejected += 1;
                *self.metrics.rejected_by.entry(error.variant()).or_insert(0) += 1;
                if let Some(t) = event.txn {
                    self.per_txn.entry(t).or_default().rejected += 1;
                }
            }
            EventKind::Garbled { .. } => {
                self.metrics.garbled += 1;
                if let Some(t) = event.txn {
                    self.per_txn.entry(t).or_default().garbled += 1;
                }
            }
            EventKind::Dropped { .. } => {
                self.metrics.dropped += 1;
                if let Some(t) = event.txn {
                    self.per_txn.entry(t).or_default().dropped += 1;
                }
            }
            EventKind::Duplicated { .. } => {
                self.metrics.duplicated += 1;
                if let Some(t) = event.txn {
                    self.per_txn.entry(t).or_default().duplicated += 1;
                }
            }
            EventKind::TimerFired { .. } => self.metrics.timer_fires += 1,
            EventKind::StateTransition { .. } => self.metrics.state_transitions += 1,
            EventKind::Crashed => self.metrics.crashes += 1,
            EventKind::Restarted { .. } => self.metrics.restarts += 1,
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// Marks when a transaction's first message hit the wire (idempotent;
    /// the first call wins). Terminal-state latency is measured from here.
    pub fn note_txn_started(&mut self, txn: u64, at: SimTime) {
        self.started.entry(txn).or_insert(at);
    }

    /// Observes a transaction's current client-visible state, emitting a
    /// [`EventKind::StateTransition`] only when it changed. The first
    /// transition into a terminal state records settlement latency.
    pub fn note_state(&mut self, at: SimTime, actor: &str, txn: u64, state: TxnState) {
        let prev = self.last_state.insert(txn, state);
        if prev == Some(state) {
            return;
        }
        if state.is_terminal() && !prev.is_some_and(TxnState::is_terminal) {
            if let Some(&started) = self.started.get(&txn) {
                self.metrics.latency_us.record(at.since(started).micros());
            }
        }
        self.record(Event {
            at,
            txn: Some(txn),
            actor: actor.to_string(),
            kind: EventKind::StateTransition { from: prev, to: state },
        });
    }

    /// Records the size of one settle run (deliveries + timer rounds).
    pub fn note_settle(&mut self, steps: u64) {
        self.metrics.settle_steps.record(steps);
    }

    /// Drops a settled transaction's per-txn tracking state, returning the
    /// final tallies so the caller can fold them into its archive index.
    /// Global counters and histograms are untouched — they were already
    /// updated when the events happened.
    pub fn retire_txn(&mut self, txn: u64) -> (TxnObs, Option<TxnState>, Option<SimTime>) {
        (
            self.per_txn.remove(&txn).unwrap_or_default(),
            self.last_state.remove(&txn),
            self.started.remove(&txn),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, txn: Option<u64>, kind: EventKind) -> Event {
        Event { at: SimTime(at), txn, actor: "bob".into(), kind }
    }

    fn delivered(from: &str) -> EventKind {
        EventKind::Delivered { from: from.into(), msg: "Transfer".into() }
    }

    #[test]
    fn counters_and_per_txn_partition() {
        let mut o = Obs::new();
        o.record(ev(1, Some(1), delivered("alice")));
        o.record(ev(2, Some(2), delivered("alice")));
        o.record(ev(
            3,
            Some(1),
            EventKind::Rejected {
                from: "alice".into(),
                msg: "Transfer".into(),
                error: ValidationError::StaleSequence { last: 2, got: 1 },
            },
        ));
        o.record(ev(4, None, EventKind::Garbled { from: "alice".into() }));
        o.record(ev(5, Some(2), EventKind::Dropped { from: "alice".into() }));
        o.record(ev(5, Some(2), EventKind::Duplicated { from: "alice".into() }));

        assert_eq!(o.metrics.delivered, 2);
        assert_eq!(o.metrics.rejected, 1);
        assert_eq!(o.metrics.garbled, 1);
        assert_eq!(o.metrics.dropped, 1);
        assert_eq!(o.metrics.duplicated, 1);
        assert_eq!(o.metrics.rejected_by.get("stale-sequence"), Some(&1));
        assert_eq!(o.txns(), vec![1, 2]);
        assert_eq!(o.txn(1), TxnObs { accepted: 1, rejected: 1, ..Default::default() });
        assert_eq!(
            o.txn(2),
            TxnObs { accepted: 1, dropped: 1, duplicated: 1, ..Default::default() }
        );
        // The untagged garbled event is global-only.
        let tallied: u64 = o.txns().iter().map(|&t| o.txn(t).garbled).sum();
        assert_eq!(tallied, 0);
        assert_eq!(o.txn(1).inbox_total(), 2);
    }

    #[test]
    fn ring_evicts_oldest_but_counters_stay_exact() {
        let mut o = Obs::with_capacity(3);
        for i in 0..10 {
            o.record(ev(i, None, delivered("alice")));
        }
        assert_eq!(o.events().len(), 3);
        assert_eq!(o.evicted(), 7);
        assert_eq!(o.metrics.delivered, 10);
        assert_eq!(o.events()[0].at, SimTime(7), "oldest retained is #7");

        o.set_capacity(1);
        assert_eq!(o.events().len(), 1);
        assert_eq!(o.evicted(), 9);
        assert_eq!(o.events()[0].at, SimTime(9));
    }

    #[test]
    fn state_transitions_dedup_and_measure_latency() {
        let mut o = Obs::new();
        o.note_txn_started(1, SimTime(1_000));
        o.note_state(SimTime(1_000), "alice", 1, TxnState::Pending);
        o.note_state(SimTime(2_000), "alice", 1, TxnState::Pending); // no change
        o.note_state(SimTime(51_000), "alice", 1, TxnState::Completed);
        o.note_state(SimTime(60_000), "alice", 1, TxnState::Completed); // no change

        assert_eq!(o.metrics.state_transitions, 2);
        let kinds: Vec<_> = o
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StateTransition { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![(None, TxnState::Pending), (Some(TxnState::Pending), TxnState::Completed),]
        );
        assert_eq!(o.metrics.latency_us.count(), 1);
        assert_eq!(o.metrics.latency_us.max(), Some(50_000));
        // Re-entering a terminal state never records a second latency.
        o.note_state(SimTime(70_000), "alice", 1, TxnState::Failed);
        assert_eq!(o.metrics.latency_us.count(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        for v in [0, 1, 2, 3, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        assert!((h.mean() - (1_000_106.0 / 6.0)).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), Some(0), "values below 32 bucket exactly");
        assert_eq!(h.quantile(1.0), Some(1_000_000), "clamped to exact max");
        assert_eq!(h.quantile(0.5), Some(2), "median is exact in the low region");
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_log_linear_resolution() {
        // Above the exact region quantiles resolve to the 16-sub-bucket
        // grid: relative error stays under 1/16 ≈ 6.25%, where the old
        // log2 buckets could be off by nearly 2×.
        for v in [40u64, 1_000, 50_000, 123_456, 7_000_000] {
            let mut h = Histogram::default();
            h.record(v);
            let q = h.quantile(0.5).expect("non-empty");
            assert!(q >= v, "bucket upper bound is an upper bound: {q} < {v}");
            assert!(
                (q - v) as f64 <= v as f64 / 16.0 + 1.0,
                "resolution worse than a sub-bucket: v={v} q={q}"
            );
        }
        // Distinct latencies land in distinct buckets (the degenerate E10
        // exhibit regression: p50 must be able to differ from p99).
        let mut h = Histogram::default();
        for v in [25_000u64, 25_000, 25_000, 45_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!(p50 < p99, "p50 {p50} must separate from p99 {p99}");
    }

    #[test]
    fn histogram_merge_combines_lanes_exactly() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [1u64, 5, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 1_000_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge equals recording everything in one histogram");
        a.merge(&Histogram::default());
        assert_eq!(a, whole, "merging an empty histogram is the identity");
    }

    #[test]
    fn actor_stats_track_messages_and_ticks() {
        let mut s = ActorStats::default();
        s.note_message(&Ok(Vec::new()));
        s.note_message(&Err(ValidationError::HashMismatch));
        s.note_tick(&[]);
        assert_eq!(s, ActorStats { accepted: 1, rejected: 1, ..Default::default() });
    }
}
