//! The trusted third party — in-line only for the Resolve mode (§4.3).
//!
//! The TTP receives a Resolve request with the initiator's NRO, verifies its
//! genuineness and consistency, forwards the query to the counterparty with
//! a timestamp, relays the reply, and — if the counterparty stays silent
//! past the deadline — tells the initiator the session failed, signing that
//! statement (the initiator's protection in later disputes).
//!
//! Note what the TTP does **not** do: it never stores or forwards the data
//! itself (paper: "normally the size of the data set is very large, which is
//! not feasible to be stored and/or forwarded by the TTP").

use crate::config::ProtocolConfig;
use crate::evidence::{EvidencePlaintext, Flag, VerifiedEvidence};
use crate::message::{Message, ResolveAction};
use crate::principal::{Directory, Principal, PrincipalId};
use crate::session::{Outgoing, ValidationError, Validator};
use std::collections::HashMap;
use tpnr_crypto::ChaChaRng;
use tpnr_net::time::SimTime;

/// A resolve in flight at the TTP.
#[derive(Debug, Clone)]
struct PendingResolve {
    initiator: PrincipalId,
    respondent: PrincipalId,
    deadline: SimTime,
    object: Vec<u8>,
    hash_alg: tpnr_crypto::hash::HashAlg,
    data_hash: Vec<u8>,
}

/// Statistics for the TTP-load experiment (E6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtpStats {
    /// Resolve requests received.
    pub resolves_received: u64,
    /// Resolve requests rejected as inconsistent/forged.
    pub resolves_rejected: u64,
    /// Queries forwarded to respondents.
    pub forwards_sent: u64,
    /// Replies relayed back to initiators.
    pub replies_relayed: u64,
    /// Sessions declared failed after respondent timeout.
    pub failures_declared: u64,
}

/// The TTP actor.
pub struct Ttp {
    me: Principal,
    cfg: ProtocolConfig,
    dir: Directory,
    rng: ChaChaRng,
    validator: Validator,
    pending: HashMap<u64, PendingResolve>,
    /// Counters for experiments.
    pub stats: TtpStats,
    /// Message/tick counters, maintained by the scheduler-facing
    /// [`Actor`](crate::sched::Actor) impl.
    pub actor_stats: crate::obs::ActorStats,
    /// Crash-recovery epochs survived; scales the sequence skip applied on
    /// each restore.
    restarts: u64,
}

impl Ttp {
    /// Creates a TTP actor.
    pub fn new(me: Principal, cfg: ProtocolConfig, dir: Directory, rng: ChaChaRng) -> Self {
        let my_id = me.id();
        Ttp {
            me,
            cfg,
            dir,
            rng,
            validator: Validator::new(my_id, my_id),
            pending: HashMap::new(),
            stats: TtpStats::default(),
            actor_stats: crate::obs::ActorStats::default(),
            restarts: 0,
        }
    }

    /// Crash-recovery epochs this TTP has survived.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// This TTP's principal id.
    pub fn id(&self) -> PrincipalId {
        self.me.id()
    }

    /// Resolves currently waiting on a respondent.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Evicts a settled transaction: drops any (stale) pending-resolve
    /// entry and retires the validator window, so late Resolve replays for
    /// it are refused instead of opening a fresh window.
    pub fn evict_txn(&mut self, txn_id: u64) {
        self.pending.remove(&txn_id);
        self.validator.retire_txn(txn_id);
    }

    /// Earliest respondent deadline among pending resolves (the scheduler's
    /// view of this TTP's pending timers). Replaces the old runners' blind
    /// one-hour clock jumps whenever `pending_count() > 0`.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Handles one incoming message.
    pub fn handle(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        match msg {
            Message::Resolve { plaintext, nro, report } => {
                self.handle_resolve(from, plaintext, nro, report, now)
            }
            Message::ResolveReply { action, plaintext, evidence } => {
                self.handle_reply(from, *action, plaintext, evidence.clone(), now)
            }
            other => Err(ValidationError::UnexpectedFlag(other.plaintext().flag)),
        }
    }

    fn handle_resolve(
        &mut self,
        from: PrincipalId,
        pt: &EvidencePlaintext,
        nro: &VerifiedEvidence,
        _report: &str,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        self.stats.resolves_received += 1;
        if pt.flag != Flag::ResolveRequest {
            self.stats.resolves_rejected += 1;
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        if self.cfg.bind_identities && (pt.sender != from || pt.recipient != self.me.id()) {
            self.stats.resolves_rejected += 1;
            return Err(ValidationError::IdentityMismatch);
        }
        self.validator.check(&self.cfg, pt, None, now).inspect_err(|_e| {
            self.stats.resolves_rejected += 1;
        })?;

        // Genuineness: the attached NRO must be validly signed by the
        // initiator, belong to the same transaction, and name us as TTP.
        // The signature check goes through the batch-capable entry point so
        // every TTP/arbiter evidence check shares one code path; a single
        // token is below the combining threshold and draws no rng bytes.
        let genuine = nro.plaintext.txn_id == pt.txn_id
            && nro.plaintext.sender == pt.sender
            && nro.plaintext.ttp == self.me.id()
            && match self.dir.lookup(&nro.plaintext.sender) {
                Some(pk) => {
                    crate::evidence::reverify_batch(&self.cfg, pk, &[nro], &mut self.rng).is_ok()
                }
                None => false,
            };
        if !genuine {
            self.stats.resolves_rejected += 1;
            return Err(ValidationError::Evidence(crate::evidence::EvidenceError::BadSignature));
        }

        let respondent = nro.plaintext.recipient;
        let fwd_pt = EvidencePlaintext {
            flag: Flag::ResolveForward,
            sender: self.me.id(),
            recipient: respondent,
            ttp: self.me.id(),
            txn_id: pt.txn_id,
            seq: pt.seq + 1,
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object: nro.plaintext.object.clone(),
            hash_alg: pt.hash_alg,
            data_hash: pt.data_hash.clone(),
        };
        self.pending.insert(
            pt.txn_id,
            PendingResolve {
                initiator: pt.sender,
                respondent,
                deadline: now.after(self.cfg.response_timeout),
                object: nro.plaintext.object.clone(),
                hash_alg: pt.hash_alg,
                data_hash: pt.data_hash.clone(),
            },
        );
        self.stats.forwards_sent += 1;
        Ok(vec![Outgoing {
            to: respondent,
            msg: Message::ResolveForward { plaintext: fwd_pt, ttp_timestamp: now },
        }])
    }

    fn handle_reply(
        &mut self,
        from: PrincipalId,
        action: ResolveAction,
        pt: &EvidencePlaintext,
        evidence: Option<crate::evidence::SealedEvidence>,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let pending =
            self.pending.remove(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
        if self.cfg.bind_identities && from != pending.respondent {
            // Not from the party we queried — put it back and refuse.
            self.pending.insert(pt.txn_id, pending);
            return Err(ValidationError::IdentityMismatch);
        }
        self.stats.replies_relayed += 1;
        // A Continue reply is relayed verbatim: its plaintext is the
        // respondent's re-issued receipt and the evidence inside is sealed
        // for the initiator, not for us — the TTP never learns the data or
        // the receipts. A Restart/Failed reply carries no evidence and its
        // plaintext is addressed to us (the respondent answers the forward),
        // so we re-issue it under our own authority, addressed to the
        // initiator; otherwise the initiator's identity binding would reject
        // the relay and re-resolve forever.
        let plaintext = if evidence.is_some() {
            pt.clone()
        } else {
            EvidencePlaintext {
                flag: Flag::ResolveResponse,
                sender: self.me.id(),
                recipient: pending.initiator,
                ttp: self.me.id(),
                txn_id: pt.txn_id,
                seq: u64::MAX / 2, // outside any normal window; carries TTP authority
                nonce: self.rng.next_u64(),
                time_limit: now.after(self.cfg.message_time_limit),
                object: pending.object.clone(),
                hash_alg: pending.hash_alg,
                data_hash: pending.data_hash.clone(),
            }
        };
        Ok(vec![Outgoing {
            to: pending.initiator,
            msg: Message::ResolveReply { action, plaintext, evidence },
        }])
    }

    /// Declares failed any pending resolve whose respondent missed the
    /// deadline ("the TTP will respond to Alice by telling her that this
    /// session is failed and Bob did not respond").
    pub fn poll_timeouts(&mut self, now: SimTime) -> Vec<Outgoing> {
        let expired: Vec<u64> =
            self.pending.iter().filter(|(_, p)| now >= p.deadline).map(|(id, _)| *id).collect();
        let mut out = Vec::new();
        for txn_id in expired {
            let Some(p) = self.pending.remove(&txn_id) else { continue };
            self.stats.failures_declared += 1;
            let pt = EvidencePlaintext {
                flag: Flag::ResolveResponse,
                sender: self.me.id(),
                recipient: p.initiator,
                ttp: self.me.id(),
                txn_id,
                seq: u64::MAX / 2, // outside any normal window; carries TTP authority
                nonce: self.rng.next_u64(),
                time_limit: now.after(self.cfg.message_time_limit),
                object: p.object,
                hash_alg: p.hash_alg,
                data_hash: p.data_hash,
            };
            out.push(Outgoing {
                to: p.initiator,
                msg: Message::ResolveReply {
                    action: ResolveAction::Failed,
                    plaintext: pt,
                    evidence: None,
                },
            });
        }
        out
    }
}

/// Durable image of a [`Ttp`]: the pending-resolve table and validator
/// sequence state. Load statistics stay live (monotone telemetry).
#[derive(Debug, Clone)]
pub struct TtpSnapshot {
    pending: HashMap<u64, PendingResolve>,
    validator: crate::session::ValidatorSnapshot,
    bytes: u64,
}

impl TtpSnapshot {
    /// Approximate serialized size of this snapshot.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl crate::fault::Durable for Ttp {
    type Snapshot = TtpSnapshot;

    fn snapshot(&self) -> TtpSnapshot {
        let mut bytes = self.validator.state_bytes() + 8;
        for p in self.pending.values() {
            bytes += (p.object.len() + p.data_hash.len() + 80) as u64;
        }
        TtpSnapshot { pending: self.pending.clone(), validator: self.validator.snapshot(), bytes }
    }

    fn restore(&mut self, snap: &TtpSnapshot) {
        self.restarts += 1;
        let skip = self.restarts.saturating_mul(crate::fault::SEQ_RECOVERY_SKIP);
        self.pending = snap.pending.clone();
        self.validator.restore_with_skip(&snap.validator, skip);
    }
}

impl crate::sched::Actor for Ttp {
    fn on_message(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let result = self.handle(from, msg, now);
        self.actor_stats.note_message(&result);
        result
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Ttp::next_deadline(self)
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Outgoing> {
        let out = self.poll_timeouts(now);
        self.actor_stats.note_tick(&out);
        out
    }
}
