//! TPNR wire messages.
//!
//! Each message bundles the §4.1 signed plaintext, the sealed evidence, and
//! whatever payload the step carries (the data itself on upload/download).
//! Messages cross the `tpnr-net` simulator as canonical bytes, so the
//! adversary in the attack harnesses manipulates exactly what a real
//! network attacker could.

use crate::evidence::{EvidencePlaintext, SealedEvidence, VerifiedEvidence};
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};
use tpnr_net::time::SimTime;
use tpnr_net::Bytes;

/// Outcome carried by an Abort response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortOutcome {
    /// Bob accepts the cancellation.
    Accept,
    /// Bob rejects (e.g. transaction already completed on his side).
    Reject,
    /// Bob could not validate the abort request and asks Alice to
    /// regenerate it (the paper's "Error" answer).
    Error,
}

impl AbortOutcome {
    fn wire_id(self) -> u8 {
        match self {
            AbortOutcome::Accept => 1,
            AbortOutcome::Reject => 2,
            AbortOutcome::Error => 3,
        }
    }
    fn from_wire_id(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            1 => AbortOutcome::Accept,
            2 => AbortOutcome::Reject,
            3 => AbortOutcome::Error,
            other => return Err(CodecError::BadDiscriminant("abort outcome", other as u64)),
        })
    }
}

/// Action a resolve response announces (paper §4.3: "Bob may agree to
/// continue the transaction; or, he may require Alice to restart").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveAction {
    /// Continue the disrupted transaction.
    Continue,
    /// Restart the session from scratch.
    Restart,
    /// Session failed; TTP reports the counterparty unresponsive.
    Failed,
}

impl ResolveAction {
    fn wire_id(self) -> u8 {
        match self {
            ResolveAction::Continue => 1,
            ResolveAction::Restart => 2,
            ResolveAction::Failed => 3,
        }
    }
    fn from_wire_id(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            1 => ResolveAction::Continue,
            2 => ResolveAction::Restart,
            3 => ResolveAction::Failed,
            other => return Err(CodecError::BadDiscriminant("resolve action", other as u64)),
        })
    }
}

/// Every message that crosses the wire in the TPNR protocol.
// Variant sizes differ because some carry payloads/evidence and some don't;
// messages are built once and moved to the wire, so boxing the large
// variants would only add indirection on the hot encode path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Alice → Bob: upload `data` with evidence (NRO). Also used for
    /// download requests, where `data` is the request description (object
    /// key) rather than bulk payload.
    Transfer {
        /// Signed plaintext.
        plaintext: EvidencePlaintext,
        /// Payload bytes (data on upload; object key on download request).
        /// Shared handle: cloning the message never copies the object.
        data: Bytes,
        /// Sealed NRO.
        evidence: SealedEvidence,
    },
    /// Bob → Alice: receipt with evidence (NRR). On download this carries
    /// the requested data.
    Receipt {
        /// Signed plaintext.
        plaintext: EvidencePlaintext,
        /// Payload bytes (empty on upload receipt; data on download).
        /// Shared handle: cloning the message never copies the object.
        data: Bytes,
        /// Sealed NRR.
        evidence: SealedEvidence,
    },
    /// Alice → Bob: abort the transaction (off-line TTP mode, §4.2).
    Abort {
        /// Signed plaintext (flag = AbortRequest).
        plaintext: EvidencePlaintext,
        /// Sealed abort-NRO.
        evidence: SealedEvidence,
    },
    /// Bob → Alice: response to an abort.
    AbortReply {
        /// Accept / Reject / Error.
        outcome: AbortOutcome,
        /// Signed plaintext (flag = AbortResponse).
        plaintext: EvidencePlaintext,
        /// Sealed abort-NRR.
        evidence: SealedEvidence,
    },
    /// Initiator → TTP: resolve a stuck transaction (§4.3). Carries the
    /// initiator's archived evidence so the TTP can check genuineness.
    Resolve {
        /// Signed plaintext (flag = ResolveRequest).
        plaintext: EvidencePlaintext,
        /// The initiator's NRO for the stuck transaction (already verified
        /// by the initiator when built, re-checked by the TTP).
        nro: VerifiedEvidence,
        /// Free-form anomaly report.
        report: String,
    },
    /// TTP → counterparty: forwarded resolve query with TTP timestamp.
    ResolveForward {
        /// Signed plaintext (flag = ResolveForward, sender = TTP).
        plaintext: EvidencePlaintext,
        /// TTP's receipt timestamp.
        ttp_timestamp: SimTime,
    },
    /// Counterparty → TTP → initiator: resolution.
    ResolveReply {
        /// What happens next.
        action: ResolveAction,
        /// Signed plaintext (flag = ResolveResponse).
        plaintext: EvidencePlaintext,
        /// Sealed NRR for the stuck transaction (present unless `Failed`).
        evidence: Option<SealedEvidence>,
    },
}

impl Message {
    /// The transaction this message belongs to.
    pub fn txn_id(&self) -> u64 {
        self.plaintext().txn_id
    }

    /// The signed plaintext of any variant.
    pub fn plaintext(&self) -> &EvidencePlaintext {
        match self {
            Message::Transfer { plaintext, .. }
            | Message::Receipt { plaintext, .. }
            | Message::Abort { plaintext, .. }
            | Message::AbortReply { plaintext, .. }
            | Message::Resolve { plaintext, .. }
            | Message::ResolveForward { plaintext, .. }
            | Message::ResolveReply { plaintext, .. } => plaintext,
        }
    }

    /// Short label for traces and experiment logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Transfer { .. } => "Transfer",
            Message::Receipt { .. } => "Receipt",
            Message::Abort { .. } => "Abort",
            Message::AbortReply { .. } => "AbortReply",
            Message::Resolve { .. } => "Resolve",
            Message::ResolveForward { .. } => "ResolveForward",
            Message::ResolveReply { .. } => "ResolveReply",
        }
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::Transfer { plaintext, data, evidence } => {
                w.u8(1);
                plaintext.encode(w);
                w.bytes(data);
                evidence.encode(w);
            }
            Message::Receipt { plaintext, data, evidence } => {
                w.u8(2);
                plaintext.encode(w);
                w.bytes(data);
                evidence.encode(w);
            }
            Message::Abort { plaintext, evidence } => {
                w.u8(3);
                plaintext.encode(w);
                evidence.encode(w);
            }
            Message::AbortReply { outcome, plaintext, evidence } => {
                w.u8(4);
                w.u8(outcome.wire_id());
                plaintext.encode(w);
                evidence.encode(w);
            }
            Message::Resolve { plaintext, nro, report } => {
                w.u8(5);
                plaintext.encode(w);
                nro.encode(w);
                w.str(report);
            }
            Message::ResolveForward { plaintext, ttp_timestamp } => {
                w.u8(6);
                plaintext.encode(w);
                w.u64(ttp_timestamp.0);
            }
            Message::ResolveReply { action, plaintext, evidence } => {
                w.u8(7);
                w.u8(action.wire_id());
                plaintext.encode(w);
                match evidence {
                    Some(e) => {
                        w.bool(true);
                        e.encode(w);
                    }
                    None => {
                        w.bool(false);
                    }
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            1 => Message::Transfer {
                plaintext: EvidencePlaintext::decode(r)?,
                data: r.bytes_shared()?,
                evidence: SealedEvidence::decode(r)?,
            },
            2 => Message::Receipt {
                plaintext: EvidencePlaintext::decode(r)?,
                data: r.bytes_shared()?,
                evidence: SealedEvidence::decode(r)?,
            },
            3 => Message::Abort {
                plaintext: EvidencePlaintext::decode(r)?,
                evidence: SealedEvidence::decode(r)?,
            },
            4 => Message::AbortReply {
                outcome: AbortOutcome::from_wire_id(r.u8()?)?,
                plaintext: EvidencePlaintext::decode(r)?,
                evidence: SealedEvidence::decode(r)?,
            },
            5 => Message::Resolve {
                plaintext: EvidencePlaintext::decode(r)?,
                nro: VerifiedEvidence::decode(r)?,
                report: r.str()?,
            },
            6 => Message::ResolveForward {
                plaintext: EvidencePlaintext::decode(r)?,
                ttp_timestamp: SimTime(r.u64()?),
            },
            7 => Message::ResolveReply {
                action: ResolveAction::from_wire_id(r.u8()?)?,
                plaintext: EvidencePlaintext::decode(r)?,
                evidence: if r.bool()? { Some(SealedEvidence::decode(r)?) } else { None },
            },
            other => return Err(CodecError::BadDiscriminant("message", other as u64)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Flag;
    use crate::principal::PrincipalId;
    use tpnr_crypto::hash::HashAlg;

    fn pt(flag: Flag) -> EvidencePlaintext {
        EvidencePlaintext {
            flag,
            sender: PrincipalId([1; 32]),
            recipient: PrincipalId([2; 32]),
            ttp: PrincipalId([3; 32]),
            txn_id: 7,
            seq: 3,
            nonce: 99,
            time_limit: SimTime(123),
            object: b"obj".to_vec(),
            hash_alg: HashAlg::Sha256,
            data_hash: vec![0xaa; 32],
        }
    }

    fn sealed() -> SealedEvidence {
        SealedEvidence { sealed: vec![1, 2, 3, 4] }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Transfer {
                plaintext: pt(Flag::UploadRequest),
                data: b"d".to_vec().into(),
                evidence: sealed(),
            },
            Message::Receipt {
                plaintext: pt(Flag::UploadReceipt),
                data: Bytes::new(),
                evidence: sealed(),
            },
            Message::Abort { plaintext: pt(Flag::AbortRequest), evidence: sealed() },
            Message::AbortReply {
                outcome: AbortOutcome::Accept,
                plaintext: pt(Flag::AbortResponse),
                evidence: sealed(),
            },
            Message::Resolve {
                plaintext: pt(Flag::ResolveRequest),
                nro: VerifiedEvidence {
                    plaintext: pt(Flag::UploadRequest),
                    sig_data_hash: vec![5; 64],
                    sig_plaintext: vec![6; 64],
                },
                report: "no response before timeout".into(),
            },
            Message::ResolveForward {
                plaintext: pt(Flag::ResolveForward),
                ttp_timestamp: SimTime(55),
            },
            Message::ResolveReply {
                action: ResolveAction::Continue,
                plaintext: pt(Flag::ResolveResponse),
                evidence: Some(sealed()),
            },
            Message::ResolveReply {
                action: ResolveAction::Failed,
                plaintext: pt(Flag::ResolveResponse),
                evidence: None,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for m in all_messages() {
            let enc = m.to_wire();
            let dec = Message::from_wire(&enc).unwrap();
            assert_eq!(dec, m, "{}", m.kind());
            assert_eq!(dec.to_wire(), enc, "canonical: {}", m.kind());
        }
    }

    #[test]
    fn transfer_data_decodes_as_a_view_into_the_frame() {
        let m = Message::Transfer {
            plaintext: pt(Flag::UploadRequest),
            data: vec![0x5au8; 8192].into(),
            evidence: sealed(),
        };
        let frame = m.to_wire_bytes();
        let decoded = Message::from_wire_bytes(&frame).unwrap();
        assert_eq!(decoded, m);
        let Message::Transfer { data, .. } = decoded else { unreachable!() };
        assert!(
            data.same_allocation(&frame.slice(0..frame.len())),
            "bulk data must alias the received frame, not be re-allocated"
        );
    }

    #[test]
    fn txn_id_and_kind_accessors() {
        for m in all_messages() {
            assert_eq!(m.txn_id(), 7);
            assert!(!m.kind().is_empty());
        }
    }

    #[test]
    fn unknown_discriminants_rejected() {
        assert!(Message::from_wire(&[0]).is_err());
        assert!(Message::from_wire(&[8]).is_err());
        assert!(AbortOutcome::from_wire_id(0).is_err());
        assert!(ResolveAction::from_wire_id(9).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for m in all_messages() {
            let enc = m.to_wire();
            for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
                assert!(Message::from_wire(&enc[..cut]).is_err(), "{} cut {}", m.kind(), cut);
            }
        }
    }
}
