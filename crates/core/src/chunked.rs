//! Storage audits over Merkle commitments — an extension for the paper's
//! TB-scale setting.
//!
//! With [`crate::config::Commitment::Merkle`], TPNR evidence signs a Merkle
//! root instead of a flat hash. That unlocks **remote integrity audits**:
//! the client challenges the provider to produce a randomly chosen chunk of
//! a stored object together with an inclusion proof, and verifies both
//! against the root inside the NRR it archived at upload time — *without
//! downloading the object*. A provider who lost or tampered with any
//! audited chunk cannot answer; the failed audit plus the signed NRR is
//! arbitration-grade evidence.
//!
//! This is the natural follow-up the paper's §6 gestures at (auditing TB
//! archives where full downloads are impractical) and a precursor of the
//! provable-data-possession line of work.

use crate::client::Client;
use crate::config::{Commitment, ProtocolConfig};
use crate::evidence::Flag;
use crate::provider::Provider;
use crate::session::Payload;
use tpnr_crypto::merkle::{MerkleProof, MerkleTree};
use tpnr_net::codec::Wire;
use tpnr_net::Bytes;

/// A challenge naming one chunk of one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditChallenge {
    /// Object key.
    pub object: Vec<u8>,
    /// Chunk index to prove.
    pub chunk_index: usize,
}

/// The provider's answer: the chunk bytes and the inclusion proof.
#[derive(Debug, Clone)]
pub struct AuditResponse {
    /// Echo of the challenge.
    pub challenge: AuditChallenge,
    /// The chunk of the canonical payload encoding — a zero-copy view into
    /// the provider's encoding buffer, not a per-response copy.
    pub chunk: Bytes,
    /// Merkle path to the committed root.
    pub proof: MerkleProof,
}

/// Why an audit could not be answered or did not verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Protocol is not in Merkle commitment mode.
    NotMerkleMode,
    /// The provider has no such object.
    NoSuchObject,
    /// Chunk index beyond the object.
    IndexOutOfRange,
    /// The client has no archived receipt for that object.
    NoEvidence,
    /// The response failed verification against the signed root.
    ProofRejected,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::NotMerkleMode => write!(f, "commitment scheme is not Merkle"),
            AuditError::NoSuchObject => write!(f, "no such stored object"),
            AuditError::IndexOutOfRange => write!(f, "chunk index out of range"),
            AuditError::NoEvidence => write!(f, "no archived receipt for object"),
            AuditError::ProofRejected => write!(f, "audit proof failed verification"),
        }
    }
}

impl std::error::Error for AuditError {}

impl Provider {
    /// Answers an audit challenge from current storage.
    ///
    /// The tree is rebuilt over the canonical payload bytes — exactly what
    /// the upload evidence committed to — so a provider whose storage
    /// drifted produces a proof that fails at the client.
    pub fn answer_audit(
        &self,
        cfg: &ProtocolConfig,
        challenge: &AuditChallenge,
    ) -> Result<AuditResponse, AuditError> {
        let Commitment::Merkle { chunk_size } = cfg.commitment else {
            return Err(AuditError::NotMerkleMode);
        };
        // The stored object is a shared handle: building the payload bumps
        // a refcount instead of cloning the whole object per audit (the old
        // code copied every byte of a TB-scale archive to answer for one
        // chunk). The canonical encoding is produced once, and the answered
        // chunk is a zero-copy slice of it.
        let data = self.stored(&challenge.object).ok_or(AuditError::NoSuchObject)?;
        let payload = Payload { key: challenge.object.clone(), data: data.clone() };
        let bytes = payload.to_wire_bytes();
        let tree = MerkleTree::build(cfg.hash_alg, &bytes, chunk_size);
        let proof = tree.prove(challenge.chunk_index).ok_or(AuditError::IndexOutOfRange)?;
        let start = challenge.chunk_index * chunk_size;
        let end = (start + chunk_size).min(bytes.len());
        Ok(AuditResponse { challenge: challenge.clone(), chunk: bytes.slice(start..end), proof })
    }
}

impl Client {
    /// Verifies an audit response against the Merkle root inside the NRR
    /// archived for `upload_txn`.
    pub fn verify_audit(
        &self,
        cfg: &ProtocolConfig,
        upload_txn: u64,
        response: &AuditResponse,
    ) -> Result<(), AuditError> {
        if !matches!(cfg.commitment, Commitment::Merkle { .. }) {
            return Err(AuditError::NotMerkleMode);
        }
        let txn = self.txn(upload_txn).ok_or(AuditError::NoEvidence)?;
        let nrr = txn.nrr.as_ref().ok_or(AuditError::NoEvidence)?;
        if nrr.plaintext.flag != Flag::UploadReceipt
            || nrr.plaintext.object != response.challenge.object
        {
            return Err(AuditError::NoEvidence);
        }
        if response.proof.index != response.challenge.chunk_index {
            return Err(AuditError::ProofRejected);
        }
        let root = &nrr.plaintext.data_hash;
        if response.proof.verify(cfg.hash_alg, &response.chunk, root) {
            Ok(())
        } else {
            Err(AuditError::ProofRejected)
        }
    }

    /// How many chunks an archived upload has under the current config
    /// (for choosing random audit indices).
    pub fn audit_chunk_count(&self, cfg: &ProtocolConfig, upload_txn: u64) -> Option<usize> {
        let Commitment::Merkle { chunk_size } = cfg.commitment else { return None };
        let txn = self.txn(upload_txn)?;
        // Canonical payload length: 4-byte key prefix + key + 4-byte data
        // prefix + data. We only know the key here; the data length is not
        // archived, so audits of arbitrary indices rely on the provider's
        // IndexOutOfRange answer plus the proof check. For convenience we
        // recompute from the received payload when present.
        let payload = txn.received.as_ref()?;
        Some(payload.to_wire().len().div_ceil(chunk_size).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TimeoutStrategy;
    use crate::runner::World;
    use crate::session::TxnState;

    const CHUNK: usize = 256;

    fn merkle_world() -> (World, u64) {
        let cfg = ProtocolConfig::full().with_merkle(CHUNK);
        let mut w = World::new(21, cfg);
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let r = w.upload(b"archive/big", data, TimeoutStrategy::AbortFirst);
        assert_eq!(r.outcome, TxnState::Completed);
        (w, r.txn_id)
    }

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::full().with_merkle(CHUNK)
    }

    #[test]
    fn merkle_mode_protocol_roundtrips() {
        let (mut w, up) = merkle_world();
        let down = w.download(b"archive/big", TimeoutStrategy::AbortFirst);
        assert_eq!(down.outcome, TxnState::Completed);
        assert_eq!(down.data.as_ref().unwrap().as_ref().len(), 4000);
        assert_eq!(w.client.verify_download_against_upload(up, down.txn_id), Some(true));
    }

    #[test]
    fn honest_audit_passes_for_every_chunk() {
        let (w, up) = merkle_world();
        // Payload wire = 8 bytes of prefixes + 11-byte key + 4000 data.
        let total_chunks = (8 + 11 + 4000usize).div_ceil(CHUNK);
        for i in 0..total_chunks {
            let challenge = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: i };
            let resp = w.provider.answer_audit(&cfg(), &challenge).unwrap();
            w.client.verify_audit(&cfg(), up, &resp).unwrap_or_else(|e| panic!("chunk {i}: {e}"));
        }
    }

    #[test]
    fn tampered_storage_fails_the_audit() {
        let (mut w, up) = merkle_world();
        let mut data = w.provider.peek_storage(b"archive/big").unwrap().to_vec();
        data[1000] ^= 1; // one silent bit-flip deep inside the object
        w.provider.tamper_storage(b"archive/big", data);

        // The chunk containing the flip fails…
        let bad_index = (8 + 11 + 1000) / CHUNK;
        let challenge = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: bad_index };
        let resp = w.provider.answer_audit(&cfg(), &challenge).unwrap();
        assert_eq!(w.client.verify_audit(&cfg(), up, &resp), Err(AuditError::ProofRejected));
        // …and so does every other chunk: the whole tree root moved, so
        // even intact chunks cannot be proven against the signed root.
        let challenge = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: 0 };
        let resp = w.provider.answer_audit(&cfg(), &challenge).unwrap();
        assert!(w.client.verify_audit(&cfg(), up, &resp).is_err());
    }

    #[test]
    fn audit_requires_merkle_mode() {
        let mut w = World::new(22, ProtocolConfig::full());
        let r = w.upload(b"k", vec![0u8; 100], TimeoutStrategy::AbortFirst);
        let challenge = AuditChallenge { object: b"k".to_vec(), chunk_index: 0 };
        assert_eq!(
            w.provider.answer_audit(&ProtocolConfig::full(), &challenge).unwrap_err(),
            AuditError::NotMerkleMode
        );
        let flat = ProtocolConfig::full();
        let fake = AuditResponse {
            challenge,
            chunk: Bytes::new(),
            proof: MerkleProof { index: 0, siblings: vec![] },
        };
        assert_eq!(w.client.verify_audit(&flat, r.txn_id, &fake), Err(AuditError::NotMerkleMode));
    }

    #[test]
    fn missing_object_and_bad_index_reported() {
        let (w, _) = merkle_world();
        let c = AuditChallenge { object: b"nope".to_vec(), chunk_index: 0 };
        assert_eq!(w.provider.answer_audit(&cfg(), &c).unwrap_err(), AuditError::NoSuchObject);
        let c = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: 10_000 };
        assert_eq!(w.provider.answer_audit(&cfg(), &c).unwrap_err(), AuditError::IndexOutOfRange);
    }

    #[test]
    fn forged_response_index_rejected() {
        let (w, up) = merkle_world();
        let c0 = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: 0 };
        let c1 = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: 1 };
        let mut resp = w.provider.answer_audit(&cfg(), &c1).unwrap();
        // The provider tries to answer challenge 0 with chunk 1's proof.
        resp.challenge = c0;
        assert_eq!(w.client.verify_audit(&cfg(), up, &resp), Err(AuditError::ProofRejected));
    }

    #[test]
    fn audit_without_archived_receipt_rejected() {
        let (w, _) = merkle_world();
        let c = AuditChallenge { object: b"archive/big".to_vec(), chunk_index: 0 };
        let resp = w.provider.answer_audit(&cfg(), &c).unwrap();
        assert_eq!(w.client.verify_audit(&cfg(), 999_999, &resp), Err(AuditError::NoEvidence));
    }
}
