//! Shared session machinery: transaction payloads, outgoing-message
//! addressing, plaintext validation, and the per-transaction replay window.
//!
//! Both state machines (client and provider) funnel every incoming message
//! through [`Validator::check`], which enforces the §5 defences according to
//! the active [`ProtocolConfig`]: identity/direction binding, strictly
//! increasing sequence numbers, and message time limits.

use crate::config::ProtocolConfig;
use crate::evidence::{EvidencePlaintext, Flag};
use crate::principal::PrincipalId;
use std::collections::{BTreeSet, HashMap};
use tpnr_crypto::hash::DigestCache;
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};
use tpnr_net::time::SimTime;
use tpnr_net::Bytes;

/// The payload carried inside a Transfer/Receipt `data` field.
///
/// Hashing the canonical encoding of this structure (rather than the raw
/// data alone) binds the object key to the data under every signature.
///
/// `data` is a shared immutable [`Bytes`] handle: cloning a payload (or the
/// message carrying it) bumps a refcount instead of copying the object, and
/// decoding from a [`Bytes`]-backed frame shares the frame's allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    /// Object key.
    pub key: Vec<u8>,
    /// Object bytes (empty for download requests).
    pub data: Bytes,
}

impl Wire for Payload {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.key);
        w.bytes(&self.data);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Payload { key: r.bytes()?, data: r.bytes_shared()? })
    }
}

impl Payload {
    /// Canonical hash under the configured algorithm.
    pub fn hash(&self, alg: tpnr_crypto::hash::HashAlg) -> Vec<u8> {
        alg.hash(&self.to_wire())
    }

    /// Evidence commitment under the configured scheme: a flat hash, or a
    /// Merkle root over the canonical payload bytes (same length either
    /// way, so it drops into the signature layer unchanged).
    pub fn commit(&self, cfg: &ProtocolConfig) -> Vec<u8> {
        match cfg.commitment {
            crate::config::Commitment::Flat => self.hash(cfg.hash_alg),
            crate::config::Commitment::Merkle { chunk_size } => {
                tpnr_crypto::merkle::MerkleTree::build(cfg.hash_alg, &self.to_wire(), chunk_size)
                    .root()
                    .to_vec()
            }
        }
    }

    /// [`Payload::commit`], memoized on the `data` buffer's allocation
    /// identity.
    ///
    /// The commitment is a pure function of `(key, data, hash_alg,
    /// commitment mode)`; everything but the bulk data is tiny, so it is
    /// folded into the cache key as `aux` bytes (length-prefixed key, so
    /// `key="a", mode tag "b…"` cannot collide with `key="ab"`, plus the
    /// commitment-mode tag). Repeated commitments of the same object —
    /// sign-time, receipt verification, retransmits — then hash it once.
    pub fn commit_cached(&self, cfg: &ProtocolConfig, cache: &mut DigestCache) -> Vec<u8> {
        let (start, end) = self.data.range();
        let mut aux = Vec::with_capacity(self.key.len() + 32);
        aux.extend_from_slice(&(self.key.len() as u64).to_le_bytes());
        aux.extend_from_slice(&self.key);
        match cfg.commitment {
            crate::config::Commitment::Flat => aux.extend_from_slice(b"commit:flat"),
            crate::config::Commitment::Merkle { chunk_size } => {
                aux.extend_from_slice(b"commit:merkle:");
                aux.extend_from_slice(&(chunk_size as u64).to_le_bytes());
            }
        }
        cache.memo(cfg.hash_alg, self.data.backing(), start, end, &aux, |_| self.commit(cfg))
    }
}

/// A message addressed to a principal (the actor APIs return these; the
/// runner maps principal ids to simulator nodes).
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Destination principal.
    pub to: PrincipalId,
    /// The message.
    pub msg: crate::message::Message,
}

/// Client-visible state of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Sent, awaiting the counterparty.
    Pending,
    /// Completed normally (evidence exchanged).
    Completed,
    /// Aborted by mutual agreement.
    Aborted,
    /// Abort was rejected by the counterparty.
    AbortRejected,
    /// Handed to the TTP, awaiting resolution.
    Resolving,
    /// TTP reported the counterparty unresponsive.
    Failed,
}

impl TxnState {
    /// True when no further protocol action is expected.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TxnState::Completed | TxnState::Aborted | TxnState::AbortRejected | TxnState::Failed
        )
    }
}

/// Why an incoming message was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Sender/recipient/TTP identities do not match this conversation.
    IdentityMismatch,
    /// Sequence number not strictly newer than the last accepted one.
    StaleSequence {
        /// Highest sequence already accepted for the transaction.
        last: u64,
        /// The offending message's sequence.
        got: u64,
    },
    /// Received after the embedded time limit.
    Expired {
        /// The limit carried in the message.
        limit: SimTime,
        /// Local receive time.
        now: SimTime,
    },
    /// The flag does not fit the current transaction state.
    UnexpectedFlag(Flag),
    /// The data hash in the plaintext does not match the payload.
    HashMismatch,
    /// Evidence failed to open/verify.
    Evidence(crate::evidence::EvidenceError),
    /// Unknown transaction.
    UnknownTxn(u64),
    /// Signer's public key unavailable/unauthenticated.
    NoKey(PrincipalId),
    /// Transaction settled and evicted to the archived-evidence log; live
    /// protocol traffic for it is refused (arbitration reads the archive).
    ArchivedTransaction(u64),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::IdentityMismatch => write!(f, "identity binding mismatch"),
            ValidationError::StaleSequence { last, got } => {
                write!(f, "stale sequence: last accepted {last}, got {got}")
            }
            ValidationError::Expired { limit, now } => {
                write!(f, "message expired (limit {} < now {})", limit.0, now.0)
            }
            ValidationError::UnexpectedFlag(flag) => write!(f, "unexpected flag {flag:?}"),
            ValidationError::HashMismatch => write!(f, "payload hash mismatch"),
            ValidationError::Evidence(e) => write!(f, "evidence error: {e}"),
            ValidationError::UnknownTxn(id) => write!(f, "unknown transaction {id}"),
            ValidationError::NoKey(id) => write!(f, "no authenticated key for {}", id.short_hex()),
            ValidationError::ArchivedTransaction(id) => {
                write!(f, "transaction {id} is settled and archived")
            }
        }
    }
}

impl ValidationError {
    /// Stable kebab-case variant label, used as the key of the per-variant
    /// rejection counters in [`crate::obs::Metrics::rejected_by`] and in
    /// JSONL exports (payload details stay out of the key so counts
    /// aggregate across transactions).
    pub fn variant(&self) -> &'static str {
        match self {
            ValidationError::IdentityMismatch => "identity-mismatch",
            ValidationError::StaleSequence { .. } => "stale-sequence",
            ValidationError::Expired { .. } => "expired",
            ValidationError::UnexpectedFlag(_) => "unexpected-flag",
            ValidationError::HashMismatch => "hash-mismatch",
            ValidationError::Evidence(_) => "evidence",
            ValidationError::UnknownTxn(_) => "unknown-txn",
            ValidationError::NoKey(_) => "no-key",
            ValidationError::ArchivedTransaction(_) => "archived-transaction",
        }
    }
}

impl std::error::Error for ValidationError {}

/// Per-conversation replay window and identity expectations.
///
/// Receive windows are scoped per `(transaction, sender)` direction: each
/// sender numbers its own messages 1, 2, 3 … within a transaction, and the
/// receiver only accepts strictly increasing numbers from that sender. This
/// is what defeats replay (§5.4) without tripping over lost receipts.
pub struct Validator {
    /// Our own id (expected `recipient`).
    pub me: PrincipalId,
    /// Agreed TTP id (expected `ttp`).
    pub ttp: PrincipalId,
    /// Highest accepted sequence per (transaction, sender).
    last_recv: HashMap<(u64, PrincipalId), u64>,
    /// Our own outgoing counter per transaction.
    send_seq: HashMap<u64, u64>,
    /// Post-restore floor below which no sequence number is ever handed
    /// out again. Runtime state, deliberately NOT part of the snapshot:
    /// it encodes how many times this principal has restarted, which the
    /// crash itself must not be able to erase.
    seq_floor: u64,
    /// Transactions retired to the archived-evidence log. Their per-sender
    /// windows and send counters are gone (that is the point of eviction),
    /// so live traffic for them is refused outright instead of falling back
    /// to a fresh — and therefore replayable — window.
    archived: BTreeSet<u64>,
}

impl Validator {
    /// Fresh validator for a principal.
    pub fn new(me: PrincipalId, ttp: PrincipalId) -> Self {
        Validator {
            me,
            ttp,
            last_recv: HashMap::new(),
            send_seq: HashMap::new(),
            seq_floor: 0,
            archived: BTreeSet::new(),
        }
    }

    /// Validates an incoming plaintext under the active config.
    ///
    /// `expected_sender` of `None` accepts any sender (provider accepting
    /// new clients); `Some(id)` pins the conversation partner.
    pub fn check(
        &mut self,
        cfg: &ProtocolConfig,
        pt: &EvidencePlaintext,
        expected_sender: Option<PrincipalId>,
        now: SimTime,
    ) -> Result<(), ValidationError> {
        if cfg.bind_identities {
            if pt.recipient != self.me || pt.ttp != self.ttp {
                return Err(ValidationError::IdentityMismatch);
            }
            if let Some(sender) = expected_sender {
                if pt.sender != sender {
                    return Err(ValidationError::IdentityMismatch);
                }
            }
        }
        if cfg.enforce_time_limits && now > pt.time_limit {
            return Err(ValidationError::Expired { limit: pt.time_limit, now });
        }
        if self.archived.contains(&pt.txn_id) {
            return Err(ValidationError::ArchivedTransaction(pt.txn_id));
        }
        if cfg.check_sequence_numbers {
            let key = (pt.txn_id, pt.sender);
            let last = self.last_recv.get(&key).copied().unwrap_or(0);
            if pt.seq <= last {
                return Err(ValidationError::StaleSequence { last, got: pt.seq });
            }
            self.last_recv.insert(key, pt.seq);
        }
        Ok(())
    }

    /// Highest sequence accepted from `sender` within a transaction.
    pub fn last_seq(&self, txn_id: u64, sender: PrincipalId) -> u64 {
        self.last_recv.get(&(txn_id, sender)).copied().unwrap_or(0)
    }

    /// Allocates the next outgoing sequence number for a transaction
    /// (paper: "the sequence number increases one by one").
    ///
    /// Saturates at `u64::MAX` instead of wrapping: a wrapped counter would
    /// restart at 1 and every subsequent message would be rejected as a
    /// replay by the peer's strictly-increasing window — saturation keeps
    /// the last message valid and makes the exhaustion observable (the
    /// counter stops moving) rather than a silent self-DoS.
    pub fn alloc_seq(&mut self, txn_id: u64) -> u64 {
        let cur = self.send_seq.get(&txn_id).copied().unwrap_or(0).max(self.seq_floor);
        let next = cur.saturating_add(1);
        self.send_seq.insert(txn_id, next);
        next
    }

    /// Drops a settled transaction's replay window and send counter,
    /// remembering only its id in the compact archived set. Live traffic
    /// for the transaction is rejected from then on
    /// ([`ValidationError::ArchivedTransaction`]) — without the tombstone a
    /// late replay would be greeted by a fresh window and accepted.
    pub fn retire_txn(&mut self, txn_id: u64) {
        self.last_recv.retain(|&(txn, _), _| txn != txn_id);
        self.send_seq.remove(&txn_id);
        self.archived.insert(txn_id);
    }

    /// Transactions retired so far.
    pub fn archived_count(&self) -> usize {
        self.archived.len()
    }

    /// Captures the replay-window and send-counter state for a durable
    /// snapshot (crash-recovery subsystem).
    pub fn snapshot(&self) -> ValidatorSnapshot {
        ValidatorSnapshot {
            last_recv: self.last_recv.clone(),
            send_seq: self.send_seq.clone(),
            archived: self.archived.clone(),
        }
    }

    /// Restores from a snapshot, advancing every send counter by `skip`.
    ///
    /// A crash may lose sends made after the snapshot (the dirty window);
    /// replaying those sequence numbers would be rejected by peers'
    /// strictly-increasing windows — or worse, collide with evidence already
    /// sealed under them. Skipping ahead by more than the dirty window could
    /// have consumed guarantees freshness. Saturating, like `alloc_seq`.
    pub fn restore_with_skip(&mut self, snap: &ValidatorSnapshot, skip: u64) {
        self.last_recv = snap.last_recv.clone();
        self.send_seq =
            snap.send_seq.iter().map(|(txn, seq)| (*txn, seq.saturating_add(skip))).collect();
        self.archived = snap.archived.clone();
        // Transactions born inside the dirty window have no snapshot entry
        // at all; the floor keeps their numbering from restarting at 1.
        self.seq_floor = self.seq_floor.max(skip);
    }

    /// Approximate serialized size of the validator state, for snapshot
    /// accounting: key (8 + 32) + value (8) per receive window entry,
    /// key (8) + value (8) per send counter, 8 per archived tombstone.
    pub fn state_bytes(&self) -> u64 {
        (self.last_recv.len() * 48 + self.send_seq.len() * 16 + self.archived.len() * 8) as u64
    }
}

/// Durable image of a [`Validator`]'s sequence state (private fields stay
/// private; this is the only way to persist/restore them).
#[derive(Debug, Clone)]
pub struct ValidatorSnapshot {
    last_recv: HashMap<(u64, PrincipalId), u64>,
    send_seq: HashMap<u64, u64>,
    archived: BTreeSet<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, ProtocolConfig};
    use tpnr_crypto::hash::HashAlg;

    fn pt(sender: [u8; 8], txn: u64, seq: u64, limit: u64) -> EvidencePlaintext {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&sender);
        EvidencePlaintext {
            flag: Flag::UploadRequest,
            sender: PrincipalId(s),
            recipient: PrincipalId([9; 32]),
            ttp: PrincipalId([7; 32]),
            txn_id: txn,
            seq,
            nonce: 1,
            time_limit: SimTime(limit),
            object: b"k".to_vec(),
            hash_alg: HashAlg::Sha256,
            data_hash: vec![0; 32],
        }
    }

    fn validator() -> Validator {
        Validator::new(PrincipalId([9; 32]), PrincipalId([7; 32]))
    }

    #[test]
    fn accepts_well_formed_in_order() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        let p = pt(*b"alice\0\0\0", 1, 1, 100);
        let alice = p.sender;
        v.check(&cfg, &p, None, SimTime(50)).unwrap();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 2, 100), None, SimTime(60)).unwrap();
        assert_eq!(v.last_seq(1, alice), 2);
    }

    #[test]
    fn windows_are_per_sender() {
        // Bob's seq 1 is accepted even after Alice's seq 5: directions are
        // independent, which is what keeps lost-receipt recovery working.
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 5, 100), None, SimTime(0)).unwrap();
        v.check(&cfg, &pt(*b"bob\0\0\0\0\0", 1, 1, 100), None, SimTime(0)).unwrap();
    }

    #[test]
    fn alloc_seq_is_monotonic_per_txn() {
        let mut v = validator();
        assert_eq!(v.alloc_seq(1), 1);
        assert_eq!(v.alloc_seq(1), 2);
        assert_eq!(v.alloc_seq(2), 1);
    }

    #[test]
    fn alloc_seq_saturates_at_u64_max() {
        // A counter one step from the edge must not wrap to 0: a wrapped
        // counter restarts at 1, and every message after that is rejected
        // as stale by the peer's strictly-increasing window.
        let mut v = validator();
        v.send_seq.insert(7, u64::MAX - 1);
        assert_eq!(v.alloc_seq(7), u64::MAX);
        assert_eq!(v.alloc_seq(7), u64::MAX, "exhausted counter holds, never wraps");
        assert_eq!(v.alloc_seq(7), u64::MAX);
    }

    #[test]
    fn snapshot_restore_skips_send_counters_but_keeps_receive_windows() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        assert_eq!(v.alloc_seq(1), 1);
        assert_eq!(v.alloc_seq(1), 2);
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 3, 100), None, SimTime(0)).unwrap();
        let snap = v.snapshot();
        // Dirty-window sends lost by the crash.
        assert_eq!(v.alloc_seq(1), 3);
        assert_eq!(v.alloc_seq(1), 4);
        v.restore_with_skip(&snap, 1 << 16);
        // Receive window survives unchanged; send counter jumps past
        // anything the dirty window could have used.
        let mut alice = [0u8; 32];
        alice[..8].copy_from_slice(b"alice\0\0\0");
        assert_eq!(v.last_seq(1, PrincipalId(alice)), 3);
        assert_eq!(v.alloc_seq(1), 2 + (1 << 16) + 1);
    }

    #[test]
    fn restore_with_skip_saturates() {
        let mut v = validator();
        v.send_seq.insert(7, u64::MAX - 10);
        let snap = v.snapshot();
        v.restore_with_skip(&snap, 1 << 16);
        assert_eq!(v.alloc_seq(7), u64::MAX);
    }

    #[test]
    fn receive_window_at_u64_max_rejects_everything_after() {
        // Once a peer has spent seq u64::MAX, no strictly-greater number
        // exists: the window closes rather than reopening at small values.
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, u64::MAX, 100), None, SimTime(0)).unwrap();
        let err =
            v.check(&cfg, &pt(*b"alice\0\0\0", 1, u64::MAX, 100), None, SimTime(0)).unwrap_err();
        assert_eq!(err, ValidationError::StaleSequence { last: u64::MAX, got: u64::MAX });
        let err = v.check(&cfg, &pt(*b"alice\0\0\0", 1, 1, 100), None, SimTime(0)).unwrap_err();
        assert_eq!(err, ValidationError::StaleSequence { last: u64::MAX, got: 1 });
    }

    #[test]
    fn replay_rejected() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 1, 100), None, SimTime(0)).unwrap();
        let err = v.check(&cfg, &pt(*b"alice\0\0\0", 1, 1, 100), None, SimTime(0)).unwrap_err();
        assert_eq!(err, ValidationError::StaleSequence { last: 1, got: 1 });
    }

    #[test]
    fn replay_accepted_when_ablated() {
        let cfg = ProtocolConfig::ablated(Ablation::NoSequenceNumbers);
        let mut v = validator();
        let p = pt(*b"alice\0\0\0", 1, 1, 100);
        v.check(&cfg, &p, None, SimTime(0)).unwrap();
        v.check(&cfg, &p, None, SimTime(0)).unwrap();
    }

    #[test]
    fn wrong_recipient_or_ttp_rejected() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        let mut p = pt(*b"alice\0\0\0", 1, 1, 100);
        p.recipient = PrincipalId([1; 32]);
        assert_eq!(v.check(&cfg, &p, None, SimTime(0)), Err(ValidationError::IdentityMismatch));
        let mut p = pt(*b"alice\0\0\0", 1, 1, 100);
        p.ttp = PrincipalId([1; 32]);
        assert_eq!(v.check(&cfg, &p, None, SimTime(0)), Err(ValidationError::IdentityMismatch));
    }

    #[test]
    fn pinned_sender_enforced() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        let p = pt(*b"mallory\0", 1, 1, 100);
        let alice = pt(*b"alice\0\0\0", 0, 0, 0).sender;
        assert_eq!(
            v.check(&cfg, &p, Some(alice), SimTime(0)),
            Err(ValidationError::IdentityMismatch)
        );
    }

    #[test]
    fn expiry_enforced_and_ablatable() {
        let full = ProtocolConfig::full();
        let mut v = validator();
        let p = pt(*b"alice\0\0\0", 1, 1, 100);
        assert!(matches!(
            v.check(&full, &p, None, SimTime(101)),
            Err(ValidationError::Expired { .. })
        ));
        let ablated = ProtocolConfig::ablated(Ablation::NoTimeLimits);
        let mut v = validator();
        v.check(&ablated, &p, None, SimTime(1_000_000)).unwrap();
    }

    #[test]
    fn sequence_isolated_per_txn() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 5, 100), None, SimTime(0)).unwrap();
        // Different transaction starts its own window.
        v.check(&cfg, &pt(*b"alice\0\0\0", 2, 1, 100), None, SimTime(0)).unwrap();
    }

    #[test]
    fn retired_txn_rejects_live_traffic_and_frees_window_state() {
        let cfg = ProtocolConfig::full();
        let mut v = validator();
        v.check(&cfg, &pt(*b"alice\0\0\0", 1, 1, 100), None, SimTime(0)).unwrap();
        v.alloc_seq(1);
        let before = v.state_bytes();
        v.retire_txn(1);
        assert!(v.state_bytes() < before, "tombstone is smaller than the window it replaces");
        assert_eq!(v.archived_count(), 1);
        let err = v.check(&cfg, &pt(*b"alice\0\0\0", 1, 2, 100), None, SimTime(0)).unwrap_err();
        assert_eq!(err, ValidationError::ArchivedTransaction(1));
        assert_eq!(err.variant(), "archived-transaction");
        // Other transactions are untouched.
        v.check(&cfg, &pt(*b"alice\0\0\0", 2, 1, 100), None, SimTime(0)).unwrap();
        // The tombstone survives crash recovery: without it, a restored
        // actor would hand a late replay a fresh window.
        let snap = v.snapshot();
        let mut restored = validator();
        restored.restore_with_skip(&snap, 1 << 16);
        assert_eq!(
            restored.check(&cfg, &pt(*b"alice\0\0\0", 1, 5, 100), None, SimTime(0)),
            Err(ValidationError::ArchivedTransaction(1))
        );
    }

    #[test]
    fn payload_roundtrip_and_hash_binds_key() {
        let p1 = Payload { key: b"k1".to_vec(), data: b"d".to_vec().into() };
        let p2 = Payload { key: b"k2".to_vec(), data: b"d".to_vec().into() };
        assert_eq!(Payload::from_wire(&p1.to_wire()).unwrap(), p1);
        assert_ne!(p1.hash(HashAlg::Sha256), p2.hash(HashAlg::Sha256));
    }

    #[test]
    fn payload_decode_from_bytes_frame_shares_the_allocation() {
        let p = Payload { key: b"k".to_vec(), data: vec![0xabu8; 4096].into() };
        let frame = p.to_wire_bytes();
        let decoded = Payload::from_wire_bytes(&frame).unwrap();
        assert_eq!(decoded, p);
        assert!(
            decoded.data.same_allocation(&frame.slice(0..frame.len())),
            "decoded payload data must be a view into the frame, not a copy"
        );
    }

    #[test]
    fn commit_cached_matches_commit_and_discriminates_key_and_mode() {
        use crate::config::Commitment;
        let mut cache = tpnr_crypto::hash::DigestCache::new(16);
        let data: tpnr_net::Bytes = vec![7u8; 2048].into();
        let p1 = Payload { key: b"k1".to_vec(), data: data.clone() };
        let p2 = Payload { key: b"k2".to_vec(), data: data.clone() };
        let flat = ProtocolConfig::full();
        let merkle =
            ProtocolConfig { commitment: Commitment::Merkle { chunk_size: 256 }, ..flat.clone() };

        assert_eq!(p1.commit_cached(&flat, &mut cache), p1.commit(&flat));
        assert_eq!(cache.misses(), 1);
        // Replay is answered from the memo.
        assert_eq!(p1.commit_cached(&flat, &mut cache), p1.commit(&flat));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same data allocation, different key or commitment mode: distinct
        // entries, never a cross-hit.
        assert_eq!(p2.commit_cached(&flat, &mut cache), p2.commit(&flat));
        assert_eq!(p1.commit_cached(&merkle, &mut cache), p1.commit(&merkle));
        assert_eq!(cache.misses(), 3);
        assert_ne!(p1.commit(&flat), p2.commit(&flat));
        assert_ne!(p1.commit(&flat), p1.commit(&merkle));
    }

    #[test]
    fn terminal_states() {
        assert!(TxnState::Completed.is_terminal());
        assert!(TxnState::Aborted.is_terminal());
        assert!(TxnState::AbortRejected.is_terminal());
        assert!(TxnState::Failed.is_terminal());
        assert!(!TxnState::Pending.is_terminal());
        assert!(!TxnState::Resolving.is_terminal());
    }
}
