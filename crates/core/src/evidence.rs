//! Non-repudiation evidence — paper §4.1.
//!
//! Every TPNR transmission attaches evidence. The signed *plaintext* carries
//! a flag labelling the process, the IDs of sender / recipient / TTP, the
//! transaction id, a random nonce and a monotonically increasing sequence
//! number (anti-replay), a time limit (anti-timeliness), and the hash of the
//! data. The evidence proper is
//!
//! ```text
//!   Evidence = Encrypt_pk(recipient){ Sign_sk(sender)(H(data)),
//!                                     Sign_sk(sender)(H(plaintext)) }
//! ```
//!
//! Alice's evidence is the **NRO** (non-repudiation of origin); Bob's is the
//! **NRR** (non-repudiation of receipt). Once opened and verified, evidence
//! is kept in [`VerifiedEvidence`] form — exactly what a party later submits
//! to the arbitrator, who can check the signatures with public keys alone.

use crate::config::ProtocolConfig;
use crate::principal::{Principal, PrincipalId};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::{envelope, ChaChaRng, CryptoError, RsaPublicKey};
use tpnr_net::codec::{CodecError, Reader, Wire, Writer};
use tpnr_net::time::SimTime;

/// Message/process flag (paper: "a flag to label the process").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// Upload data transfer (Alice → Bob carries data + NRO).
    UploadRequest,
    /// Upload receipt (Bob → Alice carries NRR).
    UploadReceipt,
    /// Download request (Alice → Bob, carries NRO over the request).
    DownloadRequest,
    /// Download response (Bob → Alice carries data + NRR).
    DownloadResponse,
    /// Abort request (Alice → Bob).
    AbortRequest,
    /// Abort accept/reject (Bob → Alice).
    AbortResponse,
    /// Resolve request (→ TTP).
    ResolveRequest,
    /// Resolve forward (TTP → counterparty).
    ResolveForward,
    /// Resolve response (counterparty → TTP → initiator).
    ResolveResponse,
}

impl Flag {
    fn wire_id(self) -> u8 {
        match self {
            Flag::UploadRequest => 1,
            Flag::UploadReceipt => 2,
            Flag::DownloadRequest => 3,
            Flag::DownloadResponse => 4,
            Flag::AbortRequest => 5,
            Flag::AbortResponse => 6,
            Flag::ResolveRequest => 7,
            Flag::ResolveForward => 8,
            Flag::ResolveResponse => 9,
        }
    }

    fn from_wire_id(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            1 => Flag::UploadRequest,
            2 => Flag::UploadReceipt,
            3 => Flag::DownloadRequest,
            4 => Flag::DownloadResponse,
            5 => Flag::AbortRequest,
            6 => Flag::AbortResponse,
            7 => Flag::ResolveRequest,
            8 => Flag::ResolveForward,
            9 => Flag::ResolveResponse,
            other => return Err(CodecError::BadDiscriminant("flag", other as u64)),
        })
    }
}

/// The signed plaintext of §4.1 — every field the paper enumerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidencePlaintext {
    /// Process label.
    pub flag: Flag,
    /// Sender's principal id.
    pub sender: PrincipalId,
    /// Recipient's principal id.
    pub recipient: PrincipalId,
    /// The TTP both parties agreed on.
    pub ttp: PrincipalId,
    /// Transaction this message belongs to.
    pub txn_id: u64,
    /// Per-transaction sequence number ("increases one by one").
    pub seq: u64,
    /// Random number against replay.
    pub nonce: u64,
    /// Latest acceptable reception time (§5.5).
    pub time_limit: SimTime,
    /// The stored-object key this transaction concerns (binds upload and
    /// download evidence to the same object at arbitration time; an
    /// engineering extension of the paper's "IDs … for convenience" list).
    pub object: Vec<u8>,
    /// Hash algorithm for `data_hash`.
    pub hash_alg: HashAlg,
    /// Hash of the transferred data (or of the request being acknowledged).
    pub data_hash: Vec<u8>,
}

impl Wire for EvidencePlaintext {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.flag.wire_id());
        w.fixed(&self.sender.0);
        w.fixed(&self.recipient.0);
        w.fixed(&self.ttp.0);
        w.u64(self.txn_id);
        w.u64(self.seq);
        w.u64(self.nonce);
        w.u64(self.time_limit.0);
        w.bytes(&self.object);
        w.u8(self.hash_alg.wire_id());
        w.bytes(&self.data_hash);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EvidencePlaintext {
            flag: Flag::from_wire_id(r.u8()?)?,
            sender: PrincipalId(r.array::<32>()?),
            recipient: PrincipalId(r.array::<32>()?),
            ttp: PrincipalId(r.array::<32>()?),
            txn_id: r.u64()?,
            seq: r.u64()?,
            nonce: r.u64()?,
            time_limit: SimTime(r.u64()?),
            object: r.bytes()?,
            hash_alg: HashAlg::from_wire_id(r.u8()?)
                .ok_or(CodecError::BadDiscriminant("hash alg", 0))?,
            data_hash: r.bytes()?,
        })
    }
}

impl EvidencePlaintext {
    /// Canonical hash of the plaintext (what the second signature covers).
    pub fn digest(&self) -> Vec<u8> {
        self.hash_alg.hash(&self.to_wire())
    }
}

/// Sealed evidence as it travels: encrypted for the recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedEvidence {
    /// Hybrid envelope over the two signatures.
    pub sealed: Vec<u8>,
}

impl Wire for SealedEvidence {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.sealed);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SealedEvidence { sealed: r.bytes()? })
    }
}

/// Evidence after the recipient opened and verified it; this is the durable
/// artifact each party archives and later shows the arbitrator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedEvidence {
    /// The plaintext the signatures commit to.
    pub plaintext: EvidencePlaintext,
    /// `Sign_sender(H(data))`.
    pub sig_data_hash: Vec<u8>,
    /// `Sign_sender(H(plaintext))`.
    pub sig_plaintext: Vec<u8>,
}

impl Wire for VerifiedEvidence {
    fn encode(&self, w: &mut Writer) {
        self.plaintext.encode(w);
        w.bytes(&self.sig_data_hash);
        w.bytes(&self.sig_plaintext);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VerifiedEvidence {
            plaintext: EvidencePlaintext::decode(r)?,
            sig_data_hash: r.bytes()?,
            sig_plaintext: r.bytes()?,
        })
    }
}

/// Evidence-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvidenceError {
    /// Decryption failed (not for us / corrupted).
    Unsealable,
    /// A signature failed verification.
    BadSignature,
    /// The signer's key is not in the authenticated directory.
    UnknownSigner,
    /// Structural decode failure.
    Malformed,
    /// Crypto subsystem failure during construction.
    Crypto(CryptoError),
}

impl std::fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceError::Unsealable => write!(f, "cannot open sealed evidence"),
            EvidenceError::BadSignature => write!(f, "evidence signature invalid"),
            EvidenceError::UnknownSigner => write!(f, "signer not in directory"),
            EvidenceError::Malformed => write!(f, "malformed evidence"),
            EvidenceError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for EvidenceError {}

/// The sign step of evidence construction: `(Sign(H(data)), Sign(H(pt)))`.
///
/// With `require_signatures` ablated (see [`ProtocolConfig`]), the
/// "signatures" degrade to the bare hashes — the structure survives but
/// carries no non-repudiation, which is what the E3 ablation experiment
/// demonstrates.
pub fn sign_pair(
    cfg: &ProtocolConfig,
    sender: &Principal,
    plaintext: &EvidencePlaintext,
) -> Result<(Vec<u8>, Vec<u8>), EvidenceError> {
    if cfg.require_signatures {
        let s1 = sender
            .keys
            .private
            .sign_prehashed(plaintext.hash_alg, &plaintext.data_hash)
            .map_err(EvidenceError::Crypto)?;
        let s2 = sender
            .keys
            .private
            .sign_prehashed(plaintext.hash_alg, &plaintext.digest())
            .map_err(EvidenceError::Crypto)?;
        Ok((s1, s2))
    } else {
        Ok((plaintext.data_hash.clone(), plaintext.digest()))
    }
}

/// The encrypt step: wrap an already-signed pair for the recipient. This
/// is the *only* way (outside this module) to obtain a [`SealedEvidence`],
/// so sealing without signing first is unrepresentable — the lint rule
/// EVIDENCE-CTOR enforces that callers cannot bypass it with a struct
/// literal.
pub fn seal_signatures(
    recipient_pk: &RsaPublicKey,
    rng: &mut ChaChaRng,
    sig_data_hash: &[u8],
    sig_plaintext: &[u8],
) -> Result<SealedEvidence, EvidenceError> {
    let mut w = Writer::new();
    w.bytes(sig_data_hash);
    w.bytes(sig_plaintext);
    let body = w.finish_vec();
    let sealed = envelope::seal(recipient_pk, rng, &body).map_err(EvidenceError::Crypto)?;
    Ok(SealedEvidence { sealed })
}

/// Builds sealed evidence: sign the data hash and the plaintext hash with
/// the sender's key, then encrypt both signatures for the recipient —
/// sign-then-encrypt, in that order (paper §4.1).
pub fn seal(
    cfg: &ProtocolConfig,
    sender: &Principal,
    recipient_pk: &RsaPublicKey,
    plaintext: &EvidencePlaintext,
    rng: &mut ChaChaRng,
) -> Result<SealedEvidence, EvidenceError> {
    let (sig_data_hash, sig_plaintext) = sign_pair(cfg, sender, plaintext)?;
    seal_signatures(recipient_pk, rng, &sig_data_hash, &sig_plaintext)
}

/// Builds the sealed evidence for the peer **and** the sender's own archived
/// copy from a single [`sign_pair`] call.
///
/// Senders need both artifacts for every transfer. Calling [`seal`] and
/// [`own_evidence`] separately runs the sign step twice — two RSA private
/// exponentiations and two canonical-plaintext digests for identical
/// signatures (PKCS#1 v1.5 signing is deterministic). This constructor is
/// the hot-path variant: sign once, seal those signatures, archive the
/// same ones.
pub fn seal_and_own(
    cfg: &ProtocolConfig,
    sender: &Principal,
    recipient_pk: &RsaPublicKey,
    plaintext: &EvidencePlaintext,
    rng: &mut ChaChaRng,
) -> Result<(SealedEvidence, VerifiedEvidence), EvidenceError> {
    let (sig_data_hash, sig_plaintext) = sign_pair(cfg, sender, plaintext)?;
    let sealed = seal_signatures(recipient_pk, rng, &sig_data_hash, &sig_plaintext)?;
    let own = VerifiedEvidence { plaintext: plaintext.clone(), sig_data_hash, sig_plaintext };
    Ok((sealed, own))
}

/// A sender's own archived copy of the evidence it just produced: the same
/// signatures it sealed for the peer, kept in verified form for later
/// arbitration. (The sender signed them itself, so no verification pass is
/// needed — but they must still come from [`sign_pair`], never be forged
/// by struct literal.)
pub fn own_evidence(
    cfg: &ProtocolConfig,
    sender: &Principal,
    plaintext: &EvidencePlaintext,
) -> Result<VerifiedEvidence, EvidenceError> {
    let (sig_data_hash, sig_plaintext) = sign_pair(cfg, sender, plaintext)?;
    Ok(VerifiedEvidence { plaintext: plaintext.clone(), sig_data_hash, sig_plaintext })
}

/// Opens sealed evidence with the recipient's private key and verifies both
/// signatures against the (separately received) plaintext.
pub fn open_and_verify(
    cfg: &ProtocolConfig,
    recipient: &Principal,
    sender_pk: &RsaPublicKey,
    plaintext: &EvidencePlaintext,
    sealed: &SealedEvidence,
) -> Result<VerifiedEvidence, EvidenceError> {
    let body = envelope::open(&recipient.keys.private, &sealed.sealed)
        .map_err(|_| EvidenceError::Unsealable)?;
    let mut r = Reader::new(&body);
    let sig_data_hash = r.bytes().map_err(|_| EvidenceError::Malformed)?;
    let sig_plaintext = r.bytes().map_err(|_| EvidenceError::Malformed)?;
    r.expect_end().map_err(|_| EvidenceError::Malformed)?;

    verify_signatures(cfg, sender_pk, plaintext, &sig_data_hash, &sig_plaintext)?;
    Ok(VerifiedEvidence { plaintext: plaintext.clone(), sig_data_hash, sig_plaintext })
}

/// Signature check shared by the recipient and the arbitrator.
pub fn verify_signatures(
    cfg: &ProtocolConfig,
    sender_pk: &RsaPublicKey,
    plaintext: &EvidencePlaintext,
    sig_data_hash: &[u8],
    sig_plaintext: &[u8],
) -> Result<(), EvidenceError> {
    let pt_digest = plaintext.digest();
    if cfg.require_signatures {
        sender_pk
            .verify_prehashed(plaintext.hash_alg, &plaintext.data_hash, sig_data_hash)
            .map_err(|_| EvidenceError::BadSignature)?;
        sender_pk
            .verify_prehashed(plaintext.hash_alg, &pt_digest, sig_plaintext)
            .map_err(|_| EvidenceError::BadSignature)?;
        Ok(())
    } else {
        // Ablated: "verification" only compares hashes — forgeable by
        // anyone. Still constant-time: even degraded comparisons must not
        // leak where the bytes diverge.
        let data_ok = tpnr_crypto::ct::eq(sig_data_hash, &plaintext.data_hash);
        let pt_ok = tpnr_crypto::ct::eq(sig_plaintext, &pt_digest);
        if data_ok & pt_ok {
            Ok(())
        } else {
            Err(EvidenceError::BadSignature)
        }
    }
}

/// Re-verifies several archived evidence tokens signed by the **same**
/// sender in one pass.
///
/// Each token contributes its two signatures (`Sign(H(data))`,
/// `Sign(H(plaintext))`) to a single [`RsaPublicKey::verify_batch`] call, so
/// an arbitrator screening a full dispute case pays one
/// randomized-linear-combination check instead of `2·n` serial RSA
/// verifications. On failure the error carries the index (into `evs`) of the
/// first token whose serial verification fails, with exactly the error the
/// serial path would report — `verify_batch` falls back to per-item
/// verification in submission order to attribute the culprit.
///
/// `rng` supplies the random batch exponents; it is untouched when the batch
/// is too small for the combined check (fewer than two tokens) or when
/// signatures are ablated.
pub fn reverify_batch(
    cfg: &ProtocolConfig,
    sender_pk: &RsaPublicKey,
    evs: &[&VerifiedEvidence],
    rng: &mut ChaChaRng,
) -> Result<(), (usize, EvidenceError)> {
    if !cfg.require_signatures {
        // Ablated mode has no signatures to combine; keep the serial
        // hash-comparison semantics exactly.
        for (i, ev) in evs.iter().enumerate() {
            ev.reverify(cfg, sender_pk).map_err(|e| (i, e))?;
        }
        return Ok(());
    }
    let pt_digests: Vec<Vec<u8>> = evs.iter().map(|ev| ev.plaintext.digest()).collect();
    let mut items = Vec::with_capacity(evs.len() * 2);
    for (ev, pt_digest) in evs.iter().zip(&pt_digests) {
        items.push(tpnr_crypto::rsa::BatchItem {
            alg: ev.plaintext.hash_alg,
            digest: &ev.plaintext.data_hash,
            signature: &ev.sig_data_hash,
        });
        items.push(tpnr_crypto::rsa::BatchItem {
            alg: ev.plaintext.hash_alg,
            digest: pt_digest,
            signature: &ev.sig_plaintext,
        });
    }
    sender_pk.verify_batch(&items, rng).map_err(|e| (e.index / 2, EvidenceError::BadSignature))
}

impl VerifiedEvidence {
    /// Reassembles an evidence token from stored parts — the provider keeps
    /// its NRR as `(plaintext, signatures)` rather than a whole token, and
    /// the settled-txn archive reunites them at eviction time. This mints
    /// nothing: the signatures were produced by the signing constructors at
    /// session time and arbitration re-verifies them against the directory,
    /// so a forged reassembly fails exactly like any tampered evidence.
    pub fn from_stored_parts(
        plaintext: EvidencePlaintext,
        sig_data_hash: Vec<u8>,
        sig_plaintext: Vec<u8>,
    ) -> Self {
        VerifiedEvidence { plaintext, sig_data_hash, sig_plaintext }
    }

    /// Re-verifies this archived evidence (what the arbitrator does).
    pub fn reverify(
        &self,
        cfg: &ProtocolConfig,
        sender_pk: &RsaPublicKey,
    ) -> Result<(), EvidenceError> {
        verify_signatures(cfg, sender_pk, &self.plaintext, &self.sig_data_hash, &self.sig_plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plaintext(sender: &Principal, recipient: &Principal, ttp: &Principal) -> EvidencePlaintext {
        EvidencePlaintext {
            flag: Flag::UploadRequest,
            sender: sender.id(),
            recipient: recipient.id(),
            ttp: ttp.id(),
            txn_id: 42,
            seq: 1,
            nonce: 0xdead_beef,
            time_limit: SimTime(1_000_000),
            object: b"backup/q3".to_vec(),
            hash_alg: HashAlg::Sha256,
            data_hash: HashAlg::Sha256.hash(b"the data"),
        }
    }

    fn actors() -> (Principal, Principal, Principal, ProtocolConfig, ChaChaRng) {
        (
            Principal::test("alice", 1),
            Principal::test("bob", 2),
            Principal::test("ttp", 3),
            ProtocolConfig::full(),
            ChaChaRng::seed_from_u64(77),
        )
    }

    #[test]
    fn seal_open_verify_roundtrip() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        let ev = open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).unwrap();
        assert_eq!(ev.plaintext, pt);
        ev.reverify(&cfg, alice.public()).unwrap();
    }

    #[test]
    fn seal_and_own_matches_the_two_separate_constructors() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let (sealed, own) = seal_and_own(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        // The archived copy carries exactly the signatures own_evidence
        // would produce (signing is deterministic)…
        assert_eq!(own, own_evidence(&cfg, &alice, &pt).unwrap());
        own.reverify(&cfg, alice.public()).unwrap();
        // …and the sealed copy opens to the same signatures.
        let opened = open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).unwrap();
        assert_eq!(opened.sig_data_hash, own.sig_data_hash);
        assert_eq!(opened.sig_plaintext, own.sig_plaintext);
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let eve = Principal::test("eve", 9);
        let pt = plaintext(&alice, &bob, &ttp);
        let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        assert_eq!(
            open_and_verify(&cfg, &eve, alice.public(), &pt, &sealed).unwrap_err(),
            EvidenceError::Unsealable
        );
    }

    #[test]
    fn plaintext_substitution_detected() {
        // Attacker swaps the plaintext the evidence claims to cover.
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        let mut forged = pt.clone();
        forged.data_hash = HashAlg::Sha256.hash(b"other data");
        assert_eq!(
            open_and_verify(&cfg, &bob, alice.public(), &forged, &sealed).unwrap_err(),
            EvidenceError::BadSignature
        );
        // Any single field change breaks the plaintext signature too.
        let mut forged = pt.clone();
        forged.seq += 1;
        assert_eq!(
            open_and_verify(&cfg, &bob, alice.public(), &forged, &sealed).unwrap_err(),
            EvidenceError::BadSignature
        );
    }

    #[test]
    fn wrong_claimed_sender_detected() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let mallory = Principal::test("mallory", 13);
        let pt = plaintext(&alice, &bob, &ttp);
        let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        assert_eq!(
            open_and_verify(&cfg, &bob, mallory.public(), &pt, &sealed).unwrap_err(),
            EvidenceError::BadSignature
        );
    }

    #[test]
    fn corrupted_envelope_unsealable() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let mut sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        let n = sealed.sealed.len();
        sealed.sealed[n / 2] ^= 1;
        assert_eq!(
            open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).unwrap_err(),
            EvidenceError::Unsealable
        );
    }

    #[test]
    fn plaintext_wire_roundtrip_canonical() {
        let (alice, bob, ttp, _, _) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let enc = pt.to_wire();
        let dec = EvidencePlaintext::from_wire(&enc).unwrap();
        assert_eq!(dec, pt);
        assert_eq!(dec.to_wire(), enc, "canonical form");
    }

    #[test]
    fn verified_evidence_wire_roundtrip() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        let pt = plaintext(&alice, &bob, &ttp);
        let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
        let ev = open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).unwrap();
        let enc = ev.to_wire();
        assert_eq!(VerifiedEvidence::from_wire(&enc).unwrap(), ev);
    }

    #[test]
    fn ablated_signatures_are_forgeable() {
        // Without signatures, anyone can mint "evidence" for any plaintext —
        // the non-repudiation property is gone.
        let (alice, bob, ttp, _, mut rng) = actors();
        let cfg = crate::config::ProtocolConfig::ablated(crate::config::Ablation::NoSignatures);
        let pt = plaintext(&alice, &bob, &ttp);
        // Mallory (not Alice!) constructs evidence claiming Alice's plaintext.
        let mallory = Principal::test("mallory", 13);
        let sealed = seal(&cfg, &mallory, bob.public(), &pt, &mut rng).unwrap();
        // It verifies "as Alice" because there is no signature to check.
        assert!(open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).is_ok());
    }

    #[test]
    fn reverify_batch_accepts_and_attributes() {
        let (alice, bob, ttp, cfg, mut rng) = actors();
        // Four tokens under one key → eight signatures: the combined
        // randomized check engages (≥ the batching threshold).
        let tokens: Vec<VerifiedEvidence> = (0..4)
            .map(|i| {
                let mut pt = plaintext(&alice, &bob, &ttp);
                pt.txn_id = 100 + i;
                own_evidence(&cfg, &alice, &pt).unwrap()
            })
            .collect();
        let refs: Vec<&VerifiedEvidence> = tokens.iter().collect();
        reverify_batch(&cfg, alice.public(), &refs, &mut rng).unwrap();

        // Tampering one token is caught and attributed to that token, with
        // the exact error serial reverification reports.
        let mut bad = tokens.clone();
        bad[2].sig_plaintext[3] ^= 1;
        let refs: Vec<&VerifiedEvidence> = bad.iter().collect();
        assert_eq!(
            reverify_batch(&cfg, alice.public(), &refs, &mut rng).unwrap_err(),
            (2, EvidenceError::BadSignature)
        );
        assert_eq!(bad[2].reverify(&cfg, alice.public()).unwrap_err(), EvidenceError::BadSignature);

        // A wrong-signer batch fails on the first token, like serial.
        let refs: Vec<&VerifiedEvidence> = tokens.iter().collect();
        assert_eq!(
            reverify_batch(&cfg, bob.public(), &refs, &mut rng).unwrap_err(),
            (0, EvidenceError::BadSignature)
        );
    }

    #[test]
    fn reverify_batch_ablated_matches_serial() {
        let (alice, bob, ttp, _, mut rng) = actors();
        let cfg = crate::config::ProtocolConfig::ablated(crate::config::Ablation::NoSignatures);
        let tokens: Vec<VerifiedEvidence> = (0..4)
            .map(|i| {
                let mut pt = plaintext(&alice, &bob, &ttp);
                pt.txn_id = 200 + i;
                own_evidence(&cfg, &alice, &pt).unwrap()
            })
            .collect();
        let refs: Vec<&VerifiedEvidence> = tokens.iter().collect();
        // Ablated "signatures" are bare hashes: any key accepts them, and
        // the batch path must not draw rng bytes or change that semantics.
        let mut rng2 = ChaChaRng::seed_from_u64(77);
        reverify_batch(&cfg, alice.public(), &refs, &mut rng2).unwrap();
        let mut fresh = ChaChaRng::seed_from_u64(77);
        assert_eq!(rng2.next_u64(), fresh.next_u64(), "ablated batch must not draw rng");
        let mut bad = tokens.clone();
        bad[1].sig_data_hash[0] ^= 1;
        let refs: Vec<&VerifiedEvidence> = bad.iter().collect();
        assert_eq!(
            reverify_batch(&cfg, alice.public(), &refs, &mut rng).unwrap_err(),
            (1, EvidenceError::BadSignature)
        );
    }

    #[test]
    fn all_flags_roundtrip() {
        for f in [
            Flag::UploadRequest,
            Flag::UploadReceipt,
            Flag::DownloadRequest,
            Flag::DownloadResponse,
            Flag::AbortRequest,
            Flag::AbortResponse,
            Flag::ResolveRequest,
            Flag::ResolveForward,
            Flag::ResolveResponse,
        ] {
            assert_eq!(Flag::from_wire_id(f.wire_id()).unwrap(), f);
        }
        assert!(Flag::from_wire_id(0).is_err());
        assert!(Flag::from_wire_id(99).is_err());
    }
}
