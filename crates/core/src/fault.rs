//! Deterministic fault injection and crash recovery.
//!
//! The paper's central robustness claim (§4.4) is that TPNR evidence stays
//! arbitrable *across faults*: the off-line TTP is contacted only when
//! something breaks, and whatever has been sealed before a failure must
//! still settle a dispute afterwards. This module supplies the machinery to
//! test that claim under *process* failure, not just message-level loss:
//!
//! - [`FaultPlan`] — a seed-driven, fully deterministic schedule of crashes
//!   (per-delivery probability, crash-at-Nth-delivery, crash-on-message-kind
//!   before/after processing), TTP outage windows, and durable-write
//!   (archive snapshot) failures. All probabilities are integer permille so
//!   plans are `Eq` and runs are replayable bit-for-bit.
//! - [`Durable`] — the snapshot/restore contract implemented by `Client`,
//!   `Provider` and `Ttp`. An actor restarts from its last *synced*
//!   snapshot; anything newer is the "lost dirty state" window, configurable
//!   via [`FaultPlan::sync_interval`]. Evidence-producing steps are
//!   write-ahead: a reply is only emitted after the state it acknowledges
//!   has been persisted, so sealed evidence is never lost by a crash.
//! - [`RetryPolicy`] — exponential backoff with deterministic jitter, a cap
//!   and an optional give-up bound, generalising the single fixed
//!   `response_timeout` the client used before. The default reproduces the
//!   legacy behaviour exactly (constant backoff, no jitter, never give up).
//! - [`FaultCtl`] — the runtime injector owned by `World`/`MultiWorld` and
//!   driven from `sched::settle` via the hub's timer surface: restart
//!   deadlines and outage boundaries show up as ordinary scheduler timers,
//!   so fault handling obeys the same deadline ordering as protocol timers.
//!
//! Determinism guarantee: a fault decision is a pure function of the plan,
//! the plan seed, and the (deterministic) sequence of deliveries and timer
//! rounds — no wall-clock, no ambient entropy. Same seed + same plan ⇒ the
//! same crashes at the same sim-times, byte-identical observability output.

use std::collections::BTreeMap;
use tpnr_crypto::ChaChaRng;
use tpnr_net::time::{SimDuration, SimTime};

/// Sequence-number skip applied per restart epoch when a `Validator` is
/// restored from a snapshot. Any sends made in the lost dirty window used at
/// most this many sequence numbers, so skipping ahead guarantees a restarted
/// actor never reuses a (txn, seq) pair its peers may already have seen.
pub const SEQ_RECOVERY_SKIP: u64 = 1 << 16;

/// Where a [`FaultPlan::crash_on_msg`] crash lands relative to processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash on receipt: the message is lost, no state changes.
    Before,
    /// Crash after processing and durably persisting the resulting state
    /// (write-ahead), but before any reply leaves the machine. This models
    /// "Bob stored the object and sealed the receipt, but the receipt never
    /// made it onto the wire".
    After,
}

/// Verdict for a single delivery, computed by [`FaultCtl::delivery_verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryVerdict {
    /// Deliver and process normally.
    Proceed,
    /// Crash the recipient before it sees the message; the message is lost.
    CrashBefore,
    /// Process the message, persist the recipient's state, drop its replies,
    /// then crash it.
    CrashAfter,
}

/// Outcome of a durable-sync attempt ([`FaultCtl::sync_due`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncDecision {
    /// Not due yet (within the configured sync interval) — state stays dirty.
    Skip,
    /// Take and persist a fresh snapshot.
    Persist,
    /// The write was attempted but failed (per `snapshot_fail_permille`);
    /// the previous snapshot remains the recovery point.
    FailedWrite,
}

/// A deterministic, seed-driven fault schedule. The default plan is inert
/// (no faults, zero overhead in the runners).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG (chaos rolls, write-failure
    /// rolls). Independent from the protocol actors' RNGs.
    pub seed: u64,
    /// Per-delivery crash probability (permille) for actors listed in
    /// `chaos_targets`. 300 ⇒ 30% chance per delivered message.
    pub crash_prob_permille: u32,
    /// Display names ("alice", "bob", "ttp", "client-0", …) of actors
    /// subject to random chaos crashes.
    pub chaos_targets: Vec<String>,
    /// Upper bound on random chaos crashes, so every run terminates. Does
    /// not bound the explicitly scheduled crashes below.
    pub max_chaos_crashes: u32,
    /// Crash an actor immediately before it processes its Nth delivery
    /// (1-based count of messages actually reaching it). One-shot.
    pub crash_at_delivery: Vec<(String, u64)>,
    /// Crash an actor the first time it receives a message of the given
    /// kind (`Message::kind()` label), at the given point. One-shot.
    pub crash_on_msg: Vec<(String, String, CrashPoint)>,
    /// TTP outage windows `[start, end)` in sim-time; must be sorted by
    /// start. During a window the TTP is down and restores at `end`.
    pub ttp_outages: Vec<(SimTime, SimTime)>,
    /// Probability (permille) that a scheduled durable sync fails, leaving
    /// the previous snapshot as the recovery point.
    pub snapshot_fail_permille: u32,
    /// How long a crashed actor stays down before restarting from snapshot.
    pub restart_delay: SimDuration,
    /// Durable-sync cadence: state is persisted when it is older than this
    /// (and always, write-ahead, when a step produces outgoing messages).
    /// Zero means sync after every processed event.
    pub sync_interval: SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no crashes, no outages, no write failures.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crash_prob_permille: 0,
            chaos_targets: Vec::new(),
            max_chaos_crashes: 0,
            crash_at_delivery: Vec::new(),
            crash_on_msg: Vec::new(),
            ttp_outages: Vec::new(),
            snapshot_fail_permille: 0,
            restart_delay: SimDuration::from_secs(2),
            sync_interval: SimDuration::from_micros(0),
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        (self.crash_prob_permille == 0
            || self.chaos_targets.is_empty()
            || self.max_chaos_crashes == 0)
            && self.crash_at_delivery.is_empty()
            && self.crash_on_msg.is_empty()
            && self.ttp_outages.is_empty()
    }

    /// Seed the injector RNG.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable random chaos crashes for the named actors.
    pub fn with_chaos(mut self, targets: &[&str], prob_permille: u32, max_crashes: u32) -> Self {
        self.chaos_targets = targets.iter().map(|s| s.to_string()).collect();
        self.crash_prob_permille = prob_permille.min(1000);
        self.max_chaos_crashes = max_crashes;
        self
    }

    /// Crash `actor` just before its `n`th (1-based) processed delivery.
    pub fn with_crash_at_delivery(mut self, actor: &str, n: u64) -> Self {
        self.crash_at_delivery.push((actor.to_string(), n));
        self
    }

    /// Crash `actor` the first time it receives a `kind` message.
    pub fn with_crash_on_msg(mut self, actor: &str, kind: &str, point: CrashPoint) -> Self {
        self.crash_on_msg.push((actor.to_string(), kind.to_string(), point));
        self
    }

    /// Add a TTP outage window `[start, end)`.
    pub fn with_ttp_outage(mut self, start: SimTime, end: SimTime) -> Self {
        self.ttp_outages.push((start, end));
        self.ttp_outages.sort_by_key(|w| w.0);
        self
    }

    /// Probability (permille) that a scheduled durable sync fails.
    pub fn with_snapshot_failures(mut self, permille: u32) -> Self {
        self.snapshot_fail_permille = permille.min(1000);
        self
    }

    /// Downtime before a crashed actor restarts from its snapshot.
    pub fn with_restart_delay(mut self, delay: SimDuration) -> Self {
        self.restart_delay = delay;
        self
    }

    /// The "lost dirty state" window: how stale durable state may be.
    pub fn with_sync_interval(mut self, interval: SimDuration) -> Self {
        self.sync_interval = interval;
        self
    }
}

/// Retry schedule for the client's timeout-driven Abort/Resolve resends.
///
/// The nth wait (0-based attempt counter) is
/// `base × (backoff_factor_pct / 100)^n`, capped at `max_backoff`, plus a
/// deterministic jitter of up to `jitter_pct`% drawn from the client's
/// seeded RNG. `Default` reproduces the legacy fixed-timeout behaviour
/// exactly: constant backoff, no jitter (no RNG draws), never give up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Multiplier per attempt, in percent; 100 = constant (legacy),
    /// 200 = doubling. Values below 100 are clamped to 100.
    pub backoff_factor_pct: u32,
    /// Upper bound on a single wait.
    pub max_backoff: Option<SimDuration>,
    /// Deterministic jitter as a percentage of the computed wait (0 = none;
    /// when zero the client draws nothing from its RNG, preserving legacy
    /// nonce streams).
    pub jitter_pct: u32,
    /// Give up (declare the transaction `Failed`, evidence retained) after
    /// this many timeout-driven sends. `None` = retry forever (legacy).
    pub max_attempts: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::legacy()
    }
}

impl RetryPolicy {
    /// The pre-fault-subsystem behaviour: fixed timeout, unlimited retries.
    pub fn legacy() -> Self {
        RetryPolicy {
            backoff_factor_pct: 100,
            max_backoff: None,
            jitter_pct: 0,
            max_attempts: None,
        }
    }

    /// A sensible chaos-tolerant policy: doubling backoff capped at 4
    /// minutes, 10% jitter, bounded attempts.
    pub fn exponential(max_attempts: u32) -> Self {
        RetryPolicy {
            backoff_factor_pct: 200,
            max_backoff: Some(SimDuration::from_secs(240)),
            jitter_pct: 10,
            max_attempts: Some(max_attempts),
        }
    }

    /// The wait before the (0-based) `attempt`th timeout fires, without
    /// jitter. Saturating; capped at `max_backoff`.
    pub fn backoff(&self, base: SimDuration, attempt: u32) -> SimDuration {
        let factor = self.backoff_factor_pct.max(100) as u64;
        let cap = self.max_backoff.map(|c| c.micros()).unwrap_or(u64::MAX);
        let mut us = base.micros().min(cap);
        if factor > 100 {
            // 64 doublings saturate u64; no need to loop further.
            for _ in 0..attempt.min(64) {
                let next = u128::from(us) * u128::from(factor) / 100;
                us = u64::try_from(next).unwrap_or(u64::MAX);
                if us >= cap {
                    us = cap;
                    break;
                }
            }
        }
        SimDuration::from_micros(us)
    }

    /// True once `attempts` timeout-driven sends have been spent.
    pub fn exhausted(&self, attempts: u32) -> bool {
        match self.max_attempts {
            Some(m) => attempts >= m,
            None => false,
        }
    }
}

/// Monotone counters kept by the client for its retry machinery; excluded
/// from snapshots so restarts never undercount.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Timeout-driven sends beyond a transaction's first (resends).
    pub retries: u64,
    /// Transactions abandoned after `max_attempts` (evidence retained).
    pub gave_up: u64,
}

/// Aggregate fault-injection counters, surfaced in `SettleReport::faults`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Actor crashes injected (chaos + scheduled + outage starts).
    pub crashes: u64,
    /// Restarts completed (restore from snapshot).
    pub restarts: u64,
    /// Client resends driven by the retry policy.
    pub retries: u64,
    /// Transactions the retry policy abandoned (still arbitrable).
    pub gave_up: u64,
    /// Messages that arrived while their recipient was down.
    pub deliveries_lost: u64,
    /// Durable syncs persisted.
    pub snapshots: u64,
    /// Total bytes written across persisted snapshots.
    pub snapshot_bytes: u64,
    /// Durable syncs that failed (previous snapshot retained).
    pub snapshot_failures: u64,
}

/// Fault wakeups processed by [`FaultCtl::poll`] at the top of a timer
/// round: outage-initiated crashes and restarts that have come due.
#[derive(Debug, Default)]
pub struct FaultEvents {
    /// Actors crashed by an outage window opening at this instant.
    pub crashed: Vec<String>,
    /// Actors whose downtime ended; the hub must restore each from its
    /// snapshot.
    pub restarted: Vec<String>,
}

/// Runtime fault injector. Owned by the runner (`World` / `MultiWorld`),
/// keyed by actor display name; all maps are `BTreeMap` so iteration order —
/// and therefore RNG consumption and event order — is deterministic.
pub struct FaultCtl {
    plan: FaultPlan,
    rng: ChaChaRng,
    /// Down actors → restart instant.
    down_until: BTreeMap<String, SimTime>,
    /// Per-actor count of deliveries that reached the actor.
    delivery_count: BTreeMap<String, u64>,
    /// Per-actor last durable sync instant.
    last_sync: BTreeMap<String, SimTime>,
    /// One-shot consumption flags for `plan.crash_at_delivery`.
    at_delivery_used: Vec<bool>,
    /// One-shot consumption flags for `plan.crash_on_msg`.
    on_msg_used: Vec<bool>,
    /// Next unentered outage window index.
    outage_idx: usize,
    chaos_injected: u32,
    /// Aggregate counters (see also the retry counters the runner merges in
    /// from its clients).
    pub stats: FaultStats,
}

impl FaultCtl {
    /// Build an injector for `plan`. Inert plans cost nothing at runtime:
    /// `active()` is false and the runners skip all fault paths.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultCtl {
            rng: ChaChaRng::seed_from_u64(plan.seed ^ 0xfa017),
            down_until: BTreeMap::new(),
            delivery_count: BTreeMap::new(),
            last_sync: BTreeMap::new(),
            at_delivery_used: vec![false; plan.crash_at_delivery.len()],
            on_msg_used: vec![false; plan.crash_on_msg.len()],
            outage_idx: 0,
            chaos_injected: 0,
            stats: FaultStats::default(),
            plan: plan.clone(),
        }
    }

    /// Whether any fault machinery (snapshots, crash rolls) must run.
    pub fn active(&self) -> bool {
        !self.plan.is_inert()
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True while `actor` is crashed and awaiting restart. Restarts are
    /// processed by `poll` at the scheduler's timer phase, which the
    /// tie-break runs *before* same-instant deliveries, so a marked-down
    /// actor is genuinely down for every delivery that observes it.
    pub fn is_down(&self, actor: &str) -> bool {
        self.down_until.contains_key(actor)
    }

    /// Record a message that arrived while its recipient was down.
    pub fn note_delivery_lost(&mut self) {
        self.stats.deliveries_lost += 1;
    }

    /// Decide the fate of a delivery to a (live) `actor` of a `kind`
    /// message. Consumes one-shot schedule entries and chaos RNG rolls.
    pub fn delivery_verdict(&mut self, actor: &str, kind: &str) -> DeliveryVerdict {
        let n = {
            let e = self.delivery_count.entry(actor.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        for (i, (a, at)) in self.plan.crash_at_delivery.iter().enumerate() {
            if !self.at_delivery_used[i] && a == actor && *at == n {
                self.at_delivery_used[i] = true;
                return DeliveryVerdict::CrashBefore;
            }
        }
        for (i, (a, k, point)) in self.plan.crash_on_msg.iter().enumerate() {
            if !self.on_msg_used[i] && a == actor && k == kind {
                self.on_msg_used[i] = true;
                return match point {
                    CrashPoint::Before => DeliveryVerdict::CrashBefore,
                    CrashPoint::After => DeliveryVerdict::CrashAfter,
                };
            }
        }
        if self.plan.crash_prob_permille > 0
            && self.chaos_injected < self.plan.max_chaos_crashes
            && self.plan.chaos_targets.iter().any(|t| t == actor)
            && self.rng.gen_below(1000) < u64::from(self.plan.crash_prob_permille)
        {
            self.chaos_injected += 1;
            return if self.rng.gen_below(2) == 0 {
                DeliveryVerdict::CrashBefore
            } else {
                DeliveryVerdict::CrashAfter
            };
        }
        DeliveryVerdict::Proceed
    }

    /// Mark `actor` down now; returns the restart instant (a scheduler
    /// timer). Extends existing downtime rather than shortening it.
    pub fn crash(&mut self, actor: &str, now: SimTime) -> SimTime {
        // A zero delay still needs one timer round to restart, so keep the
        // restart strictly after `now`.
        let delay_us = self.plan.restart_delay.micros().max(1);
        let until = now.after(SimDuration::from_micros(delay_us));
        let entry = self.down_until.entry(actor.to_string()).or_insert(until);
        if *entry < until {
            *entry = until;
        }
        let until = *entry;
        self.stats.crashes += 1;
        until
    }

    /// Process fault wakeups at timer phase: open outage windows (crashing
    /// the TTP) and complete restarts that have come due.
    pub fn poll(&mut self, ttp_name: &str, now: SimTime) -> FaultEvents {
        let mut ev = FaultEvents::default();
        while self.outage_idx < self.plan.ttp_outages.len() {
            let (start, end) = self.plan.ttp_outages[self.outage_idx];
            if now < start {
                break;
            }
            self.outage_idx += 1;
            if now < end {
                self.stats.crashes += 1;
                let entry = self.down_until.entry(ttp_name.to_string()).or_insert(end);
                if *entry < end {
                    *entry = end;
                }
                ev.crashed.push(ttp_name.to_string());
            }
        }
        let due: Vec<String> = self
            .down_until
            .iter()
            .filter(|(_, until)| now >= **until)
            .map(|(a, _)| a.clone())
            .collect();
        for a in due {
            self.down_until.remove(&a);
            self.stats.restarts += 1;
            ev.restarted.push(a);
        }
        ev
    }

    /// The earliest fault wakeup: a pending restart or the next outage
    /// start. Feeds the hub's `next_timer` so `sched::settle` advances the
    /// clock through downtime instead of stalling.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let restart = self.down_until.values().min().copied();
        let outage = self.plan.ttp_outages.get(self.outage_idx).map(|w| w.0);
        match (restart, outage) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Decide whether `actor`'s durable state should be synced now. `force`
    /// bypasses the interval check (write-ahead before emitting output).
    /// Rolls the write-failure probability on every attempted sync.
    pub fn sync_due(&mut self, actor: &str, now: SimTime, force: bool) -> SyncDecision {
        if !force {
            // An actor with no recorded sync has never persisted: always due.
            if let Some(last) = self.last_sync.get(actor) {
                if now < last.after(self.plan.sync_interval) {
                    return SyncDecision::Skip;
                }
            }
        }
        self.last_sync.insert(actor.to_string(), now);
        if self.plan.snapshot_fail_permille > 0
            && self.rng.gen_below(1000) < u64::from(self.plan.snapshot_fail_permille)
        {
            self.stats.snapshot_failures += 1;
            return SyncDecision::FailedWrite;
        }
        SyncDecision::Persist
    }

    /// Account a persisted snapshot of `bytes` bytes.
    pub fn note_snapshot(&mut self, bytes: u64) {
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes += bytes;
    }
}

/// The snapshot/restore contract for crash-recoverable actors.
///
/// `restore` replaces the actor's *protocol* state (session table, archived
/// evidence, validator sequence state) with the snapshot's, then applies a
/// per-epoch sequence skip ([`SEQ_RECOVERY_SKIP`]) so counters allocated in
/// the lost dirty window are never reused. Monotone telemetry (retry stats,
/// TTP load stats) and the RNG are deliberately *not* restored: rolling an
/// RNG back would replay nonces, which is exactly the freshness violation
/// the protocol defends against.
pub trait Durable {
    /// The persisted form; sized via `bytes()` on the concrete types.
    type Snapshot: Clone;
    /// Capture the durable protocol state.
    fn snapshot(&self) -> Self::Snapshot;
    /// Replace protocol state from `snap`, advancing sequence counters past
    /// the crash epoch.
    fn restore(&mut self, snap: &Self::Snapshot);
}

/// Rough serialized weight of one piece of verified evidence: plaintext
/// fields + both signatures. Used to size snapshots honestly without a
/// second encode pass.
pub fn evidence_bytes(e: &crate::evidence::VerifiedEvidence) -> u64 {
    // Fixed plaintext fields: flag (1) + three principal ids (32 each) +
    // txn/seq/nonce/time-limit (8 each) + alg tag (1).
    let fixed = 1 + 3 * 32 + 4 * 8 + 1;
    (fixed
        + e.plaintext.object.len()
        + e.plaintext.data_hash.len()
        + e.sig_data_hash.len()
        + e.sig_plaintext.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(!FaultCtl::new(&FaultPlan::none()).active());
    }

    #[test]
    fn chaos_without_budget_is_inert() {
        let plan = FaultPlan::none().with_chaos(&["alice"], 300, 0);
        assert!(plan.is_inert());
        let plan = FaultPlan::none().with_chaos(&[], 300, 8);
        assert!(plan.is_inert());
        let plan = FaultPlan::none().with_chaos(&["alice"], 300, 8);
        assert!(!plan.is_inert());
    }

    #[test]
    fn legacy_policy_is_constant_and_unbounded() {
        let p = RetryPolicy::legacy();
        let base = SimDuration::from_secs(30);
        for attempt in [0, 1, 5, 1000] {
            assert_eq!(p.backoff(base, attempt), base);
            assert!(!p.exhausted(attempt));
        }
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_factor_pct: 200,
            max_backoff: Some(SimDuration::from_secs(120)),
            jitter_pct: 0,
            max_attempts: Some(4),
        };
        let base = SimDuration::from_secs(30);
        assert_eq!(p.backoff(base, 0), SimDuration::from_secs(30));
        assert_eq!(p.backoff(base, 1), SimDuration::from_secs(60));
        assert_eq!(p.backoff(base, 2), SimDuration::from_secs(120));
        assert_eq!(p.backoff(base, 3), SimDuration::from_secs(120));
        assert_eq!(p.backoff(base, 10_000), SimDuration::from_secs(120));
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
    }

    #[test]
    fn backoff_saturates_without_cap() {
        let p = RetryPolicy {
            backoff_factor_pct: 200,
            max_backoff: None,
            jitter_pct: 0,
            max_attempts: None,
        };
        let big = p.backoff(SimDuration::from_secs(30), 1_000);
        assert_eq!(big.micros(), u64::MAX);
    }

    #[test]
    fn crash_at_delivery_is_one_shot_and_counts_per_actor() {
        let plan = FaultPlan::none().with_crash_at_delivery("bob", 2);
        let mut ctl = FaultCtl::new(&plan);
        assert_eq!(ctl.delivery_verdict("bob", "Transfer"), DeliveryVerdict::Proceed);
        assert_eq!(ctl.delivery_verdict("alice", "Receipt"), DeliveryVerdict::Proceed);
        assert_eq!(ctl.delivery_verdict("bob", "Transfer"), DeliveryVerdict::CrashBefore);
        // One-shot: the next 2nd-style delivery does not crash again.
        assert_eq!(ctl.delivery_verdict("bob", "Transfer"), DeliveryVerdict::Proceed);
    }

    #[test]
    fn crash_on_msg_kind_honours_point_and_is_one_shot() {
        let plan = FaultPlan::none()
            .with_crash_on_msg("ttp", "Resolve", CrashPoint::Before)
            .with_crash_on_msg("bob", "Transfer", CrashPoint::After);
        let mut ctl = FaultCtl::new(&plan);
        assert_eq!(ctl.delivery_verdict("ttp", "Resolve"), DeliveryVerdict::CrashBefore);
        assert_eq!(ctl.delivery_verdict("ttp", "Resolve"), DeliveryVerdict::Proceed);
        assert_eq!(ctl.delivery_verdict("bob", "Transfer"), DeliveryVerdict::CrashAfter);
        assert_eq!(ctl.delivery_verdict("bob", "Transfer"), DeliveryVerdict::Proceed);
    }

    #[test]
    fn crash_and_poll_round_trip() {
        let plan = FaultPlan::none()
            .with_crash_on_msg("bob", "Transfer", CrashPoint::Before)
            .with_restart_delay(SimDuration::from_secs(5));
        let mut ctl = FaultCtl::new(&plan);
        let t0 = SimTime::ZERO.after(SimDuration::from_secs(1));
        let until = ctl.crash("bob", t0);
        assert_eq!(until, t0.after(SimDuration::from_secs(5)));
        assert!(ctl.is_down("bob"));
        assert_eq!(ctl.next_wakeup(), Some(until));
        let ev = ctl.poll("ttp", t0.after(SimDuration::from_secs(4)));
        assert!(ev.restarted.is_empty());
        assert!(ctl.is_down("bob"));
        let ev = ctl.poll("ttp", until);
        assert_eq!(ev.restarted, vec!["bob".to_string()]);
        assert!(!ctl.is_down("bob"));
        assert_eq!(ctl.stats.crashes, 1);
        assert_eq!(ctl.stats.restarts, 1);
        assert_eq!(ctl.next_wakeup(), None);
    }

    #[test]
    fn outage_window_downs_ttp_until_end() {
        let s = SimTime::ZERO.after(SimDuration::from_secs(10));
        let e = SimTime::ZERO.after(SimDuration::from_secs(20));
        let plan = FaultPlan::none().with_ttp_outage(s, e);
        let mut ctl = FaultCtl::new(&plan);
        assert!(!ctl.is_down("ttp"));
        assert_eq!(ctl.next_wakeup(), Some(s));
        let ev = ctl.poll("ttp", s);
        assert_eq!(ev.crashed, vec!["ttp".to_string()]);
        assert!(ctl.is_down("ttp"));
        assert_eq!(ctl.next_wakeup(), Some(e));
        let ev = ctl.poll("ttp", e);
        assert_eq!(ev.restarted, vec!["ttp".to_string()]);
        assert!(!ctl.is_down("ttp"));
    }

    #[test]
    fn sync_interval_gates_and_force_overrides() {
        let plan = FaultPlan::none()
            .with_crash_on_msg("bob", "Transfer", CrashPoint::Before)
            .with_sync_interval(SimDuration::from_secs(10));
        let mut ctl = FaultCtl::new(&plan);
        let t0 = SimTime::ZERO;
        // First sync at t=0 is due (never synced).
        assert_eq!(ctl.sync_due("alice", t0, false), SyncDecision::Persist);
        let t1 = t0.after(SimDuration::from_secs(5));
        assert_eq!(ctl.sync_due("alice", t1, false), SyncDecision::Skip);
        assert_eq!(ctl.sync_due("alice", t1, true), SyncDecision::Persist);
        let t2 = t1.after(SimDuration::from_secs(10));
        assert_eq!(ctl.sync_due("alice", t2, false), SyncDecision::Persist);
    }

    #[test]
    fn chaos_rolls_are_deterministic_and_bounded() {
        let plan = FaultPlan::none().with_seed(7).with_chaos(&["bob"], 500, 3);
        let run = |plan: &FaultPlan| {
            let mut ctl = FaultCtl::new(plan);
            (0..200).map(|_| ctl.delivery_verdict("bob", "Transfer")).collect::<Vec<_>>()
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b);
        let crashes = a.iter().filter(|v| **v != DeliveryVerdict::Proceed).count();
        assert_eq!(crashes, 3, "chaos budget caps injections");
    }
}
