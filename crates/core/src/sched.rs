//! The shared event scheduler behind [`World`](crate::runner::World) and
//! [`MultiWorld`](crate::multi::MultiWorld).
//!
//! Both runners used to carry their own ~100-line settle loops with three
//! latent bugs: an overdue protocol timer could be starved for as long as
//! the network stayed busy (the timer only fired while `deadline >= now`),
//! the step cap was a silent `break` that reported half-settled worlds as
//! settled, and per-transaction accounting was derived from before/after
//! deltas of global counters, which misattributes traffic the moment two
//! transactions interleave. This module is the single replacement: one
//! deadline-ordered loop that merges network deliveries with every actor's
//! protocol timers and fails loudly when the cap is hit.
//!
//! Ordering rules (see DESIGN.md §4):
//!
//! - The next step is whichever of (earliest pending timer, earliest
//!   scheduled delivery) comes first in simulated time.
//! - **Tie-break: timers fire before deliveries at the same instant.** A
//!   reply that lands exactly at the deadline is late — the timeout
//!   sub-protocol starts, deterministically.
//! - An overdue timer (deadline already in the past) fires immediately at
//!   the current simulated time; it can never be pushed behind further
//!   traffic.
//! - A timer that fires without producing output and without moving its
//!   deadline is *barren*; it is masked until the world changes (a delivery
//!   happens or the deadline moves), so a wedged actor cannot livelock the
//!   loop.

use crate::fault::FaultStats;
use crate::message::Message;
use crate::obs::{Event, EventKind, Obs};
use crate::principal::PrincipalId;
use crate::session::{Outgoing, ValidationError};
use std::collections::VecDeque;
use tpnr_net::sim::{Envelope, NetEventKind};
use tpnr_net::time::SimTime;
use tpnr_net::transport::Transport;

/// A protocol participant the scheduler can drive: it receives messages and
/// owns zero or more pending timers.
pub trait Actor {
    /// Handles one delivered protocol message.
    fn on_message(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError>;

    /// Earliest pending protocol timer, if any. Actors without timers (the
    /// provider is purely reactive) use the default.
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }

    /// Fires every timer due at `now` and returns the messages produced.
    fn on_tick(&mut self, _now: SimTime) -> Vec<Outgoing> {
        Vec::new()
    }
}

/// How a settle run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleOutcome {
    /// Nothing left to do: no deliveries in flight and no live timers.
    Quiescent,
    /// Drained, but at least one transaction was abandoned by the retry
    /// policy's give-up bound (`SettleReport::faults.gave_up`). Evidence is
    /// retained, so disputes stay arbitrable; the run is still quiescent.
    Degraded,
    /// The step cap was hit with work still pending. The world is *not*
    /// settled; raise `max_steps` or investigate the livelock (see the
    /// README troubleshooting section).
    StepCapExceeded,
}

impl SettleOutcome {
    /// True when the run drained every delivery and timer (including
    /// degraded runs — degradation is about retry give-up, not residue).
    pub fn is_quiescent(self) -> bool {
        matches!(self, SettleOutcome::Quiescent | SettleOutcome::Degraded)
    }

    /// True when the retry policy abandoned at least one transaction.
    pub fn is_degraded(self) -> bool {
        self == SettleOutcome::Degraded
    }
}

/// What a settle run did.
#[derive(Debug, Clone, Copy)]
pub struct SettleReport {
    /// How the run ended.
    pub outcome: SettleOutcome,
    /// Messages delivered to inboxes.
    pub delivered: usize,
    /// Timer rounds fired.
    pub timer_rounds: usize,
    /// Fault-injection counters (crashes, restarts, retries, snapshots) as
    /// of the end of the run; all-zero for hubs without fault machinery.
    pub faults: FaultStats,
}

/// What a runner must expose for [`settle`] to drive it. The runner keeps
/// ownership of the actors and the routing tables; the scheduler only sees
/// deadlines, deliveries, and opaque dispatch.
pub trait EventHub {
    /// The wire the runner is driving — any [`Transport`] backend: the
    /// deterministic simulator, the in-process channel, or loopback TCP.
    /// The settle loop is written against this seam only, so it carries
    /// zero per-backend code.
    fn transport(&mut self) -> &mut dyn Transport;
    /// Earliest pending timer across every actor.
    fn next_timer(&self) -> Option<SimTime>;
    /// Fires all timers due at `now` on every actor and dispatches whatever
    /// they produce. Returns how many messages were dispatched.
    fn fire_timers(&mut self, now: SimTime) -> usize;
    /// Routes one delivered envelope to its actor and dispatches the
    /// actor's replies.
    fn deliver(&mut self, env: Envelope);
    /// The runner's observability sink, if it keeps one. The scheduler
    /// drains the network's drop/duplication events into it and records a
    /// settle-size sample on exit. Headless hubs use the default.
    fn obs_mut(&mut self) -> Option<&mut Obs> {
        None
    }
    /// Cumulative fault-injection counters (crash/restart/retry/snapshot),
    /// copied into `SettleReport::faults` when the run ends. Hubs without
    /// fault machinery use the all-zero default.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Moves pending network events (drops, duplications) into the hub's
/// observability sink, translating node ids to display names. Without a
/// sink the pending buffer is still drained so it cannot accumulate.
///
/// One pass over one transport borrow: the drain and the id → name
/// translation share the same access (via [`Transport::node_name`]), where
/// the old seam re-borrowed the concrete network once per translated id.
fn drain_net_events(hub: &mut dyn EventHub) {
    let events: Vec<Event> = {
        let net = hub.transport();
        let name = |net: &dyn Transport, n| net.node_name(n).unwrap_or("?").to_string();
        net.take_events()
            .into_iter()
            .map(|e| Event {
                at: e.at,
                txn: e.txn,
                actor: name(net, e.dst),
                kind: match e.kind {
                    NetEventKind::Dropped => EventKind::Dropped { from: name(net, e.src) },
                    NetEventKind::Duplicated => EventKind::Duplicated { from: name(net, e.src) },
                },
            })
            .collect()
    };
    if events.is_empty() {
        return;
    }
    if let Some(obs) = hub.obs_mut() {
        for ev in events {
            obs.record(ev);
        }
    }
}

/// Runs the world until quiescence or the step cap: the single settle loop
/// shared by `World` and `MultiWorld`.
pub fn settle(hub: &mut dyn EventHub, max_steps: usize) -> SettleReport {
    let mut report = SettleReport {
        outcome: SettleOutcome::Quiescent,
        delivered: 0,
        timer_rounds: 0,
        faults: FaultStats::default(),
    };
    let mut barren: Option<SimTime> = None;
    // Envelopes polled off the transport but not yet routed. Deliveries
    // are handed out one per step with the timer tie-break re-checked in
    // between, so batching the poll preserves the old per-step ordering.
    let mut pending: VecDeque<Envelope> = VecDeque::new();
    for _ in 0..max_steps {
        drain_net_events(hub);
        let timer = hub.next_timer().filter(|t| barren != Some(*t));
        let delivery = pending
            .front()
            .map(|e| e.delivered_at)
            .or_else(|| hub.transport().next_deliverable_at());
        match (timer, delivery) {
            // Timer first, including on ties (t == at).
            (Some(t), at) if at.is_none_or(|at| t <= at) => {
                // Real backends block here until host time reaches `t` or
                // a frame lands first; simulated backends are omniscient
                // about their queue and decline immediately.
                if hub.transport().wait_for_activity(Some(t)) {
                    continue;
                }
                let now = hub.transport().now().max(t);
                hub.transport().advance_clock_to(now);
                let produced = hub.fire_timers(now);
                report.timer_rounds += 1;
                // A fire that neither produced output nor moved the
                // deadline would repeat forever; mask it until something
                // else changes the world.
                barren = (produced == 0 && hub.next_timer() == Some(t)).then_some(t);
            }
            (_, Some(at)) => {
                if pending.is_empty() {
                    let now = hub.transport().now().max(at);
                    hub.transport().advance_clock_to(now);
                    pending.extend(hub.transport().poll_deliverable(now));
                }
                // The poll can come back empty (every due copy was dropped
                // — down node, link loss); the step is then consumed
                // without a delivery, exactly as the old loop tolerated a
                // raced-empty queue.
                if let Some(env) = pending.pop_front() {
                    report.delivered += 1;
                    barren = None;
                    hub.deliver(env);
                }
            }
            // Only reachable with no timer (a pending timer and no delivery
            // is the first arm); kept non-literal for exhaustiveness.
            (_, None) => {
                // A real wire may still have frames in sockets that no
                // queue reflects yet; give the transport a chance to
                // surface them before declaring quiescence.
                if hub.transport().wait_for_activity(None) {
                    continue;
                }
                finish(hub, &mut report);
                return report;
            }
        }
    }
    report.outcome = SettleOutcome::StepCapExceeded;
    finish(hub, &mut report);
    report
}

/// End-of-run bookkeeping: drain any events the final step produced, record
/// the run's size in the settle-step histogram, and copy the hub's fault
/// counters into the report (downgrading Quiescent to Degraded when the
/// retry policy abandoned work).
fn finish(hub: &mut dyn EventHub, report: &mut SettleReport) {
    drain_net_events(hub);
    if let Some(obs) = hub.obs_mut() {
        obs.note_settle((report.delivered + report.timer_rounds) as u64);
    }
    report.faults = hub.fault_stats();
    if report.outcome == SettleOutcome::Quiescent && report.faults.gave_up > 0 {
        report.outcome = SettleOutcome::Degraded;
    }
}

/// Slots per wheel level, as a power of two (64 slots ⇒ 6 bits).
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` spans `64^(l+1)` µs, so 8 levels cover
/// `2^48` µs ≈ 8.9 simulated years; anything beyond parks in `far`.
const LEVELS: usize = 8;

/// Hierarchical timer wheel: the scheduler-owned deadline index that
/// replaces the poll-every-actor scan in [`EventHub::next_timer`].
///
/// Actors no longer get polled for `next_deadline()` on every settle step;
/// instead the runner registers each actor's earliest deadline under a
/// stable integer key ([`TimerWheel::set`]) whenever that actor's state
/// changes, and cancels it when the actor crashes. The wheel then answers
/// both scheduler questions in O(1) in the number of actors:
///
/// - [`TimerWheel::peek`] — the exact earliest live deadline (cached, not
///   approximated, because the settle loop's tie-break and barren-masking
///   rules compare it for equality against fired instants);
/// - [`TimerWheel::advance`] — pop every key due at `now`, cascading
///   longer-range entries down a level as the cursor passes their window.
///
/// Cancellation is lazy: a slot entry is live only while it matches the
/// authoritative `live[key]` deadline, so re-arming or cancelling never
/// searches a slot. Stale entries are dropped when their slot is next
/// drained or scanned.
#[derive(Default)]
pub struct TimerWheel {
    /// `levels[l][s]`: entries whose deadline falls in slot `s` of level
    /// `l`, as `(deadline_us, key)`. May contain stale entries.
    levels: Vec<Vec<Vec<(u64, usize)>>>,
    /// Per-level bitmap of non-empty slots (bit `s` of `occupied[l]`).
    occupied: Vec<u64>,
    /// Entries registered with a deadline at or before the cursor; they are
    /// due on the very next [`TimerWheel::advance`].
    overdue: Vec<(u64, usize)>,
    /// Entries beyond the top level's horizon (re-filed as the cursor
    /// catches up).
    far: Vec<(u64, usize)>,
    /// Authoritative key → armed deadline. Slot entries disagreeing with
    /// this are stale (lazy cancellation).
    live: Vec<Option<u64>>,
    /// All slot entries have deadlines strictly after this instant.
    cursor: u64,
    /// Cached exact minimum over all live deadlines.
    next: Option<u64>,
    /// Count of live keys.
    len: usize,
}

impl TimerWheel {
    /// An empty wheel at the simulation epoch.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| vec![Vec::new(); SLOTS]).collect(),
            occupied: vec![0; LEVELS],
            ..Default::default()
        }
    }

    /// Number of live (armed) keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The exact earliest live deadline, if any. O(1): the value is
    /// maintained eagerly by insert/cancel/advance.
    pub fn peek(&self) -> Option<SimTime> {
        self.next.map(SimTime)
    }

    /// Registers, re-arms, or cancels `key` in one call (the runner's
    /// refresh hook feeds an actor's `next_deadline()` straight in).
    pub fn set(&mut self, key: usize, deadline: Option<SimTime>) {
        match deadline {
            Some(t) => self.insert(key, t.micros()),
            None => self.cancel(key),
        }
    }

    /// Arms `key` at `deadline` (µs), replacing any previous arming.
    pub fn insert(&mut self, key: usize, deadline: u64) {
        if self.live.len() <= key {
            self.live.resize(key + 1, None);
        }
        let old = self.live[key];
        if old == Some(deadline) {
            return;
        }
        self.live[key] = Some(deadline);
        if old.is_none() {
            self.len += 1;
        }
        self.place(deadline, key);
        if old.is_some() && old == self.next && Some(deadline) > self.next {
            // The (possibly unique) minimum moved later: rescan.
            self.recompute_next();
        } else {
            self.next = Some(self.next.map_or(deadline, |n| n.min(deadline)));
        }
    }

    /// Disarms `key` (O(1); the slot entry goes stale and is collected
    /// later). Unknown keys are a no-op.
    pub fn cancel(&mut self, key: usize) {
        if key >= self.live.len() {
            return;
        }
        if let Some(d) = self.live[key].take() {
            self.len -= 1;
            if Some(d) == self.next {
                self.recompute_next();
            }
        }
    }

    /// Files an entry by its distance from the cursor: level `l` holds
    /// deltas in `[64^l, 64^(l+1))`, already-due entries go to `overdue`,
    /// and beyond-horizon entries go to `far`.
    fn place(&mut self, d: u64, key: usize) {
        if d <= self.cursor {
            self.overdue.push((d, key));
            return;
        }
        let delta = d - self.cursor;
        if delta >> (SLOT_BITS * LEVELS as u32) != 0 {
            self.far.push((d, key));
            return;
        }
        let level = ((63 - delta.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((d >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push((d, key));
        self.occupied[level] |= 1 << slot;
    }

    /// Wrap-aware start of slot `s`'s window at level `l`, relative to the
    /// current cursor. Every live entry sits within one rotation of the
    /// cursor (deltas only shrink after placement), so exactly one window
    /// occurrence per slot can hold entries.
    fn window_start(&self, l: usize, s: usize) -> u64 {
        let w = 1u64 << (SLOT_BITS * l as u32);
        let rot = w << SLOT_BITS;
        let base = self.cursor & !(rot - 1);
        let ws = base + s as u64 * w;
        // A window that ended at or before the cursor holds next-rotation
        // entries only (the invariant: slot entries are > cursor).
        if ws + w <= self.cursor {
            ws + rot
        } else {
            ws
        }
    }

    /// Pops every live key due at or before `now` and returns them in
    /// ascending key order (all fire at the same instant, so key order —
    /// the runner's actor order — is the deterministic tie-break). Slots
    /// whose window the cursor passes are drained and their not-yet-due
    /// entries cascade down to finer levels.
    pub fn advance(&mut self, now: SimTime) -> Vec<usize> {
        let now_us = now.micros();
        let mut due: Vec<usize> = Vec::new();
        let mut keep: Vec<(u64, usize)> = Vec::new();
        for (d, k) in std::mem::take(&mut self.overdue) {
            if self.live[k] != Some(d) {
                continue; // stale (cancelled or re-armed)
            }
            if d <= now_us {
                self.live[k] = None;
                self.len -= 1;
                due.push(k);
            } else {
                keep.push((d, k));
            }
        }
        self.overdue = keep;
        let mut cascade: Vec<(u64, usize)> = Vec::new();
        if now_us > self.cursor {
            for l in 0..LEVELS {
                let mut bits = self.occupied[l];
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.window_start(l, s) > now_us {
                        continue;
                    }
                    self.occupied[l] &= !(1u64 << s);
                    for (d, k) in std::mem::take(&mut self.levels[l][s]) {
                        if self.live[k] != Some(d) {
                            continue;
                        }
                        if d <= now_us {
                            self.live[k] = None;
                            self.len -= 1;
                            due.push(k);
                        } else {
                            cascade.push((d, k));
                        }
                    }
                }
            }
            self.cursor = now_us;
        }
        for (d, k) in std::mem::take(&mut self.far) {
            if self.live[k] != Some(d) {
                continue;
            }
            if d <= now_us {
                self.live[k] = None;
                self.len -= 1;
                due.push(k);
            } else {
                self.place(d, k); // re-files into the wheel once in range
            }
        }
        // Entries drained from a partially-passed window re-file against
        // the advanced cursor, landing at a strictly finer level.
        for (d, k) in cascade {
            self.place(d, k);
        }
        self.recompute_next();
        due.sort_unstable();
        due
    }

    /// Recomputes the cached exact minimum. Cost is bounded by the slot
    /// count per level (not by the number of armed keys): per level, the
    /// earliest-window slot holding a live entry bounds that level's
    /// minimum (windows within a level are disjoint), but the global
    /// minimum must still take the min **across all levels** — after the
    /// cursor advances, a coarse-level entry whose window the cursor
    /// entered can be earlier than every finer-level entry. Stale entries
    /// are collected as a side effect.
    fn recompute_next(&mut self) {
        let live = &self.live;
        let mut best: Option<u64> = None;
        self.overdue.retain(|&(d, k)| live[k] == Some(d));
        self.far.retain(|&(d, k)| live[k] == Some(d));
        for &(d, _) in self.overdue.iter().chain(self.far.iter()) {
            best = Some(best.map_or(d, |b| b.min(d)));
        }
        for l in 0..LEVELS {
            let mut slots: Vec<(u64, usize)> = Vec::new();
            let mut bits = self.occupied[l];
            while bits != 0 {
                let s = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                slots.push((self.window_start(l, s), s));
            }
            slots.sort_unstable();
            for (_, s) in slots {
                let slot = &mut self.levels[l][s];
                slot.retain(|&(d, k)| live[k] == Some(d));
                let Some(m) = slot.iter().map(|&(d, _)| d).min() else {
                    self.occupied[l] &= !(1u64 << s);
                    continue;
                };
                best = Some(best.map_or(m, |b| b.min(m)));
                break;
            }
        }
        self.next = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tpnr_net::sim::{LinkConfig, NodeId, SimNet};
    use tpnr_net::time::SimDuration;

    /// A scripted hub: one synthetic timer plus whatever is in the network
    /// queue. Records the exact order of timer fires and deliveries. A
    /// `productive` timer "sends" once and disarms; a barren one produces
    /// nothing and stays armed (a wedged actor).
    struct ScriptHub {
        net: SimNet,
        deadline: Option<SimTime>,
        productive: bool,
        log: Vec<(String, u64)>,
        obs: Option<Obs>,
        faults: FaultStats,
    }

    impl EventHub for ScriptHub {
        fn transport(&mut self) -> &mut dyn Transport {
            &mut self.net
        }
        fn next_timer(&self) -> Option<SimTime> {
            self.deadline
        }
        fn obs_mut(&mut self) -> Option<&mut Obs> {
            self.obs.as_mut()
        }
        fn fire_timers(&mut self, now: SimTime) -> usize {
            self.log.push(("timer".into(), now.micros()));
            if self.productive {
                self.deadline = None;
                1
            } else {
                0
            }
        }
        fn deliver(&mut self, env: Envelope) {
            self.log.push(("deliver".into(), env.delivered_at.micros()));
        }
        fn fault_stats(&self) -> FaultStats {
            self.faults
        }
    }

    fn hub_with_traffic(n_msgs: u64, spacing_ms: u64) -> (ScriptHub, NodeId, NodeId) {
        let mut net = SimNet::new(42);
        let a = net.register("a");
        let b = net.register("b");
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: None,
            faults: FaultStats::default(),
        };
        for i in 0..n_msgs {
            hub.net.set_link(
                a,
                b,
                LinkConfig::ideal(SimDuration::from_millis((i + 1) * spacing_ms)),
            );
            hub.net.send(a, b, vec![0]);
        }
        (hub, a, b)
    }

    #[test]
    fn overdue_timer_is_never_starved_by_traffic() {
        // Deliveries at 10, 20, …, 100 ms; a one-shot timer due at 35 ms.
        // The old loop skipped overdue timers while the queue was busy; the
        // shared scheduler must fire it between the 30 ms and 40 ms
        // deliveries.
        let (mut hub, _, _) = hub_with_traffic(10, 10);
        hub.deadline = Some(SimTime(35_000));
        let r = settle(&mut hub, 1000);
        assert!(r.outcome.is_quiescent());
        let timer_pos = hub.log.iter().position(|(k, _)| k == "timer").unwrap();
        assert_eq!(hub.log[timer_pos], ("timer".into(), 35_000));
        assert_eq!(timer_pos, 3, "after the 10/20/30 ms deliveries, before 40 ms");
        assert_eq!(r.delivered, 10);
    }

    #[test]
    fn timer_fires_before_delivery_on_equal_timestamp() {
        let (mut hub, _, _) = hub_with_traffic(3, 10); // deliveries at 10/20/30 ms
        hub.deadline = Some(SimTime(20_000)); // tie with the second delivery
        let r = settle(&mut hub, 100);
        assert!(r.outcome.is_quiescent());
        assert_eq!(
            hub.log,
            vec![
                ("deliver".into(), 10_000),
                ("timer".into(), 20_000),
                ("deliver".into(), 20_000),
                ("deliver".into(), 30_000),
            ],
            "ties resolve timer-first, deterministically"
        );
    }

    #[test]
    fn barren_timer_does_not_livelock() {
        // A timer that produces nothing and never moves must not spin the
        // loop: deliveries drain, then the run is quiescent.
        let (mut hub, _, _) = hub_with_traffic(5, 10);
        hub.deadline = Some(SimTime(1)); // overdue immediately, forever
        hub.productive = false;
        let r = settle(&mut hub, 1000);
        assert!(r.outcome.is_quiescent());
        assert_eq!(r.delivered, 5);
        // It got one chance per world change, not one per step.
        assert!(r.timer_rounds <= 6, "fired {} rounds", r.timer_rounds);
    }

    #[test]
    fn step_cap_is_reported_not_swallowed() {
        let (mut hub, _, _) = hub_with_traffic(10, 10);
        let r = settle(&mut hub, 3);
        assert_eq!(r.outcome, SettleOutcome::StepCapExceeded);
        assert!(!r.outcome.is_quiescent());
        assert_eq!(r.delivered, 3, "stopped exactly at the cap");
        assert!(hub.net.in_flight(), "work was genuinely left over");
    }

    #[test]
    fn quiescent_empty_world() {
        let mut net = SimNet::new(1);
        net.register("only");
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: None,
            faults: FaultStats::default(),
        };
        let r = settle(&mut hub, 10);
        assert!(r.outcome.is_quiescent());
        assert_eq!(r.delivered, 0);
        assert_eq!(r.timer_rounds, 0);
    }

    #[test]
    fn wheel_insert_cancel_peek() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        w.insert(0, 500);
        w.insert(1, 100);
        w.insert(2, 70_000); // level 2
        assert_eq!(w.len(), 3);
        assert_eq!(w.peek(), Some(SimTime(100)));
        w.cancel(1);
        assert_eq!(w.peek(), Some(SimTime(500)));
        w.insert(0, 60); // re-arm earlier
        assert_eq!(w.peek(), Some(SimTime(60)));
        w.insert(0, 800); // re-arm later: the minimum moves
        assert_eq!(w.peek(), Some(SimTime(800)));
        w.cancel(0);
        w.cancel(2);
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        w.cancel(99); // unknown key: no-op
    }

    #[test]
    fn wheel_advance_pops_due_in_key_order_and_cascades() {
        let mut w = TimerWheel::new();
        w.insert(3, 5_000);
        w.insert(1, 5_000);
        w.insert(2, 4_000);
        w.insert(0, 1 << 20); // coarse level, cascades as the cursor nears
        assert_eq!(w.advance(SimTime(5_000)), vec![1, 2, 3], "due keys, key order");
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek(), Some(SimTime(1 << 20)));
        assert_eq!(w.advance(SimTime((1 << 20) - 1)), Vec::<usize>::new());
        assert_eq!(w.peek(), Some(SimTime(1 << 20)), "survives partial cascade");
        assert_eq!(w.advance(SimTime(1 << 20)), vec![0]);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_overdue_and_far_entries_fire_exactly_once() {
        let mut w = TimerWheel::new();
        w.advance(SimTime(10_000)); // move the cursor forward
        w.insert(0, 3_000); // already overdue
        w.insert(1, 1 << 52); // beyond the 2^48 horizon
        assert_eq!(w.peek(), Some(SimTime(3_000)), "overdue entries keep their deadline");
        assert_eq!(w.advance(SimTime(10_000)), vec![0], "overdue fires at now >= deadline");
        assert_eq!(w.peek(), Some(SimTime(1 << 52)));
        assert_eq!(w.advance(SimTime(1 << 52)), vec![1]);
        assert!(w.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model check: the wheel matches a naive `BTreeMap<key, deadline>`
        /// on random insert/cancel/advance sequences — same `peek`, same
        /// `len`, and the same (key-sorted) due set on every advance.
        #[test]
        fn wheel_matches_btreemap_model(
            ops in proptest::collection::vec(
                (0u8..4, 0usize..8, any::<u64>(), 0u32..51),
                1..80,
            ),
        ) {
            let mut wheel = TimerWheel::new();
            let mut model: std::collections::BTreeMap<usize, u64> =
                std::collections::BTreeMap::new();
            let mut now: u64 = 0;
            for (action, key, raw, shift) in ops {
                let mag = raw & ((1u64 << shift) | ((1u64 << shift) - 1));
                match action {
                    0 | 1 => {
                        // Insert relative to now; action 1 biases near-past
                        // deadlines to exercise the overdue path.
                        let d = if action == 1 {
                            now.saturating_sub(mag % 1_000)
                        } else {
                            now.saturating_add(mag)
                        };
                        wheel.insert(key, d);
                        model.insert(key, d);
                    }
                    2 => {
                        wheel.cancel(key);
                        model.remove(&key);
                    }
                    _ => {
                        now = now.saturating_add(mag);
                        let due = wheel.advance(SimTime(now));
                        let mut expect: Vec<usize> = model
                            .iter()
                            .filter(|&(_, &d)| d <= now)
                            .map(|(&k, _)| k)
                            .collect();
                        expect.sort_unstable();
                        model.retain(|_, &mut d| d > now);
                        prop_assert_eq!(due, expect);
                    }
                }
                prop_assert_eq!(
                    wheel.peek().map(|t| t.micros()),
                    model.values().min().copied()
                );
                prop_assert_eq!(wheel.len(), model.len());
            }
        }
    }

    /// Synthetic actor for the wheel-vs-poll equivalence property. Modes:
    /// 0 = one-shot (send one message, disarm; re-arms when a delivery
    /// lands), 1 = barren (produce nothing, never move — the wedged actor
    /// the masking rule exists for), 2 = periodic (send and re-arm),
    /// 3 = silent re-arm (produce nothing but move the deadline).
    #[derive(Clone)]
    struct SynthActor {
        deadline: Option<u64>,
        mode: u8,
        period: u64,
    }

    /// One hub, two scheduling back-ends: `wheel: None` re-derives
    /// `next_timer` by polling every actor (the PR 1 loop), `wheel: Some`
    /// answers from the timer wheel with refresh-on-change hooks. The
    /// settle loop on top is byte-identical, so any divergence in the logs
    /// is the wheel's fault.
    struct SynthHub {
        net: SimNet,
        nodes: Vec<NodeId>,
        actors: Vec<SynthActor>,
        sends_left: u32,
        log: Vec<(&'static str, u64, usize)>,
        wheel: Option<TimerWheel>,
    }

    impl SynthHub {
        fn new(seed: u64, actors: Vec<SynthActor>, sends_left: u32, wheeled: bool) -> Self {
            let mut net = SimNet::new(seed);
            let nodes: Vec<NodeId> =
                (0..actors.len()).map(|i| net.register(&format!("s{i}"))).collect();
            for &a in &nodes {
                for &b in &nodes {
                    if a != b {
                        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(1)));
                    }
                }
            }
            let mut hub = SynthHub {
                net,
                nodes,
                actors,
                sends_left,
                log: Vec::new(),
                wheel: wheeled.then(TimerWheel::new),
            };
            for i in 0..hub.actors.len() {
                hub.refresh(i);
            }
            hub
        }

        fn refresh(&mut self, i: usize) {
            if let Some(wheel) = &mut self.wheel {
                wheel.set(i, self.actors[i].deadline.map(SimTime));
            }
        }

        /// Fires actor `i` at `now`; returns messages produced. Pure
        /// function of (actor state, budget), shared by both back-ends.
        fn fire(&mut self, i: usize, now: SimTime) -> usize {
            self.log.push(("timer", now.micros(), i));
            let (mode, period) = (self.actors[i].mode, self.actors[i].period);
            let budget = self.sends_left > 0;
            let produced = match mode {
                1 => 0, // barren: deadline untouched
                3 => {
                    self.actors[i].deadline = budget.then(|| now.micros().saturating_add(period));
                    0
                }
                _ => {
                    // one-shot / periodic
                    self.actors[i].deadline =
                        (mode == 2 && budget).then(|| now.micros().saturating_add(period));
                    if budget {
                        self.sends_left -= 1;
                        let dst = self.nodes[(i + 1) % self.nodes.len()];
                        self.net.send(self.nodes[i], dst, vec![i as u8]);
                        1
                    } else {
                        0
                    }
                }
            };
            if mode != 1 && !budget {
                self.actors[i].deadline = None;
            }
            produced
        }
    }

    impl EventHub for SynthHub {
        fn transport(&mut self) -> &mut dyn Transport {
            &mut self.net
        }
        fn next_timer(&self) -> Option<SimTime> {
            match &self.wheel {
                Some(wheel) => wheel.peek(),
                None => self.actors.iter().filter_map(|a| a.deadline).min().map(SimTime),
            }
        }
        fn fire_timers(&mut self, now: SimTime) -> usize {
            let mut produced = 0;
            if self.wheel.is_some() {
                let due = self.wheel.as_mut().unwrap().advance(now);
                for i in due {
                    produced += self.fire(i, now);
                    self.refresh(i);
                }
            } else {
                for i in 0..self.actors.len() {
                    if self.actors[i].deadline.is_some_and(|d| now.micros() >= d) {
                        produced += self.fire(i, now);
                    }
                }
            }
            produced
        }
        fn deliver(&mut self, env: Envelope) {
            let dst = self.nodes.iter().position(|&n| n == env.dst).unwrap();
            self.log.push(("deliver", env.delivered_at.micros(), dst));
            // A delivery re-arms an idle one-shot actor: exercises the
            // refresh-after-deliver hook on the wheel side.
            if self.actors[dst].mode == 0
                && self.actors[dst].deadline.is_none()
                && self.sends_left > 0
            {
                self.actors[dst].deadline =
                    Some(env.delivered_at.micros().saturating_add(self.actors[dst].period));
            }
            self.refresh(dst);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole's safety net: on random actor populations and
        /// initial traffic, the wheel-backed hub is observationally
        /// identical to the poll-everyone hub — same interleaved
        /// timer/delivery log (order, instants, actor attribution), same
        /// `SettleOutcome`, same step counts.
        #[test]
        fn wheel_is_observationally_identical_to_poll_loop(
            seed in any::<u64>(),
            specs in proptest::collection::vec(
                (0u8..4, 0u64..200_000, 1u64..150_000),
                1..6,
            ),
            budget in 0u32..12,
            kicks in 0usize..4,
        ) {
            let actors: Vec<SynthActor> = specs
                .iter()
                .map(|&(mode, start, period)| SynthActor {
                    // Half the actors start armed (deadline near start),
                    // half disarmed until traffic wakes them.
                    deadline: (start % 2 == 0).then_some(start),
                    mode,
                    period,
                })
                .collect();
            let run = |wheeled: bool| {
                let mut hub = SynthHub::new(seed, actors.clone(), budget, wheeled);
                for k in 0..kicks.min(hub.nodes.len()) {
                    let dst = hub.nodes[k];
                    let src = hub.nodes[(k + 1) % hub.nodes.len()];
                    if src != dst {
                        hub.net.send(src, dst, vec![0xAA]);
                    }
                }
                let report = settle(&mut hub, 5_000);
                (hub.log, report.outcome, report.delivered, report.timer_rounds)
            };
            let (poll_log, poll_out, poll_del, poll_rounds) = run(false);
            let (wheel_log, wheel_out, wheel_del, wheel_rounds) = run(true);
            prop_assert_eq!(poll_log, wheel_log);
            prop_assert_eq!(poll_out, wheel_out);
            prop_assert_eq!(poll_del, wheel_del);
            prop_assert_eq!(poll_rounds, wheel_rounds);
        }
    }

    #[test]
    fn settle_drains_net_events_and_records_run_size() {
        let mut net = SimNet::new(9);
        let a = net.register("a");
        let b = net.register("b");
        net.set_link(a, b, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: Some(Obs::new()),
            faults: FaultStats::default(),
        };
        hub.net.send_tagged(a, b, vec![0], Some(4)); // lost on the wire
        hub.net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(1)));
        hub.net.send(a, b, vec![1]); // delivered
        let r = settle(&mut hub, 100);
        assert!(r.outcome.is_quiescent());
        let obs = hub.obs.as_ref().unwrap();
        assert_eq!(obs.metrics.dropped, 1);
        assert_eq!(obs.txn(4).dropped, 1);
        let drop_ev =
            obs.events().iter().find(|e| matches!(e.kind, EventKind::Dropped { .. })).unwrap();
        assert_eq!(drop_ev.actor, "b");
        assert_eq!(drop_ev.txn, Some(4));
        assert_eq!(obs.metrics.settle_steps.count(), 1);
        assert_eq!(obs.metrics.settle_steps.max(), Some(1), "one delivery, no timer rounds");
    }
}
