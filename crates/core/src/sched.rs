//! The shared event scheduler behind [`World`](crate::runner::World) and
//! [`MultiWorld`](crate::multi::MultiWorld).
//!
//! Both runners used to carry their own ~100-line settle loops with three
//! latent bugs: an overdue protocol timer could be starved for as long as
//! the network stayed busy (the timer only fired while `deadline >= now`),
//! the step cap was a silent `break` that reported half-settled worlds as
//! settled, and per-transaction accounting was derived from before/after
//! deltas of global counters, which misattributes traffic the moment two
//! transactions interleave. This module is the single replacement: one
//! deadline-ordered loop that merges network deliveries with every actor's
//! protocol timers and fails loudly when the cap is hit.
//!
//! Ordering rules (see DESIGN.md §4):
//!
//! - The next step is whichever of (earliest pending timer, earliest
//!   scheduled delivery) comes first in simulated time.
//! - **Tie-break: timers fire before deliveries at the same instant.** A
//!   reply that lands exactly at the deadline is late — the timeout
//!   sub-protocol starts, deterministically.
//! - An overdue timer (deadline already in the past) fires immediately at
//!   the current simulated time; it can never be pushed behind further
//!   traffic.
//! - A timer that fires without producing output and without moving its
//!   deadline is *barren*; it is masked until the world changes (a delivery
//!   happens or the deadline moves), so a wedged actor cannot livelock the
//!   loop.

use crate::fault::FaultStats;
use crate::message::Message;
use crate::obs::{Event, EventKind, Obs};
use crate::principal::PrincipalId;
use crate::session::{Outgoing, ValidationError};
use tpnr_net::sim::{Envelope, NetEventKind, SimNet};
use tpnr_net::time::SimTime;

/// A protocol participant the scheduler can drive: it receives messages and
/// owns zero or more pending timers.
pub trait Actor {
    /// Handles one delivered protocol message.
    fn on_message(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError>;

    /// Earliest pending protocol timer, if any. Actors without timers (the
    /// provider is purely reactive) use the default.
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }

    /// Fires every timer due at `now` and returns the messages produced.
    fn on_tick(&mut self, _now: SimTime) -> Vec<Outgoing> {
        Vec::new()
    }
}

/// How a settle run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleOutcome {
    /// Nothing left to do: no deliveries in flight and no live timers.
    Quiescent,
    /// Drained, but at least one transaction was abandoned by the retry
    /// policy's give-up bound (`SettleReport::faults.gave_up`). Evidence is
    /// retained, so disputes stay arbitrable; the run is still quiescent.
    Degraded,
    /// The step cap was hit with work still pending. The world is *not*
    /// settled; raise `max_steps` or investigate the livelock (see the
    /// README troubleshooting section).
    StepCapExceeded,
}

impl SettleOutcome {
    /// True when the run drained every delivery and timer (including
    /// degraded runs — degradation is about retry give-up, not residue).
    pub fn is_quiescent(self) -> bool {
        matches!(self, SettleOutcome::Quiescent | SettleOutcome::Degraded)
    }

    /// True when the retry policy abandoned at least one transaction.
    pub fn is_degraded(self) -> bool {
        self == SettleOutcome::Degraded
    }
}

/// What a settle run did.
#[derive(Debug, Clone, Copy)]
pub struct SettleReport {
    /// How the run ended.
    pub outcome: SettleOutcome,
    /// Messages delivered to inboxes.
    pub delivered: usize,
    /// Timer rounds fired.
    pub timer_rounds: usize,
    /// Fault-injection counters (crashes, restarts, retries, snapshots) as
    /// of the end of the run; all-zero for hubs without fault machinery.
    pub faults: FaultStats,
}

/// What a runner must expose for [`settle`] to drive it. The runner keeps
/// ownership of the actors and the routing tables; the scheduler only sees
/// deadlines, deliveries, and opaque dispatch.
pub trait EventHub {
    /// The simulated network.
    fn net_mut(&mut self) -> &mut SimNet;
    /// Earliest pending timer across every actor.
    fn next_timer(&self) -> Option<SimTime>;
    /// Fires all timers due at `now` on every actor and dispatches whatever
    /// they produce. Returns how many messages were dispatched.
    fn fire_timers(&mut self, now: SimTime) -> usize;
    /// Routes one delivered envelope to its actor and dispatches the
    /// actor's replies.
    fn deliver(&mut self, env: Envelope);
    /// The runner's observability sink, if it keeps one. The scheduler
    /// drains the network's drop/duplication events into it and records a
    /// settle-size sample on exit. Headless hubs use the default.
    fn obs_mut(&mut self) -> Option<&mut Obs> {
        None
    }
    /// Cumulative fault-injection counters (crash/restart/retry/snapshot),
    /// copied into `SettleReport::faults` when the run ends. Hubs without
    /// fault machinery use the all-zero default.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Moves pending network events (drops, duplications) into the hub's
/// observability sink, translating node ids to display names. Without a
/// sink the pending buffer is still drained so it cannot accumulate.
fn drain_net_events(hub: &mut dyn EventHub) {
    let pending = hub.net_mut().take_events();
    if pending.is_empty() {
        return;
    }
    let events: Vec<Event> = {
        let net = hub.net_mut();
        pending
            .into_iter()
            .map(|e| Event {
                at: e.at,
                txn: e.txn,
                actor: net.name(e.dst).to_string(),
                kind: match e.kind {
                    NetEventKind::Dropped => {
                        EventKind::Dropped { from: net.name(e.src).to_string() }
                    }
                    NetEventKind::Duplicated => {
                        EventKind::Duplicated { from: net.name(e.src).to_string() }
                    }
                },
            })
            .collect()
    };
    if let Some(obs) = hub.obs_mut() {
        for ev in events {
            obs.record(ev);
        }
    }
}

/// Runs the world until quiescence or the step cap: the single settle loop
/// shared by `World` and `MultiWorld`.
pub fn settle(hub: &mut dyn EventHub, max_steps: usize) -> SettleReport {
    let mut report = SettleReport {
        outcome: SettleOutcome::Quiescent,
        delivered: 0,
        timer_rounds: 0,
        faults: FaultStats::default(),
    };
    let mut barren: Option<SimTime> = None;
    for _ in 0..max_steps {
        drain_net_events(hub);
        let timer = hub.next_timer().filter(|t| barren != Some(*t));
        let delivery = hub.net_mut().next_event_at();
        match (timer, delivery) {
            // Timer first, including on ties (t == at).
            (Some(t), at) if at.is_none_or(|at| t <= at) => {
                let now = hub.net_mut().now().max(t);
                hub.net_mut().advance_clock_to(now);
                let produced = hub.fire_timers(now);
                report.timer_rounds += 1;
                // A fire that neither produced output nor moved the
                // deadline would repeat forever; mask it until something
                // else changes the world.
                barren = (produced == 0 && hub.next_timer() == Some(t)).then_some(t);
            }
            (_, Some(_)) => {
                let env = hub.net_mut().step().expect("delivery was just peeked");
                report.delivered += 1;
                barren = None;
                hub.deliver(env);
            }
            (_, None) => {
                finish(hub, &mut report);
                return report;
            }
        }
    }
    report.outcome = SettleOutcome::StepCapExceeded;
    finish(hub, &mut report);
    report
}

/// End-of-run bookkeeping: drain any events the final step produced, record
/// the run's size in the settle-step histogram, and copy the hub's fault
/// counters into the report (downgrading Quiescent to Degraded when the
/// retry policy abandoned work).
fn finish(hub: &mut dyn EventHub, report: &mut SettleReport) {
    drain_net_events(hub);
    if let Some(obs) = hub.obs_mut() {
        obs.note_settle((report.delivered + report.timer_rounds) as u64);
    }
    report.faults = hub.fault_stats();
    if report.outcome == SettleOutcome::Quiescent && report.faults.gave_up > 0 {
        report.outcome = SettleOutcome::Degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpnr_net::sim::{LinkConfig, NodeId};
    use tpnr_net::time::SimDuration;

    /// A scripted hub: one synthetic timer plus whatever is in the network
    /// queue. Records the exact order of timer fires and deliveries. A
    /// `productive` timer "sends" once and disarms; a barren one produces
    /// nothing and stays armed (a wedged actor).
    struct ScriptHub {
        net: SimNet,
        deadline: Option<SimTime>,
        productive: bool,
        log: Vec<(String, u64)>,
        obs: Option<Obs>,
        faults: FaultStats,
    }

    impl EventHub for ScriptHub {
        fn net_mut(&mut self) -> &mut SimNet {
            &mut self.net
        }
        fn next_timer(&self) -> Option<SimTime> {
            self.deadline
        }
        fn obs_mut(&mut self) -> Option<&mut Obs> {
            self.obs.as_mut()
        }
        fn fire_timers(&mut self, now: SimTime) -> usize {
            self.log.push(("timer".into(), now.micros()));
            if self.productive {
                self.deadline = None;
                1
            } else {
                0
            }
        }
        fn deliver(&mut self, env: Envelope) {
            self.log.push(("deliver".into(), env.delivered_at.micros()));
        }
        fn fault_stats(&self) -> FaultStats {
            self.faults
        }
    }

    fn hub_with_traffic(n_msgs: u64, spacing_ms: u64) -> (ScriptHub, NodeId, NodeId) {
        let mut net = SimNet::new(42);
        let a = net.register("a");
        let b = net.register("b");
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: None,
            faults: FaultStats::default(),
        };
        for i in 0..n_msgs {
            hub.net.set_link(
                a,
                b,
                LinkConfig::ideal(SimDuration::from_millis((i + 1) * spacing_ms)),
            );
            hub.net.send(a, b, vec![0]);
        }
        (hub, a, b)
    }

    #[test]
    fn overdue_timer_is_never_starved_by_traffic() {
        // Deliveries at 10, 20, …, 100 ms; a one-shot timer due at 35 ms.
        // The old loop skipped overdue timers while the queue was busy; the
        // shared scheduler must fire it between the 30 ms and 40 ms
        // deliveries.
        let (mut hub, _, _) = hub_with_traffic(10, 10);
        hub.deadline = Some(SimTime(35_000));
        let r = settle(&mut hub, 1000);
        assert!(r.outcome.is_quiescent());
        let timer_pos = hub.log.iter().position(|(k, _)| k == "timer").unwrap();
        assert_eq!(hub.log[timer_pos], ("timer".into(), 35_000));
        assert_eq!(timer_pos, 3, "after the 10/20/30 ms deliveries, before 40 ms");
        assert_eq!(r.delivered, 10);
    }

    #[test]
    fn timer_fires_before_delivery_on_equal_timestamp() {
        let (mut hub, _, _) = hub_with_traffic(3, 10); // deliveries at 10/20/30 ms
        hub.deadline = Some(SimTime(20_000)); // tie with the second delivery
        let r = settle(&mut hub, 100);
        assert!(r.outcome.is_quiescent());
        assert_eq!(
            hub.log,
            vec![
                ("deliver".into(), 10_000),
                ("timer".into(), 20_000),
                ("deliver".into(), 20_000),
                ("deliver".into(), 30_000),
            ],
            "ties resolve timer-first, deterministically"
        );
    }

    #[test]
    fn barren_timer_does_not_livelock() {
        // A timer that produces nothing and never moves must not spin the
        // loop: deliveries drain, then the run is quiescent.
        let (mut hub, _, _) = hub_with_traffic(5, 10);
        hub.deadline = Some(SimTime(1)); // overdue immediately, forever
        hub.productive = false;
        let r = settle(&mut hub, 1000);
        assert!(r.outcome.is_quiescent());
        assert_eq!(r.delivered, 5);
        // It got one chance per world change, not one per step.
        assert!(r.timer_rounds <= 6, "fired {} rounds", r.timer_rounds);
    }

    #[test]
    fn step_cap_is_reported_not_swallowed() {
        let (mut hub, _, _) = hub_with_traffic(10, 10);
        let r = settle(&mut hub, 3);
        assert_eq!(r.outcome, SettleOutcome::StepCapExceeded);
        assert!(!r.outcome.is_quiescent());
        assert_eq!(r.delivered, 3, "stopped exactly at the cap");
        assert!(hub.net.in_flight(), "work was genuinely left over");
    }

    #[test]
    fn quiescent_empty_world() {
        let mut net = SimNet::new(1);
        net.register("only");
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: None,
            faults: FaultStats::default(),
        };
        let r = settle(&mut hub, 10);
        assert!(r.outcome.is_quiescent());
        assert_eq!(r.delivered, 0);
        assert_eq!(r.timer_rounds, 0);
    }

    #[test]
    fn settle_drains_net_events_and_records_run_size() {
        let mut net = SimNet::new(9);
        let a = net.register("a");
        let b = net.register("b");
        net.set_link(a, b, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let mut hub = ScriptHub {
            net,
            deadline: None,
            productive: true,
            log: Vec::new(),
            obs: Some(Obs::new()),
            faults: FaultStats::default(),
        };
        hub.net.send_tagged(a, b, vec![0], Some(4)); // lost on the wire
        hub.net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(1)));
        hub.net.send(a, b, vec![1]); // delivered
        let r = settle(&mut hub, 100);
        assert!(r.outcome.is_quiescent());
        let obs = hub.obs.as_ref().unwrap();
        assert_eq!(obs.metrics.dropped, 1);
        assert_eq!(obs.txn(4).dropped, 1);
        let drop_ev =
            obs.events().iter().find(|e| matches!(e.kind, EventKind::Dropped { .. })).unwrap();
        assert_eq!(drop_ev.actor, "b");
        assert_eq!(drop_ev.txn, Some(4));
        assert_eq!(obs.metrics.settle_steps.count(), 1);
        assert_eq!(obs.metrics.settle_steps.max(), Some(1), "one delivery, no timer rounds");
    }
}
