//! The storage client (Alice) — TPNR initiator.
//!
//! Alice starts upload and download transactions (Normal mode, two messages
//! total), falls back to the Abort sub-protocol or the Resolve sub-protocol
//! on timeout (paper §4.2–4.3), archives every piece of evidence, and can
//! check a download against the upload-time receipt — the "integrity link"
//! the paper adds between the two sessions.

use crate::config::ProtocolConfig;
use crate::evidence::{
    open_and_verify, seal, seal_and_own, EvidencePlaintext, Flag, SealedEvidence, VerifiedEvidence,
};
use crate::message::{AbortOutcome, Message, ResolveAction};
use crate::principal::{Directory, Principal, PrincipalId};
use crate::session::{Outgoing, Payload, TxnState, ValidationError, Validator};
use std::collections::HashMap;
use tpnr_crypto::hash::DigestCache;
use tpnr_crypto::{ct, ChaChaRng, RsaPublicKey};
use tpnr_net::codec::Wire;
use tpnr_net::time::SimTime;
use tpnr_net::Bytes;

/// What Alice does when the provider goes quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutStrategy {
    /// Send an Abort request directly to Bob (off-line TTP, §4.2),
    /// escalating to Resolve if even the abort goes unanswered.
    AbortFirst,
    /// Go straight to the TTP (§4.3).
    ResolveImmediately,
}

/// Alice's record of one transaction.
#[derive(Debug, Clone)]
pub struct ClientTxn {
    /// Upload or download.
    pub kind: Flag,
    /// Object key.
    pub object: Vec<u8>,
    /// Hash of the payload Alice sent (upload) or of the request (download).
    pub sent_hash: Vec<u8>,
    /// Alice's own NRO (kept for Resolve and for disputes).
    pub nro: VerifiedEvidence,
    /// Bob's NRR once received and verified.
    pub nrr: Option<VerifiedEvidence>,
    /// Download payload once received.
    pub received: Option<Payload>,
    /// Current state.
    pub state: TxnState,
    /// When the pending step times out.
    pub deadline: SimTime,
    /// Timeout handling policy.
    pub strategy: TimeoutStrategy,
    /// Whether an abort has been attempted already.
    pub abort_attempted: bool,
    /// Timeout-driven sends (abort/resolve) spent so far; drives the
    /// [`RetryPolicy`](crate::fault::RetryPolicy) backoff and give-up bound.
    pub attempts: u32,
}

/// The client actor.
pub struct Client {
    me: Principal,
    cfg: ProtocolConfig,
    dir: Directory,
    ttp: PrincipalId,
    provider: PrincipalId,
    rng: ChaChaRng,
    validator: Validator,
    txns: HashMap<u64, ClientTxn>,
    wire_keys: HashMap<PrincipalId, RsaPublicKey>,
    next_txn: u64,
    /// Memoizes payload commitments by buffer identity: an object uploaded,
    /// re-sent, and checked on download hashes once per algorithm.
    cache: DigestCache,
    /// Message/tick counters, maintained by the scheduler-facing
    /// [`Actor`](crate::sched::Actor) impl.
    pub actor_stats: crate::obs::ActorStats,
    /// Retry-policy counters (resends, give-ups). Monotone: excluded from
    /// durable snapshots so restarts never undercount.
    pub retry_stats: crate::fault::RetryStats,
    /// Crash-recovery epochs survived; scales the sequence skip applied on
    /// each restore so dirty-window counters are never reused.
    restarts: u64,
}

impl Client {
    /// Creates a client bound to one provider and one TTP.
    pub fn new(
        me: Principal,
        cfg: ProtocolConfig,
        dir: Directory,
        ttp: PrincipalId,
        provider: PrincipalId,
        mut rng: ChaChaRng,
    ) -> Self {
        let my_id = me.id();
        let next_txn = rng.gen_range(1, 1 << 48); // unique ids across clients
        Client {
            me,
            cfg,
            dir,
            ttp,
            provider,
            rng,
            validator: Validator::new(my_id, ttp),
            txns: HashMap::new(),
            wire_keys: HashMap::new(),
            next_txn,
            cache: DigestCache::new(32),
            actor_stats: crate::obs::ActorStats::default(),
            retry_stats: crate::fault::RetryStats::default(),
            restarts: 0,
        }
    }

    /// This client's principal id.
    pub fn id(&self) -> PrincipalId {
        self.me.id()
    }

    /// Learns a key from the wire (honoured only when key authentication is
    /// ablated).
    pub fn learn_wire_key(&mut self, id: PrincipalId, pk: RsaPublicKey) {
        self.wire_keys.insert(id, pk);
    }

    fn lookup_key(&self, id: &PrincipalId) -> Option<RsaPublicKey> {
        if self.cfg.authenticate_keys {
            self.dir.lookup(id).cloned()
        } else {
            self.wire_keys.get(id).cloned().or_else(|| self.dir.lookup(id).cloned())
        }
    }

    /// Alice's record for a transaction.
    pub fn txn(&self, txn_id: u64) -> Option<&ClientTxn> {
        self.txns.get(&txn_id)
    }

    /// State of a transaction (None when unknown).
    pub fn txn_state(&self, txn_id: u64) -> Option<TxnState> {
        self.txns.get(&txn_id).map(|t| t.state)
    }

    /// All transaction ids Alice has started.
    pub fn txn_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Data received by a completed download.
    pub fn download_result(&self, txn_id: u64) -> Option<&Payload> {
        self.txns.get(&txn_id)?.received.as_ref()
    }

    /// Evicts a settled transaction to the runner's archived-evidence log:
    /// removes the in-memory record and retires the validator's replay
    /// window for it (late traffic is then rejected as
    /// `archived-transaction` instead of being offered a fresh window).
    /// Returns the record so the caller can seal its evidence into the
    /// archive; `None` if the transaction is unknown.
    pub fn evict_txn(&mut self, txn_id: u64) -> Option<ClientTxn> {
        let record = self.txns.remove(&txn_id)?;
        self.validator.retire_txn(txn_id);
        Some(record)
    }

    /// Transactions retired to archive tombstones by this client's
    /// validator.
    pub fn archived_txn_count(&self) -> usize {
        self.validator.archived_count()
    }

    /// Earliest timeout deadline over all non-terminal transactions (the
    /// scheduler's view of this client's pending timers).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.txns.values().filter(|t| !t.state.is_terminal()).map(|t| t.deadline).min()
    }

    fn build_transfer(
        &mut self,
        flag: Flag,
        payload: Payload,
        now: SimTime,
        strategy: TimeoutStrategy,
    ) -> Result<(u64, Vec<Outgoing>), ValidationError> {
        let txn_id = self.next_txn;
        self.next_txn += 1;
        let hash = payload.commit_cached(&self.cfg, &mut self.cache);
        let pt = EvidencePlaintext {
            flag,
            sender: self.me.id(),
            recipient: self.provider,
            ttp: self.ttp,
            txn_id,
            seq: self.validator.alloc_seq(txn_id),
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object: payload.key.clone(),
            hash_alg: self.cfg.hash_alg,
            data_hash: hash.clone(),
        };
        let provider_pk =
            self.lookup_key(&self.provider).ok_or(ValidationError::NoKey(self.provider))?;
        // One sign_pair serves both artifacts: the sealed evidence for Bob
        // and Alice's own archived NRO (still built through the
        // core::evidence signing constructors — EVIDENCE-CTOR).
        let (sealed, nro) = seal_and_own(&self.cfg, &self.me, &provider_pk, &pt, &mut self.rng)
            .map_err(ValidationError::Evidence)?;
        self.txns.insert(
            txn_id,
            ClientTxn {
                kind: flag,
                object: payload.key.clone(),
                sent_hash: hash,
                nro,
                nrr: None,
                received: None,
                state: TxnState::Pending,
                deadline: now.after(self.cfg.response_timeout),
                strategy,
                abort_attempted: false,
                attempts: 0,
            },
        );
        Ok((
            txn_id,
            vec![Outgoing {
                to: self.provider,
                msg: Message::Transfer {
                    plaintext: pt,
                    data: payload.to_wire_bytes(),
                    evidence: sealed,
                },
            }],
        ))
    }

    /// Starts an upload (Normal mode message 1 of 2).
    ///
    /// `data` is anything convertible to [`Bytes`]; passing an owned
    /// `Vec<u8>` (or an existing `Bytes` clone) moves the buffer in without
    /// copying it.
    pub fn begin_upload(
        &mut self,
        key: &[u8],
        data: impl Into<Bytes>,
        now: SimTime,
        strategy: TimeoutStrategy,
    ) -> Result<(u64, Vec<Outgoing>), ValidationError> {
        self.build_transfer(
            Flag::UploadRequest,
            Payload { key: key.to_vec(), data: data.into() },
            now,
            strategy,
        )
    }

    /// Starts a download (Normal mode message 1 of 2).
    pub fn begin_download(
        &mut self,
        key: &[u8],
        now: SimTime,
        strategy: TimeoutStrategy,
    ) -> Result<(u64, Vec<Outgoing>), ValidationError> {
        self.build_transfer(
            Flag::DownloadRequest,
            Payload { key: key.to_vec(), data: Bytes::new() },
            now,
            strategy,
        )
    }

    /// Handles one incoming message.
    pub fn handle(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        match msg {
            Message::Receipt { plaintext, data, evidence } => {
                self.handle_receipt(from, plaintext, data, evidence, now)
            }
            Message::AbortReply { outcome, plaintext, evidence } => {
                self.handle_abort_reply(from, *outcome, plaintext, evidence, now)
            }
            Message::ResolveReply { action, plaintext, evidence } => {
                self.handle_resolve_reply(from, *action, plaintext, evidence.as_ref(), now)
            }
            other => Err(ValidationError::UnexpectedFlag(other.plaintext().flag)),
        }
    }

    fn handle_receipt(
        &mut self,
        from: PrincipalId,
        pt: &EvidencePlaintext,
        data: &Bytes,
        evidence: &SealedEvidence,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let expected = if self.cfg.bind_identities { Some(self.provider) } else { None };
        let _ = from;
        self.validator.check(&self.cfg, pt, expected, now)?;
        let txn = self.txns.get(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
        let ok_flag = matches!(
            (txn.kind, pt.flag),
            (Flag::UploadRequest, Flag::UploadReceipt)
                | (Flag::DownloadRequest, Flag::DownloadResponse)
        );
        if !ok_flag {
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        // On upload the receipt must acknowledge exactly what we sent.
        if txn.kind == Flag::UploadRequest && !ct::eq(&pt.data_hash, &txn.sent_hash) {
            return Err(ValidationError::HashMismatch);
        }
        // On download the carried data must match the signed hash. Decoding
        // from the Bytes frame keeps the bulk data shared with the received
        // message rather than copying it out.
        let received = if txn.kind == Flag::DownloadRequest {
            let payload =
                Payload::from_wire_bytes(data).map_err(|_| ValidationError::HashMismatch)?;
            let object_matches = payload.key == txn.object;
            let commitment = payload.commit_cached(&self.cfg, &mut self.cache);
            if !ct::eq(&commitment, &pt.data_hash) || !object_matches {
                return Err(ValidationError::HashMismatch);
            }
            Some(payload)
        } else {
            None
        };
        let sender_pk = self.lookup_key(&pt.sender).ok_or(ValidationError::NoKey(pt.sender))?;
        let nrr = open_and_verify(&self.cfg, &self.me, &sender_pk, pt, evidence)
            .map_err(ValidationError::Evidence)?;
        let txn = self.txns.get_mut(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
        txn.nrr = Some(nrr);
        txn.received = received;
        txn.state = TxnState::Completed;
        Ok(Vec::new())
    }

    fn handle_abort_reply(
        &mut self,
        _from: PrincipalId,
        outcome: AbortOutcome,
        pt: &EvidencePlaintext,
        evidence: &SealedEvidence,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let expected = if self.cfg.bind_identities { Some(self.provider) } else { None };
        self.validator.check(&self.cfg, pt, expected, now)?;
        if pt.flag != Flag::AbortResponse {
            return Err(ValidationError::UnexpectedFlag(pt.flag));
        }
        let sender_pk = self.lookup_key(&pt.sender).ok_or(ValidationError::NoKey(pt.sender))?;
        let nrr = open_and_verify(&self.cfg, &self.me, &sender_pk, pt, evidence)
            .map_err(ValidationError::Evidence)?;
        let txn = self.txns.get_mut(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
        match outcome {
            AbortOutcome::Accept => {
                txn.nrr = Some(nrr);
                txn.state = TxnState::Aborted;
            }
            AbortOutcome::Reject => {
                // Bob completed the transaction; his NRR-abort still proves
                // he answered. Alice treats the original as completed-ish
                // but flags the rejection.
                txn.nrr = Some(nrr);
                txn.state = TxnState::AbortRejected;
            }
            AbortOutcome::Error => {
                // Regenerate the abort request (paper: "double check the
                // parameters … regenerate it, and re-submit").
                txn.abort_attempted = false;
                txn.deadline = now; // retry immediately on next poll
            }
        }
        Ok(Vec::new())
    }

    fn handle_resolve_reply(
        &mut self,
        from: PrincipalId,
        action: ResolveAction,
        pt: &EvidencePlaintext,
        evidence: Option<&SealedEvidence>,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        // Resolve replies are routed through the TTP.
        if self.cfg.bind_identities && from != self.ttp {
            return Err(ValidationError::IdentityMismatch);
        }
        self.validator.check(&self.cfg, pt, None, now)?;
        let (kind, sent_hash, state) = {
            let txn = self.txns.get(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
            (txn.kind, txn.sent_hash.clone(), txn.state)
        };
        // A late/replayed resolve reply must not overwrite a settled state.
        if state != TxnState::Resolving {
            return Ok(Vec::new());
        }
        match action {
            ResolveAction::Continue => {
                // The reply plaintext is Bob's re-issued NRR plaintext.
                let sender_pk =
                    self.lookup_key(&pt.sender).ok_or(ValidationError::NoKey(pt.sender))?;
                let sealed = evidence
                    .ok_or(ValidationError::Evidence(crate::evidence::EvidenceError::Malformed))?;
                let nrr = open_and_verify(&self.cfg, &self.me, &sender_pk, pt, sealed)
                    .map_err(ValidationError::Evidence)?;
                // On upload the re-issued receipt must match what we sent.
                if kind == Flag::UploadRequest && !ct::eq(&pt.data_hash, &sent_hash) {
                    return Err(ValidationError::HashMismatch);
                }
                let txn =
                    self.txns.get_mut(&pt.txn_id).ok_or(ValidationError::UnknownTxn(pt.txn_id))?;
                txn.nrr = Some(nrr);
                txn.state = TxnState::Completed;
            }
            ResolveAction::Restart => {
                // Bob never saw the transfer; Alice marks it failed locally
                // (the application decides whether to retry as a new txn).
                self.txns
                    .get_mut(&pt.txn_id)
                    .ok_or(ValidationError::UnknownTxn(pt.txn_id))?
                    .state = TxnState::Failed;
            }
            ResolveAction::Failed => {
                self.txns
                    .get_mut(&pt.txn_id)
                    .ok_or(ValidationError::UnknownTxn(pt.txn_id))?
                    .state = TxnState::Failed;
            }
        }
        Ok(Vec::new())
    }

    /// Drives timeouts: for every pending transaction past its deadline,
    /// emits the Abort or Resolve step per its strategy.
    pub fn poll_timeouts(&mut self, now: SimTime) -> Vec<Outgoing> {
        let due: Vec<u64> = self
            .txns
            .iter()
            .filter(|(_, t)| !t.state.is_terminal() && now >= t.deadline)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::new();
        for txn_id in due {
            let (strategy, abort_attempted, state, attempts) = {
                let t = &self.txns[&txn_id];
                (t.strategy, t.abort_attempted, t.state, t.attempts)
            };
            // Retry budget spent: give up. The transaction is declared
            // failed but all sealed evidence (the NRO, any NRR) is
            // retained, so a dispute stays arbitrable. Surfaced as
            // `SettleOutcome::Degraded` and the `gave_up` counter.
            if self.cfg.retry.exhausted(attempts) {
                if let Some(t) = self.txns.get_mut(&txn_id) {
                    t.state = TxnState::Failed;
                }
                self.retry_stats.gave_up += 1;
                continue;
            }
            let escalate_to_resolve = state == TxnState::Resolving
                || strategy == TimeoutStrategy::ResolveImmediately
                || abort_attempted;
            if escalate_to_resolve {
                if state != TxnState::Resolving || now >= self.txns[&txn_id].deadline {
                    out.extend(self.send_resolve(txn_id, now));
                }
            } else {
                out.extend(self.send_abort(txn_id, now));
            }
        }
        out
    }

    /// Computes the deadline for the (0-based) `attempt`th timeout-driven
    /// send: retry-policy backoff over `base` plus deterministic jitter
    /// drawn from the client's seeded RNG. With the legacy policy this is
    /// exactly `now + base` and draws nothing.
    fn retry_deadline(
        &mut self,
        now: SimTime,
        base: tpnr_net::time::SimDuration,
        attempt: u32,
    ) -> SimTime {
        let backed = self.cfg.retry.backoff(base, attempt);
        let mut us = backed.micros();
        if self.cfg.retry.jitter_pct > 0 {
            let span = (us / 100).saturating_mul(u64::from(self.cfg.retry.jitter_pct));
            if span > 0 {
                us = us.saturating_add(self.rng.gen_below(span + 1));
            }
        }
        now.after(tpnr_net::time::SimDuration::from_micros(us))
    }

    /// Accounts one timeout-driven send on `txn_id` and returns the attempt
    /// index to back off with. Sends beyond the first count as retries.
    fn note_attempt(&mut self, txn_id: u64) -> u32 {
        let Some(txn) = self.txns.get_mut(&txn_id) else { return 0 };
        let attempt = txn.attempts;
        txn.attempts = txn.attempts.saturating_add(1);
        if attempt > 0 {
            self.retry_stats.retries += 1;
        }
        attempt
    }

    fn send_abort(&mut self, txn_id: u64, now: SimTime) -> Vec<Outgoing> {
        let Some(txn) = self.txns.get(&txn_id) else { return Vec::new() };
        let object = txn.object.clone();
        let sent_hash = txn.sent_hash.clone();
        let pt = EvidencePlaintext {
            flag: Flag::AbortRequest,
            sender: self.me.id(),
            recipient: self.provider,
            ttp: self.ttp,
            txn_id,
            seq: self.validator.alloc_seq(txn_id),
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object,
            hash_alg: self.cfg.hash_alg,
            data_hash: sent_hash,
        };
        let Some(provider_pk) = self.lookup_key(&self.provider) else { return Vec::new() };
        let Ok(sealed) = seal(&self.cfg, &self.me, &provider_pk, &pt, &mut self.rng) else {
            return Vec::new();
        };
        let attempt = self.note_attempt(txn_id);
        let deadline = self.retry_deadline(now, self.cfg.response_timeout, attempt);
        let Some(txn) = self.txns.get_mut(&txn_id) else { return Vec::new() };
        txn.abort_attempted = true;
        txn.deadline = deadline;
        vec![Outgoing {
            to: self.provider,
            msg: Message::Abort { plaintext: pt, evidence: sealed },
        }]
    }

    fn send_resolve(&mut self, txn_id: u64, now: SimTime) -> Vec<Outgoing> {
        let Some(txn) = self.txns.get(&txn_id) else { return Vec::new() };
        let nro = txn.nro.clone();
        let object = txn.object.clone();
        let pt = EvidencePlaintext {
            flag: Flag::ResolveRequest,
            sender: self.me.id(),
            recipient: self.ttp,
            ttp: self.ttp,
            txn_id,
            seq: self.validator.alloc_seq(txn_id),
            nonce: self.rng.next_u64(),
            time_limit: now.after(self.cfg.message_time_limit),
            object,
            hash_alg: self.cfg.hash_alg,
            data_hash: txn.sent_hash.clone(),
        };
        let attempt = self.note_attempt(txn_id);
        let deadline = self.retry_deadline(now, self.cfg.response_timeout.times(2), attempt);
        let Some(txn) = self.txns.get_mut(&txn_id) else { return Vec::new() };
        txn.state = TxnState::Resolving;
        txn.deadline = deadline;
        vec![Outgoing {
            to: self.ttp,
            msg: Message::Resolve {
                plaintext: pt,
                nro,
                report: "no response from provider before timeout".to_string(),
            },
        }]
    }

    /// Crash-recovery epochs this client has survived.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// The integrity link: checks a completed download of `download_txn`
    /// against the NRR archived for `upload_txn` (same object). Returns
    /// `None` when either transaction lacks evidence.
    pub fn verify_download_against_upload(
        &self,
        upload_txn: u64,
        download_txn: u64,
    ) -> Option<bool> {
        let up = self.txns.get(&upload_txn)?.nrr.as_ref()?;
        let down = self.txns.get(&download_txn)?.nrr.as_ref()?;
        if up.plaintext.object != down.plaintext.object {
            return None;
        }
        Some(ct::eq(&up.plaintext.data_hash, &down.plaintext.data_hash))
    }
}

/// Durable image of a [`Client`]: session table, archived evidence and
/// validator sequence state. The RNG, digest cache and monotone telemetry
/// stay live — rolling an RNG back would replay nonces.
#[derive(Debug, Clone)]
pub struct ClientSnapshot {
    txns: HashMap<u64, ClientTxn>,
    validator: crate::session::ValidatorSnapshot,
    next_txn: u64,
    bytes: u64,
}

impl ClientSnapshot {
    /// Approximate serialized size of this snapshot.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl crate::fault::Durable for Client {
    type Snapshot = ClientSnapshot;

    fn snapshot(&self) -> ClientSnapshot {
        let mut bytes = self.validator.state_bytes() + 16;
        for t in self.txns.values() {
            bytes += (t.object.len() + t.sent_hash.len() + 64) as u64;
            bytes += crate::fault::evidence_bytes(&t.nro);
            if let Some(nrr) = &t.nrr {
                bytes += crate::fault::evidence_bytes(nrr);
            }
            if let Some(p) = &t.received {
                bytes += (p.key.len() + p.data.as_ref().len()) as u64;
            }
        }
        ClientSnapshot {
            txns: self.txns.clone(),
            validator: self.validator.snapshot(),
            next_txn: self.next_txn,
            bytes,
        }
    }

    fn restore(&mut self, snap: &ClientSnapshot) {
        self.restarts += 1;
        let skip = self.restarts.saturating_mul(crate::fault::SEQ_RECOVERY_SKIP);
        self.txns = snap.txns.clone();
        self.validator.restore_with_skip(&snap.validator, skip);
        // Transaction ids allocated in the lost dirty window must never be
        // reused either; jump past anything the window could have minted.
        self.next_txn = snap.next_txn.saturating_add(skip);
    }
}

impl crate::sched::Actor for Client {
    fn on_message(
        &mut self,
        from: PrincipalId,
        msg: &Message,
        now: SimTime,
    ) -> Result<Vec<Outgoing>, ValidationError> {
        let result = self.handle(from, msg, now);
        self.actor_stats.note_message(&result);
        result
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Client::next_deadline(self)
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Outgoing> {
        let out = self.poll_timeouts(now);
        self.actor_stats.note_tick(&out);
        out
    }
}
