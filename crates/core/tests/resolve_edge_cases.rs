//! Edge cases of the Abort and Resolve sub-protocols (paper §4.2–4.3):
//! error-and-regenerate abort handling, abort-after-completion rejection,
//! forged resolve requests at the TTP, and resolve replay safety.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::evidence::{Flag, SealedEvidence};
use tpnr_core::message::Message;
use tpnr_core::runner::World;
use tpnr_core::session::TxnState;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{Action, LinkConfig};

#[test]
fn abort_after_completion_is_rejected() {
    // Bob completed the upload (stored + issued NRR) but the receipt was
    // lost. Alice aborts; Bob answers Reject — too late to cancel — and
    // Alice records the AbortRejected terminal state, still holding Bob's
    // signed abort acknowledgement.
    let mut w = World::new(11, ProtocolConfig::full());
    let (a, b) = (w.alice_node, w.bob_node);
    // Drop only the first bob→alice message (the receipt); let later ones by.
    let dropped = Arc::new(AtomicBool::new(false));
    let flag = dropped.clone();
    w.net_mut().set_interceptor(Box::new(
        move |src: tpnr_net::NodeId, dst: tpnr_net::NodeId, _p: &[u8], _t| {
            if src == b && dst == a && !flag.load(Ordering::Relaxed) {
                flag.store(true, Ordering::Relaxed);
                Action::Drop
            } else {
                Action::Deliver
            }
        },
    ));
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::AbortRejected);
    assert!(w.client.txn(r.txn_id).unwrap().nrr.is_some(), "Bob's abort NRR archived");
    // The data IS stored — Bob completed his side.
    assert_eq!(w.provider.peek_storage(b"k"), Some(&b"data"[..]));
}

#[test]
fn corrupted_abort_gets_error_reply_and_retry_succeeds() {
    // The paper's Error answer: "Bob will send an Error message that
    // request Alice double check the parameters … regenerate it, and
    // re-submit the request."
    let mut w = World::new(12, ProtocolConfig::full());
    w.provider.behavior.respond_transfers = false; // force the abort path
    let (a, b) = (w.alice_node, w.bob_node);
    let corrupted_once = Arc::new(AtomicBool::new(false));
    let flag = corrupted_once.clone();
    w.net_mut().set_interceptor(Box::new(
        move |src: tpnr_net::NodeId, dst: tpnr_net::NodeId, payload: &[u8], _t| {
            if src == a && dst == b && !flag.load(Ordering::Relaxed) {
                if let Ok(Message::Abort { plaintext, .. }) = Message::from_wire(payload) {
                    // Corrupt the sealed evidence: Bob can't verify it and
                    // must answer Error.
                    flag.store(true, Ordering::Relaxed);
                    let forged = Message::Abort {
                        plaintext,
                        evidence: SealedEvidence { sealed: vec![0xde, 0xad, 0xbe, 0xef] },
                    };
                    return Action::Modify(forged.to_wire());
                }
            }
            Action::Deliver
        },
    ));
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    // After the Error round-trip, the regenerated abort is accepted.
    assert_eq!(r.outcome, TxnState::Aborted);
    assert!(corrupted_once.load(Ordering::Relaxed), "the corruption path actually ran");
    // The event stream shows an extra Abort/AbortReply pair beyond the
    // minimum (the garbled forgery plus the regenerated original).
    let aborts = w.obs.events().iter().filter(|e| e.msg_kind() == Some("Abort")).count();
    assert!(aborts >= 2, "abort was regenerated, saw {aborts}");
}

#[test]
fn forged_resolve_rejected_by_ttp() {
    // Mallory cannot pull Bob into a resolve for a transaction she invents:
    // the TTP re-verifies the attached NRO signature against the directory.
    let mut w = World::new(13, ProtocolConfig::full());
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Completed);

    // Build a resolve whose NRO has a doctored hash.
    let mut nro = w.client.txn(r.txn_id).unwrap().nro.clone();
    nro.plaintext.data_hash[0] ^= 1;
    let pt = tpnr_core::evidence::EvidencePlaintext {
        flag: Flag::ResolveRequest,
        sender: w.client.id(),
        recipient: w.ttp.id(),
        ttp: w.ttp.id(),
        txn_id: r.txn_id,
        seq: 10,
        nonce: 1,
        time_limit: tpnr_net::time::SimTime(u64::MAX),
        object: b"k".to_vec(),
        hash_alg: tpnr_crypto::hash::HashAlg::Sha256,
        data_hash: nro.plaintext.data_hash.clone(),
    };
    let msg = Message::Resolve { plaintext: pt, nro, report: "forged".into() };
    let alice_id = w.client.id();
    let now = w.net().now();
    let result = w.ttp.handle(alice_id, &msg, now);
    assert!(result.is_err(), "TTP must reject the doctored NRO");
    assert_eq!(w.ttp.stats.resolves_rejected, 1);
    assert_eq!(w.ttp.stats.forwards_sent, 0, "Bob is never bothered");
}

#[test]
fn resolve_from_wrong_party_rejected() {
    // A resolve naming Alice as sender but delivered from another principal
    // fails the identity binding at the TTP.
    let mut w = World::new(14, ProtocolConfig::full());
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    let nro = w.client.txn(r.txn_id).unwrap().nro.clone();
    let pt = tpnr_core::evidence::EvidencePlaintext {
        flag: Flag::ResolveRequest,
        sender: w.client.id(),
        recipient: w.ttp.id(),
        ttp: w.ttp.id(),
        txn_id: r.txn_id,
        seq: 10,
        nonce: 1,
        time_limit: tpnr_net::time::SimTime(u64::MAX),
        object: b"k".to_vec(),
        hash_alg: tpnr_crypto::hash::HashAlg::Sha256,
        data_hash: nro.plaintext.data_hash.clone(),
    };
    let msg = Message::Resolve { plaintext: pt, nro, report: "relayed".into() };
    let bob_id = w.provider.id(); // wrong wire sender
    let now = w.net().now();
    assert!(w.ttp.handle(bob_id, &msg, now).is_err());
}

#[test]
fn resolve_completes_then_late_receipt_is_harmless() {
    // The receipt is delayed (not dropped): Alice resolves, completes via
    // the TTP, and the original receipt arrives afterwards. It must not
    // disturb the settled state.
    let mut w = World::new(15, ProtocolConfig::full());
    let (a, b) = (w.alice_node, w.bob_node);
    // Delay bob→alice by 90 seconds — far beyond the resolve settlement.
    w.net_mut().set_link(b, a, LinkConfig::ideal(tpnr_net::time::SimDuration::from_secs(90)));
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Completed);
    assert!(r.report.ttp_used);
    // Deliver whatever is still in flight (the slow receipt).
    w.settle();
    assert_eq!(w.client.txn_state(r.txn_id), Some(TxnState::Completed));
}

#[test]
fn ttp_ignores_unsolicited_resolve_replies() {
    let mut w = World::new(16, ProtocolConfig::full());
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    let pt = w.client.txn(r.txn_id).unwrap().nro.plaintext.clone();
    let msg = Message::ResolveReply {
        action: tpnr_core::message::ResolveAction::Continue,
        plaintext: pt,
        evidence: None,
    };
    let bob_id = w.provider.id();
    let now = w.net().now();
    // No pending resolve exists: the reply is refused, nothing is relayed.
    assert!(w.ttp.handle(bob_id, &msg, now).is_err());
    assert_eq!(w.ttp.stats.replies_relayed, 0);
}
