//! Backend parity (E14 satellite): the protocol state machines, fault
//! plans and invariant checks must behave identically on every
//! [`Transport`] backend — the deterministic simulator and the in-process
//! channel wire — with zero per-backend protocol code. Each scenario below
//! is written once against `GenericWorld<T>` and instantiated per backend
//! by the `backend_parity!` template macro.
//!
//! The closing proptest pins the redesign's zero-cost claim: a `SimNet`
//! driven through `dyn Transport` is byte-identical to the same `SimNet`
//! driven through its pre-redesign inherent `step()` loop.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use tpnr_core::fault::{CrashPoint, FaultPlan};
use tpnr_core::prelude::*;
use tpnr_net::sim::{Action, LinkConfig, SimNet};
use tpnr_net::tcp::ChannelNet;
use tpnr_net::time::SimDuration;
use tpnr_net::Bytes;

/// Every scenario ends by checking the backend's conservation law: each
/// sent copy (plus duplicates minted on the wire) is eventually delivered
/// or dropped — nothing vanishes unaccounted on any backend.
fn assert_conserved<T: Transport>(w: &GenericWorld<T>) {
    let s = w.net().stats();
    assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated, "conservation violated: {s:?}");
}

fn normal_upload_two_messages<T: Transport>(net: T) {
    let mut w = GenericWorld::with_transport(net, 5, ProtocolConfig::full());
    let r = w.upload(b"backup/q3", b"financial data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Completed);
    assert_eq!(r.report.messages, 2, "Normal mode is a two-step exchange on every wire");
    assert!(!r.report.ttp_used, "the TTP stays off-line in Normal mode");
    assert!(r.arbitrable());
    assert_conserved(&w);
}

fn crash_recovery_terminates_arbitrable<T: Transport>(net: T) {
    // Bob crashes the instant Msg1 arrives; Alice's abort sub-protocol
    // settles the session and she keeps arbitrable evidence. The crash,
    // restart and outage window all run through scheduler timers and
    // transport-level drops, so the scenario is backend-neutral.
    let cfg = ProtocolConfig::builder()
        .fault_plan(FaultPlan::none().with_crash_on_msg("bob", "Transfer", CrashPoint::Before))
        .build();
    let mut w = GenericWorld::with_transport(net, 41, cfg);
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Aborted);
    assert!(r.arbitrable(), "aborted session must stay arbitrable");
    assert!(r.nrr.is_some(), "Bob's signed abort acknowledgement survives his crash");
    let f = w.fault_counters();
    assert_eq!(f.crashes, 1);
    assert_eq!(f.restarts, 1);
    assert_eq!(w.provider.restart_count(), 1);
    assert_conserved(&w);
}

fn timeliness_timer_drives_resolve<T: Transport>(net: T) {
    // A fully silent provider: only the client's response timer can move
    // the session forward. Timer scheduling and clock advancement are the
    // scheduler's job, so the deadline fires identically on every backend.
    let mut w = GenericWorld::with_transport(net, 6, ProtocolConfig::full());
    w.provider.behavior.respond_transfers = false;
    w.provider.behavior.respond_aborts = false;
    w.provider.behavior.respond_resolves = false;
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Failed);
    assert!(r.report.ttp_used, "resolve escalated to the TTP");
    assert!(r.arbitrable(), "failure is declared, never limbo");
    assert_eq!(w.ttp.stats.failures_declared, 1);
    assert_conserved(&w);
}

fn seq_no_reuse_rejected<T: Transport>(net: T) {
    // Wiretap the client's transfer, then replay the captured bytes: the
    // per-(txn, sender) replay window must refuse the stale sequence
    // number on every backend (the §5.4 defence is wire-independent).
    let mut w = GenericWorld::with_transport(net, 8, ProtocolConfig::full());
    let (a, b) = (w.alice_node, w.bob_node);
    let tape: Arc<Mutex<Vec<Vec<u8>>>> = Arc::default();
    let tap = tape.clone();
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if src == a && dst == b {
            tap.lock().unwrap().push(payload.to_vec());
        }
        Action::Deliver
    }));
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Completed);
    w.net_mut().clear_interceptor();

    let replay = tape.lock().unwrap()[0].clone();
    w.net_mut().send_tagged(a, b, Bytes::from(replay), None);
    w.settle();
    assert_eq!(w.obs.metrics.rejected, 1, "replayed transfer must be rejected");
    assert_eq!(w.obs.metrics.rejected_by.get("stale-sequence"), Some(&1));
    assert_conserved(&w);
}

fn adversarial_drop_recovers_via_ttp<T: Transport>(net: T) {
    // Interceptor-driven loss (the §5 attacker owns the wire): every
    // provider→client receipt is eaten, so the client resolves through
    // the TTP. Exercises interceptor drops + retries off the simulator.
    let mut w = GenericWorld::with_transport(net, 9, ProtocolConfig::full());
    let (a, b) = (w.alice_node, w.bob_node);
    w.net_mut().set_interceptor(Box::new(move |src, dst, _payload: &[u8], _t| {
        if src == b && dst == a {
            Action::Drop
        } else {
            Action::Deliver
        }
    }));
    let r = w.upload(b"k", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Completed, "TTP relays the receipt around the cut");
    assert!(r.report.ttp_used);
    assert!(r.nrr.is_some());
    assert!(w.net().stats().dropped >= 1, "the cut link shows up as counted drops");
    assert_conserved(&w);
}

/// Instantiates the whole scenario suite against one backend constructor.
macro_rules! backend_parity {
    ($backend:ident, $mk:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn normal_upload_two_messages() {
                super::normal_upload_two_messages($mk);
            }

            #[test]
            fn crash_recovery_terminates_arbitrable() {
                super::crash_recovery_terminates_arbitrable($mk);
            }

            #[test]
            fn timeliness_timer_drives_resolve() {
                super::timeliness_timer_drives_resolve($mk);
            }

            #[test]
            fn seq_no_reuse_rejected() {
                super::seq_no_reuse_rejected($mk);
            }

            #[test]
            fn adversarial_drop_recovers_via_ttp() {
                super::adversarial_drop_recovers_via_ttp($mk);
            }
        }
    };
}

backend_parity!(on_simnet, SimNet::new(0xE14));
backend_parity!(on_channel, ChannelNet::default());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The trait seam is observation-free: a SimNet driven through
    // `dyn Transport` (the scheduler's view) delivers the same envelopes
    // in the same order at the same instants with the same final stats as
    // the same SimNet driven through its pre-redesign inherent step()
    // loop — across seeds, latencies, jitter, loss and duplication.
    #[test]
    fn simnet_behind_transport_is_byte_identical(
        seed in any::<u64>(),
        n in 1usize..24,
        latency_ms in 0u64..50,
        jitter_ms in 0u64..20,
        drop_pct in 0u64..40,
        dup_pct in 0u64..30,
    ) {
        let link = LinkConfig {
            latency: SimDuration::from_millis(latency_ms),
            jitter: SimDuration::from_millis(jitter_ms),
            drop_prob: drop_pct as f64 / 100.0,
            dup_prob: dup_pct as f64 / 100.0,
        };
        let seed_traffic = |net: &mut SimNet| {
            let a = net.register("a");
            let b = net.register("b");
            net.set_default_link(link);
            for i in 0..n {
                let payload = vec![i as u8; i % 7 + 1];
                if i % 3 == 0 {
                    net.send_tagged(a, b, payload, Some(i as u64));
                } else {
                    net.send(a, b, payload);
                }
            }
        };

        // Pre-redesign view: the inherent step() loop.
        let mut direct = SimNet::new(seed);
        seed_traffic(&mut direct);
        let mut direct_envs = Vec::new();
        while direct.in_flight() {
            if let Some(env) = direct.step() {
                direct_envs.push((env.src, env.dst, env.delivered_at, env.txn, env.payload.to_vec()));
            }
        }

        // Post-redesign view: the same net driven through dyn Transport.
        let mut behind = SimNet::new(seed);
        seed_traffic(&mut behind);
        let tr: &mut dyn Transport = &mut behind;
        let mut trait_envs = Vec::new();
        while let Some(at) = tr.next_deliverable_at() {
            for env in tr.poll_deliverable(at) {
                trait_envs.push((env.src, env.dst, env.delivered_at, env.txn, env.payload.to_vec()));
            }
        }

        prop_assert_eq!(&direct_envs, &trait_envs);
        let (a, b) = (direct.stats, behind.stats);
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.duplicated, b.duplicated);
        prop_assert_eq!(a.bytes_sent, b.bytes_sent);
        prop_assert_eq!(direct.now(), Transport::now(&behind));
        // Both views obey conservation.
        prop_assert_eq!(a.delivered + a.dropped, a.sent + a.duplicated);
    }
}
