//! Crash-recovery invariants (DESIGN.md §4.11): crashed actors restart
//! from durable snapshots and the protocol still terminates in a state
//! that is either fully evidenced or arbitrable; sequence numbers are
//! never reused across a restart; fault-injected runs are deterministic.

use proptest::prelude::*;
use tpnr_core::fault::{CrashPoint, FaultPlan, RetryPolicy, SEQ_RECOVERY_SKIP};
use tpnr_core::prelude::*;
use tpnr_core::principal::PrincipalId;
use tpnr_core::session::Validator;
use tpnr_net::time::SimDuration;

#[test]
fn bob_crash_on_transfer_aborts_with_arbitrable_evidence() {
    // Bob crashes the instant Msg1 arrives: the transfer is lost before
    // processing. Alice's abort sub-protocol must settle the session, and
    // she must end the run holding evidence she can take to arbitration.
    let cfg = ProtocolConfig::builder()
        .fault_plan(FaultPlan::none().with_crash_on_msg("bob", "Transfer", CrashPoint::Before))
        .build();
    let mut w = World::new(41, cfg);
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Aborted);
    assert!(r.arbitrable(), "aborted session must stay arbitrable");
    assert!(r.nrr.is_some(), "Bob's signed abort acknowledgement survives his crash");
    let f = w.fault_counters();
    assert_eq!(f.crashes, 1);
    assert_eq!(f.restarts, 1);
    assert_eq!(w.provider.restart_count(), 1);
}

#[test]
fn bob_crash_after_transfer_keeps_durable_state() {
    // CrashPoint::After: Bob processes Msg1 and force-syncs before his
    // receipt hits the wire, then dies. After restart his archive still
    // holds the transaction, so the resolve path can complete the session.
    let cfg = ProtocolConfig::builder()
        .fault_plan(FaultPlan::none().with_crash_on_msg("bob", "Transfer", CrashPoint::After))
        .build();
    let mut w = World::new(42, cfg);
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert!(r.outcome.is_terminal());
    assert!(r.arbitrable());
    // The write-ahead rule: Bob's pre-crash processing is durable.
    assert_eq!(w.provider.peek_storage(b"obj"), Some(&b"data"[..]));
    assert_eq!(w.fault_counters().crashes, 1);
}

#[test]
fn ttp_crash_mid_resolve_is_retried_with_backoff_until_converged() {
    // Receipts are lost, so Alice must resolve through the TTP — which
    // crashes on her first Resolve. Exponential backoff retries must
    // converge once the TTP is back up.
    let cfg = ProtocolConfig::builder()
        .retry_policy(RetryPolicy::exponential(8))
        .fault_plan(FaultPlan::none().with_crash_on_msg("ttp", "Resolve", CrashPoint::Before))
        .build();
    let mut w = World::new(43, cfg);
    let (a, b) = (w.alice_node, w.bob_node);
    w.net_mut().set_link(b, a, tpnr_net::sim::LinkConfig { drop_prob: 1.0, ..Default::default() });
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Completed);
    assert!(r.nrr.is_some(), "resolve recovered the receipt Alice was owed");
    assert!(r.report.ttp_used);
    let f = w.fault_counters();
    assert_eq!(f.crashes, 1);
    assert!(f.retries >= 1, "the lost Resolve must be re-sent: {f:?}");
    assert_eq!(f.gave_up, 0);
    assert_eq!(w.ttp.restart_count(), 1);
}

#[test]
fn ttp_outage_window_delays_but_does_not_break_resolve() {
    // The outage must fit inside `message_time_limit` (120 s): replies
    // arriving after the limit are — correctly — rejected as expired by
    // the timeliness defense, and the session fails terminal-but-arbitrable
    // instead. This window exercises the recovery path, not that rule.
    let outage_start = tpnr_net::time::SimTime::ZERO.after(SimDuration::from_secs(20));
    let outage_end = tpnr_net::time::SimTime::ZERO.after(SimDuration::from_secs(60));
    let cfg = ProtocolConfig::builder()
        .retry_policy(RetryPolicy::exponential(8))
        .fault_plan(FaultPlan::none().with_ttp_outage(outage_start, outage_end))
        .build();
    let mut w = World::new(44, cfg);
    let (a, b) = (w.alice_node, w.bob_node);
    w.net_mut().set_link(b, a, tpnr_net::sim::LinkConfig { drop_prob: 1.0, ..Default::default() });
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Completed);
    assert!(r.report.latency >= SimDuration::from_secs(60), "resolve had to outlast the outage");
}

#[test]
fn outage_longer_than_time_limit_fails_terminal_and_arbitrable() {
    // An outage that outlives `message_time_limit` cannot complete — the
    // timeliness defense rejects post-limit replies — but the session must
    // still end terminal with Alice's evidence intact, never in limbo.
    let outage_start = tpnr_net::time::SimTime::ZERO.after(SimDuration::from_secs(20));
    let outage_end = tpnr_net::time::SimTime::ZERO.after(SimDuration::from_secs(300));
    let cfg = ProtocolConfig::builder()
        .retry_policy(RetryPolicy::exponential(6))
        .fault_plan(FaultPlan::none().with_ttp_outage(outage_start, outage_end))
        .build();
    let mut w = World::new(45, cfg);
    let (a, b) = (w.alice_node, w.bob_node);
    w.net_mut().set_link(b, a, tpnr_net::sim::LinkConfig { drop_prob: 1.0, ..Default::default() });
    let r = w.upload(b"obj", b"data".to_vec(), TimeoutStrategy::ResolveImmediately);
    assert_eq!(r.outcome, TxnState::Failed);
    assert!(r.arbitrable(), "even a failed session keeps its evidence");
    assert!(w.fault_counters().gave_up >= 1);
}

#[test]
fn fault_runs_are_deterministic() {
    // Same seed + same FaultPlan → byte-identical event streams and
    // identical fault counters. This is what makes E8 reproducible.
    let run = || {
        let cfg = ProtocolConfig::builder()
            .retry_policy(RetryPolicy::exponential(6))
            .fault_plan(
                FaultPlan::none()
                    .with_seed(99)
                    .with_chaos(&["alice", "bob", "ttp"], 300, 8)
                    .with_restart_delay(SimDuration::from_secs(2)),
            )
            .build();
        let mut w = World::new(99, cfg);
        let r = w.upload(b"obj", vec![7u8; 512], TimeoutStrategy::ResolveImmediately);
        let events: Vec<String> = w.obs.events().iter().map(|e| format!("{e:?}")).collect();
        (r.outcome, events, w.fault_counters())
    };
    let (s1, e1, f1) = run();
    let (s2, e2, f2) = run();
    assert_eq!(s1, s2);
    assert_eq!(e1, e2);
    assert_eq!(f1, f2);
}

#[test]
fn multiworld_survives_chaos_with_no_evidence_loss() {
    let cfg = ProtocolConfig::builder()
        .retry_policy(RetryPolicy::exponential(6))
        .fault_plan(
            FaultPlan::none()
                .with_seed(7)
                .with_chaos(&["bob", "ttp", "client-0", "client-1"], 250, 8)
                .with_restart_delay(SimDuration::from_secs(2)),
        )
        .build();
    let mut w = MultiWorld::new(7, cfg, 4);
    let handles: Vec<TxnHandle> = (0..4)
        .map(|i| {
            let key = format!("tenant-{i}/obj").into_bytes();
            w.start_upload(i, &key, vec![i as u8; 128], TimeoutStrategy::ResolveImmediately)
        })
        .collect();
    w.settle();
    for h in handles {
        let r = w.result(h).expect("every transaction reaches a classification");
        assert!(
            (r.completed() && r.nrr.is_some()) || (r.outcome.is_terminal() && r.nro.is_some()),
            "client {} txn {}: evidence-less limbo ({:?})",
            h.client,
            h.txn_id,
            r.outcome
        );
    }
}

fn principal(tag: u8) -> PrincipalId {
    PrincipalId([tag; 32])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Snapshot/restore round-trip: sequence numbers allocated after a
    // restore never collide with anything allocated before the crash —
    // including allocations from the lost dirty window.
    #[test]
    fn restore_never_reuses_sequence_numbers(
        seed in any::<u64>(),
        persisted in 0u64..50,
        dirty in 1u64..50,
    ) {
        let txn = seed % 5 + 1;
        let mut v = Validator::new(principal(1), principal(7));
        let mut seen = Vec::new();
        for _ in 0..persisted {
            seen.push(v.alloc_seq(txn));
        }
        let snap = v.snapshot();
        // The dirty window: sends the crash destroys the record of.
        for _ in 0..dirty {
            seen.push(v.alloc_seq(txn));
        }
        v.restore_with_skip(&snap, SEQ_RECOVERY_SKIP);
        let next = v.alloc_seq(txn);
        prop_assert!(
            seen.iter().all(|&s| next > s),
            "post-restore seq {next} collides with pre-crash allocations {seen:?}"
        );
    }
}
