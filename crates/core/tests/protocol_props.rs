//! Property tests on the protocol layer: round-trip fidelity for arbitrary
//! payloads, tamper detection for arbitrary corruption, arbitration
//! fairness (an honest provider is never convicted; a tampering provider
//! always is), wire-form round-trips, and guaranteed termination under
//! random network fault mixes.

use proptest::prelude::*;
use tpnr_core::arbiter::{Arbitrator, DisputeCase, Verdict};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::runner::World;
use tpnr_core::session::TxnState;
use tpnr_net::sim::LinkConfig;
use tpnr_net::time::SimDuration;

fn case_for(w: &World, up: u64, down: u64) -> DisputeCase {
    DisputeCase {
        claimant: Some(w.client.id()),
        respondent: Some(w.provider.id()),
        upload_nrr: w.client.txn(up).and_then(|t| t.nrr.clone()),
        download_nrr: w.client.txn(down).and_then(|t| t.nrr.clone()),
        upload_nro: w.provider.txn(up).map(|t| t.nro.clone()),
        download_nro: w.provider.txn(down).map(|t| t.nro.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_fidelity_for_any_payload(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        key in proptest::collection::vec(any::<u8>(), 1..64),
        seed in any::<u64>(),
    ) {
        let mut w = World::new(seed, ProtocolConfig::full());
        let up = w.upload(&key, data.clone(), TimeoutStrategy::AbortFirst);
        prop_assert_eq!(up.outcome, TxnState::Completed);
        prop_assert_eq!(up.report.messages, 2);
        let down = w.download(&key, TimeoutStrategy::AbortFirst);
        prop_assert_eq!(down.outcome, TxnState::Completed);
        prop_assert_eq!(down.data.clone().unwrap(), &data[..]);
        prop_assert_eq!(
            w.client.verify_download_against_upload(up.txn_id, down.txn_id),
            Some(true)
        );
    }

    #[test]
    fn any_actual_tamper_is_detected_and_attributed(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        tampered in proptest::collection::vec(any::<u8>(), 0..1024),
        seed in any::<u64>(),
    ) {
        prop_assume!(data != tampered);
        let mut w = World::new(seed, ProtocolConfig::full());
        let up = w.upload(b"obj", data, TimeoutStrategy::AbortFirst);
        w.provider.tamper_storage(b"obj", tampered);
        let down = w.download(b"obj", TimeoutStrategy::AbortFirst);
        prop_assert_eq!(
            w.client.verify_download_against_upload(up.txn_id, down.txn_id),
            Some(false)
        );
        let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
        prop_assert_eq!(arb.judge(&case_for(&w, up.txn_id, down.txn_id)), Verdict::ProviderAtFault);
    }

    #[test]
    fn honest_provider_never_convicted(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        seed in any::<u64>(),
        mutation in 0usize..6,
        byte in any::<u8>(),
    ) {
        // No tamper occurs; the claimant then mutates her submission in an
        // arbitrary way. Whatever she does, the verdict must never be
        // ProviderAtFault.
        let mut w = World::new(seed, ProtocolConfig::full());
        let up = w.upload(b"obj", data, TimeoutStrategy::AbortFirst);
        let down = w.download(b"obj", TimeoutStrategy::AbortFirst);
        let mut case = case_for(&w, up.txn_id, down.txn_id);
        match mutation {
            0 => { /* submit honestly */ }
            1 => case.upload_nrr = None,
            2 => case.download_nrr = None,
            3 => {
                if let Some(ev) = case.upload_nrr.as_mut() {
                    let i = byte as usize % ev.plaintext.data_hash.len();
                    ev.plaintext.data_hash[i] ^= byte | 1;
                }
            }
            4 => {
                if let Some(ev) = case.download_nrr.as_mut() {
                    let i = byte as usize % ev.sig_data_hash.len();
                    ev.sig_data_hash[i] ^= byte | 1;
                }
            }
            _ => {
                // Swap in her own NRO dressed as a receipt.
                if let Some(nro) = case.upload_nro.clone() {
                    case.upload_nrr = Some(nro);
                }
            }
        }
        let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
        let verdict = arb.judge(&case);
        prop_assert_ne!(verdict, Verdict::ProviderAtFault);
    }

    #[test]
    fn tampering_provider_cannot_escape_by_withholding(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        seed in any::<u64>(),
        hide_upload_nro in any::<bool>(),
    ) {
        // Provider tampers, then withholds whatever records it likes. As
        // long as the *claimant* kept her two receipts, conviction follows.
        let mut w = World::new(seed, ProtocolConfig::full());
        let mut tampered = data.clone();
        tampered.push(0xFF);
        let up = w.upload(b"obj", data, TimeoutStrategy::AbortFirst);
        w.provider.tamper_storage(b"obj", tampered);
        let down = w.download(b"obj", TimeoutStrategy::AbortFirst);
        let mut case = case_for(&w, up.txn_id, down.txn_id);
        if hide_upload_nro {
            case.upload_nro = None;
        }
        case.download_nro = None;
        let arb = Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
        prop_assert_eq!(arb.judge(&case), Verdict::ProviderAtFault);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_session_terminates_under_random_faults(
        seed in any::<u64>(),
        drop_prob in 0.0f64..0.6,
        dup_prob in 0.0f64..0.3,
        resolve_first in any::<bool>(),
    ) {
        let mut w = World::new(seed, ProtocolConfig::full());
        w.set_all_links(LinkConfig {
            latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(10),
            drop_prob,
            dup_prob,
        });
        let strategy = if resolve_first {
            TimeoutStrategy::ResolveImmediately
        } else {
            TimeoutStrategy::AbortFirst
        };
        let r = w.upload(b"obj", vec![7u8; 128], strategy);
        prop_assert!(
            r.outcome.is_terminal(),
            "session stuck in {:?} (drop={drop_prob:.2}, dup={dup_prob:.2})",
            r.outcome
        );
    }

    #[test]
    fn duplicate_heavy_network_never_double_applies(
        seed in any::<u64>(),
        dup_prob in 0.5f64..1.0,
    ) {
        // Heavy duplication: the provider must archive exactly one
        // transaction (replay window absorbs the copies).
        let mut w = World::new(seed, ProtocolConfig::full());
        w.set_all_links(LinkConfig {
            latency: SimDuration::from_millis(10),
            dup_prob,
            ..Default::default()
        });
        let r = w.upload(b"obj", vec![1u8; 64], TimeoutStrategy::AbortFirst);
        prop_assert!(r.outcome.is_terminal());
        prop_assert_eq!(w.provider.txn_count(), 1);
    }
}
