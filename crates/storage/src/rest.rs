//! REST request model with shared-key authentication — paper Table 1.
//!
//! Models the Azure Blob REST interface of paper §2.2: a `PUT`/`GET` block
//! request carries `Content-MD5`, `Content-Length`, `x-ms-date`,
//! `x-ms-version` and an `Authorization: SharedKey <account>:<sig>` header,
//! where the signature is HMAC-SHA256 over a canonical string-to-sign using
//! the account's 256-bit secret key. The server recomputes and compares.

use tpnr_crypto::encoding::{base64_decode, base64_encode};
use tpnr_crypto::hmac::Hmac;
use tpnr_crypto::sha2::Sha256;

/// HTTP method of a storage request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Upload a block.
    Put,
    /// Fetch a block.
    Get,
    /// Remove a blob.
    Delete,
}

impl Method {
    /// Canonical verb string.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Put => "PUT",
            Method::Get => "GET",
            Method::Delete => "DELETE",
        }
    }
}

/// A REST request in the shape of the paper's Table 1 example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestRequest {
    /// HTTP verb.
    pub method: Method,
    /// Resource path, e.g. `/jerry/pics/photo.jpg?comp=block&blockid=blockid1`.
    pub resource: String,
    /// `Content-Length` header (body size).
    pub content_length: u64,
    /// `Content-MD5` header: Base64 MD5 of the body, if supplied.
    pub content_md5: Option<String>,
    /// `x-ms-date` header (simulated-clock microseconds rendered as text).
    pub date: String,
    /// `x-ms-version` header.
    pub version: String,
    /// `Authorization: SharedKey account:signature`.
    pub authorization: Option<String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl RestRequest {
    /// Builds an unauthenticated request skeleton.
    pub fn new(method: Method, resource: &str, body: Vec<u8>, date: &str) -> Self {
        RestRequest {
            method,
            resource: resource.to_string(),
            content_length: body.len() as u64,
            content_md5: None,
            date: date.to_string(),
            version: "2009-09-19".to_string(), // the version in Table 1
            authorization: None,
            body,
        }
    }

    /// Attaches a `Content-MD5` computed from the body.
    pub fn with_content_md5(mut self) -> Self {
        use tpnr_crypto::hash::Digest as _;
        let md5 = tpnr_crypto::md5::Md5::digest(&self.body);
        self.content_md5 = Some(base64_encode(&md5));
        self
    }

    /// The canonical string-to-sign. Any field an attacker could usefully
    /// change (verb, resource, length, MD5, date, version) is bound by the
    /// signature.
    pub fn string_to_sign(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}",
            self.method.as_str(),
            self.content_length,
            self.content_md5.as_deref().unwrap_or(""),
            self.date,
            self.version,
            self.resource,
        )
    }

    /// Signs the request with the account's shared key, installing the
    /// `Authorization` header.
    pub fn sign(mut self, account: &str, key: &[u8]) -> Self {
        let sig = Hmac::<Sha256>::mac(key, self.string_to_sign().as_bytes());
        self.authorization = Some(format!("SharedKey {}:{}", account, base64_encode(&sig)));
        self
    }

    /// Parses the `Authorization` header into `(account, signature-bytes)`.
    pub fn parse_authorization(&self) -> Option<(String, Vec<u8>)> {
        let auth = self.authorization.as_deref()?;
        let rest = auth.strip_prefix("SharedKey ")?;
        let (account, sig_b64) = rest.split_once(':')?;
        Some((account.to_string(), base64_decode(sig_b64)?))
    }

    /// Server-side verification of the shared-key signature.
    pub fn verify_signature(&self, expected_account: &str, key: &[u8]) -> bool {
        match self.parse_authorization() {
            Some((account, sig)) if account == expected_account => {
                Hmac::<Sha256>::verify(key, self.string_to_sign().as_bytes(), &sig)
            }
            _ => false,
        }
    }

    /// Server-side verification of `Content-MD5` against the body, as the
    /// Azure front-end does on PUT ("if it does not match, an error is
    /// returned"). `None` means the header was absent (check skipped).
    pub fn verify_content_md5(&self) -> Option<bool> {
        use tpnr_crypto::hash::Digest as _;
        let header = self.content_md5.as_deref()?;
        let want = base64_decode(header)?;
        Some(tpnr_crypto::ct::eq(&want, &tpnr_crypto::md5::Md5::digest(&self.body)))
    }

    /// Renders the request head like the paper's Table 1 (for examples/logs).
    pub fn render(&self) -> String {
        let mut out = format!("{} {} HTTP/1.1\n", self.method.as_str(), self.resource);
        out.push_str(&format!("Content-Length: {}\n", self.content_length));
        if let Some(md5) = &self.content_md5 {
            out.push_str(&format!("Content-MD5: {md5}\n"));
        }
        if let Some(auth) = &self.authorization {
            out.push_str(&format!("Authorization: {auth}\n"));
        }
        out.push_str(&format!("x-ms-date: {}\n", self.date));
        out.push_str(&format!("x-ms-version: {}\n", self.version));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"0123456789abcdef0123456789abcdef"; // 256-bit account key

    fn put_request() -> RestRequest {
        RestRequest::new(
            Method::Put,
            "/jerry/pics/photo.jpg?comp=block&blockid=blockid1&timeout=30",
            b"image bytes here".to_vec(),
            "Sun, 13 Sept 2009 18:30:25 GMT",
        )
        .with_content_md5()
        .sign("jerry", KEY)
    }

    #[test]
    fn signed_request_verifies() {
        let req = put_request();
        assert!(req.verify_signature("jerry", KEY));
        assert_eq!(req.verify_content_md5(), Some(true));
    }

    #[test]
    fn wrong_key_or_account_rejected() {
        let req = put_request();
        assert!(!req.verify_signature("jerry", b"wrong key 0000000000000000000000"));
        assert!(!req.verify_signature("tom", KEY));
    }

    #[test]
    fn any_signed_field_change_breaks_auth() {
        let base = put_request();
        let mut variants = Vec::new();
        let mut v = base.clone();
        v.method = Method::Get;
        variants.push(v);
        let mut v = base.clone();
        v.resource = "/jerry/pics/other.jpg".into();
        variants.push(v);
        let mut v = base.clone();
        v.content_length += 1;
        variants.push(v);
        let mut v = base.clone();
        v.content_md5 = Some(base64_encode(&[0u8; 16]));
        variants.push(v);
        let mut v = base.clone();
        v.date = "Mon, 14 Sept 2009 00:00:00 GMT".into();
        variants.push(v);
        for (i, v) in variants.iter().enumerate() {
            assert!(!v.verify_signature("jerry", KEY), "variant {i} still verified");
        }
    }

    #[test]
    fn body_tamper_caught_by_content_md5_not_by_signature() {
        // The SharedKey signature binds the MD5 *header*, not the body bytes;
        // transport-level body corruption is caught by the MD5 check.
        let mut req = put_request();
        req.body[0] ^= 1;
        assert!(req.verify_signature("jerry", KEY), "signature does not cover body");
        assert_eq!(req.verify_content_md5(), Some(false));
    }

    #[test]
    fn missing_md5_header_skips_check() {
        let req = RestRequest::new(Method::Put, "/r", b"data".to_vec(), "d").sign("a", KEY);
        assert_eq!(req.verify_content_md5(), None);
    }

    #[test]
    fn malformed_authorization_rejected() {
        let mut req = put_request();
        req.authorization = Some("Bearer xyz".into());
        assert!(!req.verify_signature("jerry", KEY));
        req.authorization = Some("SharedKey jerry".into()); // no colon
        assert!(!req.verify_signature("jerry", KEY));
        req.authorization = Some("SharedKey jerry:!!!notb64!!!".into());
        assert!(!req.verify_signature("jerry", KEY));
        req.authorization = None;
        assert!(!req.verify_signature("jerry", KEY));
    }

    #[test]
    fn render_matches_table1_shape() {
        let text = put_request().render();
        assert!(text.starts_with("PUT /jerry/pics/photo.jpg"));
        assert!(text.contains("Content-MD5: "));
        assert!(text.contains("Authorization: SharedKey jerry:"));
        assert!(text.contains("x-ms-version: 2009-09-19"));
    }

    #[test]
    fn get_request_shape() {
        let req = RestRequest::new(Method::Get, "/jerry/pics/photo.jpg", Vec::new(), "d")
            .sign("jerry", KEY);
        assert_eq!(req.content_length, 0);
        assert!(req.verify_signature("jerry", KEY));
        assert!(req.render().starts_with("GET "));
    }
}
