//! A uniform view over the three platform façades.
//!
//! The Figure-5 vulnerability experiment (E1 in EXPERIMENTS.md) runs the
//! same upload → tamper-in-storage → download story against Azure, AWS and
//! GAE. [`Platform`] abstracts just enough for that: upload with whatever
//! integrity metadata the platform records, download with whatever integrity
//! metadata the platform returns, and provider-side tampering in between.

use crate::aws::AwsService;
use crate::azure::{Account, AzureService};
use crate::gae::{GaeService, SignedRequest};
use crate::object::Tamper;
use crate::rest::{Method, RestRequest};
use tpnr_crypto::encoding::base64_decode;
use tpnr_crypto::hash::{Digest as _, HashAlg};
use tpnr_crypto::md5::Md5;
use tpnr_crypto::RsaKeyPair;
use tpnr_net::time::SimTime;

/// What a download handed back, plus the integrity metadata that came with
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Download {
    /// The data as returned.
    pub data: Vec<u8>,
    /// The checksum the platform returned alongside (raw bytes), if any.
    pub returned_checksum: Option<Vec<u8>>,
    /// Whether the returned checksum is recomputed at download time
    /// (AWS style) or the stored upload-time value (Azure style).
    pub checksum_source: ChecksumSource,
}

/// Provenance of the checksum a platform returns on download.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumSource {
    /// The value recorded at upload (Azure: "the original MD5_1").
    StoredAtUpload,
    /// Recomputed over current data (AWS: "a recomputed MD5_2").
    RecomputedAtDownload,
    /// The platform returns no checksum at all (GAE datastore).
    None,
}

/// Detection outcome when the client cross-checks a download.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientVerdict {
    /// Data matches the returned checksum (or nothing to check): accepted.
    LooksClean,
    /// Returned checksum contradicts the data: tamper detected.
    MismatchDetected,
}

impl Download {
    /// The client-side check a diligent user can perform with only what the
    /// platform gave them.
    pub fn client_check(&self) -> ClientVerdict {
        match &self.returned_checksum {
            None => ClientVerdict::LooksClean, // nothing to compare
            Some(sum) => {
                if tpnr_crypto::ct::eq(sum, &HashAlg::Md5.hash(&self.data)) {
                    ClientVerdict::LooksClean
                } else {
                    ClientVerdict::MismatchDetected
                }
            }
        }
    }
}

/// Platform-independent upload/tamper/download interface.
pub trait Platform {
    /// Platform display name.
    fn name(&self) -> &'static str;
    /// Uploads `data` under `key`, returning the checksum the *uploader*
    /// computed (what the user keeps in their notes, if anything).
    fn upload(&mut self, key: &str, data: &[u8], now: SimTime) -> Vec<u8>;
    /// Provider-side tamper.
    fn tamper(&mut self, key: &str, t: &Tamper) -> bool;
    /// Downloads `key`.
    fn download(&mut self, key: &str) -> Option<Download>;
}

/// Azure façade bound to one account.
pub struct AzurePlatform {
    svc: AzureService,
    account: Account,
    date_counter: u64,
}

impl AzurePlatform {
    /// Creates a service and an account.
    pub fn new(seed: u64) -> Self {
        let mut svc = AzureService::new();
        let mut rng = tpnr_crypto::ChaChaRng::seed_from_u64(seed);
        let account = svc.create_account("user1", &mut rng);
        AzurePlatform { svc, account, date_counter: 0 }
    }

    fn date(&mut self) -> String {
        self.date_counter += 1;
        format!("sim-date-{}", self.date_counter)
    }
}

impl Platform for AzurePlatform {
    fn name(&self) -> &'static str {
        "Azure"
    }

    fn upload(&mut self, key: &str, data: &[u8], now: SimTime) -> Vec<u8> {
        let date = self.date();
        let req = RestRequest::new(Method::Put, key, data.to_vec(), &date)
            .with_content_md5()
            .sign(&self.account.name, &self.account.key);
        self.svc.handle(&req, now).expect("upload accepted");
        Md5::digest(data)
    }

    fn tamper(&mut self, key: &str, t: &Tamper) -> bool {
        self.svc.tamper_blob(key, t).is_some()
    }

    fn download(&mut self, key: &str) -> Option<Download> {
        let date = self.date();
        let req = RestRequest::new(Method::Get, key, Vec::new(), &date)
            .sign(&self.account.name, &self.account.key);
        let resp = self.svc.handle(&req, SimTime::ZERO).ok()?;
        Some(Download {
            data: resp.body,
            returned_checksum: resp.content_md5.as_deref().and_then(base64_decode),
            checksum_source: ChecksumSource::StoredAtUpload,
        })
    }
}

/// AWS façade using the Internet (S3) path.
pub struct AwsPlatform {
    svc: AwsService,
}

impl AwsPlatform {
    /// Creates a service with one registered user.
    pub fn new(seed: u64) -> Self {
        let mut svc = AwsService::new();
        let keys = RsaKeyPair::insecure_test_key(seed);
        svc.register_user("AKIAUSER", keys.public.clone());
        AwsPlatform { svc }
    }
}

impl Platform for AwsPlatform {
    fn name(&self) -> &'static str {
        "AWS"
    }

    fn upload(&mut self, key: &str, data: &[u8], now: SimTime) -> Vec<u8> {
        self.svc.s3_put(key, data, "AKIAUSER", now)
    }

    fn tamper(&mut self, key: &str, t: &Tamper) -> bool {
        self.svc.tamper(key, t).is_some()
    }

    fn download(&mut self, key: &str) -> Option<Download> {
        let (data, md5) = self.svc.s3_get(key)?;
        Some(Download {
            data,
            returned_checksum: Some(md5),
            checksum_source: ChecksumSource::RecomputedAtDownload,
        })
    }
}

/// GAE façade bound to one granted viewer.
pub struct GaePlatform {
    svc: GaeService,
    keys: RsaKeyPair,
    nonce: u64,
}

impl GaePlatform {
    /// Creates a service with one registered, fully-granted viewer.
    pub fn new(seed: u64) -> Self {
        let mut svc = GaeService::new();
        let keys = RsaKeyPair::insecure_test_key(seed.wrapping_add(1000));
        svc.register_identity("user1", keys.public.clone());
        svc.grant("user1", "");
        GaePlatform { svc, keys, nonce: 0 }
    }

    fn request(&mut self, resource: &str) -> SignedRequest {
        self.nonce += 1;
        SignedRequest::create(
            &self.keys, "owner", "user1", 1, "app", "ck", self.nonce, "tok", resource,
        )
        .expect("signing")
    }
}

impl Platform for GaePlatform {
    fn name(&self) -> &'static str {
        "GAE"
    }

    fn upload(&mut self, key: &str, data: &[u8], now: SimTime) -> Vec<u8> {
        let req = self.request(key);
        self.svc.put(&req, data, now).expect("upload accepted");
        Md5::digest(data)
    }

    fn tamper(&mut self, key: &str, t: &Tamper) -> bool {
        self.svc.tamper(key, t).is_some()
    }

    fn download(&mut self, key: &str) -> Option<Download> {
        let req = self.request(key);
        let data = self.svc.get(&req).ok()?;
        Some(Download { data, returned_checksum: None, checksum_source: ChecksumSource::None })
    }
}

/// All three platforms, for matrix experiments.
pub fn all_platforms(seed: u64) -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(AzurePlatform::new(seed)),
        Box::new(AwsPlatform::new(seed)),
        Box::new(GaePlatform::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_on_every_platform() {
        for mut p in all_platforms(7) {
            let up_md5 = p.upload("k", b"payload", SimTime::ZERO);
            let d = p.download("k").unwrap();
            assert_eq!(d.data, b"payload", "{}", p.name());
            assert_eq!(d.client_check(), ClientVerdict::LooksClean, "{}", p.name());
            assert_eq!(up_md5, Md5::digest(b"payload"));
        }
    }

    #[test]
    fn missing_key_is_none_everywhere() {
        for mut p in all_platforms(8) {
            assert!(p.download("missing").is_none(), "{}", p.name());
        }
    }

    /// Paper Figure 5, one row per platform: a *naive* in-storage tamper.
    #[test]
    fn naive_tamper_detection_varies_by_platform() {
        for mut p in all_platforms(9) {
            p.upload("k", b"original data", SimTime::ZERO);
            assert!(p.tamper("k", &Tamper::BitFlip { offset: 2 }));
            let d = p.download("k").unwrap();
            match d.checksum_source {
                // Azure returns the upload-time MD5 -> mismatch visible.
                ChecksumSource::StoredAtUpload => {
                    assert_eq!(d.client_check(), ClientVerdict::MismatchDetected)
                }
                // AWS recomputes -> corrupted data looks self-consistent.
                ChecksumSource::RecomputedAtDownload => {
                    assert_eq!(d.client_check(), ClientVerdict::LooksClean)
                }
                // GAE returns nothing -> nothing to detect with.
                ChecksumSource::None => {
                    assert_eq!(d.client_check(), ClientVerdict::LooksClean)
                }
            }
        }
    }

    /// The consistent tamper defeats client checks on *all* platforms.
    #[test]
    fn consistent_tamper_never_detected() {
        for mut p in all_platforms(10) {
            p.upload("k", b"true records", SimTime::ZERO);
            assert!(p.tamper("k", &Tamper::ConsistentReplace(b"cooked books".to_vec())));
            let d = p.download("k").unwrap();
            assert_eq!(d.data, b"cooked books", "{}", p.name());
            assert_eq!(
                d.client_check(),
                ClientVerdict::LooksClean,
                "{}: platform metadata cannot catch a provider who controls it",
                p.name()
            );
        }
    }
}
