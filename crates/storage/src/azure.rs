//! Azure-style storage service — paper §2.2 / Figure 3.
//!
//! Accounts are created through a "portal" and receive a 256-bit secret
//! key. Every request must carry an HMAC-SHA256 `SharedKey` signature
//! (see [`crate::rest`]). Blobs record the uploader's `Content-MD5`, and —
//! the detail the paper highlights — **the stored MD5 is returned on GET**
//! ("on the Azure platform, the original MD5_1 will be sent"). Blob,
//! Table and Queue services model the three Azure data items (blobs up to
//! 50 GB, queue messages < 8 KB).

use crate::object::{ObjectStore, StoredObject, Tamper, TamperReport};
use crate::rest::{Method, RestRequest};
use std::collections::HashMap;
use std::collections::VecDeque;
use tpnr_crypto::encoding::{base64_decode, base64_encode};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::ChaChaRng;
use tpnr_net::time::SimTime;

/// Azure blob size cap from the paper ("Blobs (up to 50GB)").
pub const MAX_BLOB_SIZE: u64 = 50 * 1024 * 1024 * 1024;
/// Azure queue message cap from the paper ("Queues (<8k)").
pub const MAX_QUEUE_MESSAGE: usize = 8 * 1024;

/// Service-side error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AzureError {
    /// Unknown account name.
    NoSuchAccount,
    /// `Authorization` header missing/invalid.
    AuthenticationFailed,
    /// `Content-MD5` did not match the body.
    Md5Mismatch,
    /// Requested blob does not exist.
    BlobNotFound,
    /// Payload exceeds a documented limit.
    TooLarge,
    /// Verb/resource combination not understood.
    BadRequest,
}

impl std::fmt::Display for AzureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AzureError::NoSuchAccount => write!(f, "no such account"),
            AzureError::AuthenticationFailed => write!(f, "authentication failed"),
            AzureError::Md5Mismatch => write!(f, "Content-MD5 mismatch"),
            AzureError::BlobNotFound => write!(f, "blob not found"),
            AzureError::TooLarge => write!(f, "payload too large"),
            AzureError::BadRequest => write!(f, "bad request"),
        }
    }
}

impl std::error::Error for AzureError {}

/// A successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AzureResponse {
    /// HTTP-ish status code.
    pub status: u16,
    /// Body (blob contents on GET).
    pub body: Vec<u8>,
    /// `Content-MD5` response header. On GET this is the **stored** MD5
    /// recorded at upload time — Azure's behaviour per the paper.
    pub content_md5: Option<String>,
}

/// An account registered at the portal.
#[derive(Clone)]
pub struct Account {
    /// Account (and container) name.
    pub name: String,
    /// The 256-bit shared secret issued at signup.
    pub key: [u8; 32],
}

/// The Azure-like storage service.
pub struct AzureService {
    accounts: HashMap<String, [u8; 32]>,
    blobs: ObjectStore,
    tables: HashMap<String, HashMap<String, Vec<u8>>>,
    queues: HashMap<String, VecDeque<Vec<u8>>>,
    /// Uncommitted blocks per blob path: blockid → bytes (the Table 1
    /// `comp=block` staging area).
    uncommitted: HashMap<String, HashMap<String, Vec<u8>>>,
}

impl Default for AzureService {
    fn default() -> Self {
        Self::new()
    }
}

impl AzureService {
    /// Empty service.
    pub fn new() -> Self {
        AzureService {
            accounts: HashMap::new(),
            blobs: ObjectStore::new(),
            tables: HashMap::new(),
            queues: HashMap::new(),
            uncommitted: HashMap::new(),
        }
    }

    /// Portal signup: creates an account and returns its 256-bit key
    /// (paper: "After creating an account, the user will receive a 256-bit
    /// secret key").
    pub fn create_account(&mut self, name: &str, rng: &mut ChaChaRng) -> Account {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        self.accounts.insert(name.to_string(), key);
        Account { name: name.to_string(), key }
    }

    fn authenticate(&self, req: &RestRequest) -> Result<String, AzureError> {
        let (account, _) = req.parse_authorization().ok_or(AzureError::AuthenticationFailed)?;
        let key = self.accounts.get(&account).ok_or(AzureError::NoSuchAccount)?;
        if req.verify_signature(&account, key) {
            Ok(account)
        } else {
            Err(AzureError::AuthenticationFailed)
        }
    }

    /// Splits a Table-1-style resource into (blob path, query map).
    fn parse_resource(resource: &str) -> (String, HashMap<String, String>) {
        match resource.split_once('?') {
            None => (resource.to_string(), HashMap::new()),
            Some((path, query)) => {
                let map = query
                    .split('&')
                    .filter_map(|kv| kv.split_once('='))
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect();
                (path.to_string(), map)
            }
        }
    }

    /// Handles a signed REST request against the blob service.
    ///
    /// The Table 1 block protocol is honoured: `PUT …?comp=block&blockid=X`
    /// stages an uncommitted block, `PUT …?comp=blocklist` commits the
    /// listed block ids (newline-separated body) into the blob.
    pub fn handle(&mut self, req: &RestRequest, now: SimTime) -> Result<AzureResponse, AzureError> {
        let account = self.authenticate(req)?;
        let (path, query) = Self::parse_resource(&req.resource);
        match req.method {
            Method::Put if query.get("comp").map(String::as_str) == Some("block") => {
                let block_id = query.get("blockid").ok_or(AzureError::BadRequest)?;
                if req.verify_content_md5() == Some(false) {
                    return Err(AzureError::Md5Mismatch);
                }
                self.uncommitted
                    .entry(path)
                    .or_default()
                    .insert(block_id.clone(), req.body.clone());
                Ok(AzureResponse {
                    status: 201,
                    body: Vec::new(),
                    content_md5: req.content_md5.clone(),
                })
            }
            Method::Put if query.get("comp").map(String::as_str) == Some("blocklist") => {
                let staged = self.uncommitted.remove(&path).unwrap_or_default();
                let mut assembled = Vec::new();
                for id in String::from_utf8_lossy(&req.body).lines() {
                    let block = staged.get(id).ok_or(AzureError::BadRequest)?;
                    assembled.extend_from_slice(block);
                }
                use tpnr_crypto::hash::Digest as _;
                let md5 = tpnr_crypto::md5::Md5::digest(&assembled);
                self.blobs.put(
                    &path,
                    StoredObject {
                        data: assembled.into(),
                        stored_checksum: Some(md5),
                        checksum_alg: HashAlg::Md5,
                        uploaded_at: now,
                        owner: account,
                    },
                );
                Ok(AzureResponse { status: 201, body: Vec::new(), content_md5: None })
            }
            Method::Put => {
                if req.body.len() as u64 > MAX_BLOB_SIZE {
                    return Err(AzureError::TooLarge);
                }
                // Server-side Content-MD5 check (paper: "The MD5 checksum is
                // checked by the server. If it does not match, an error is
                // returned").
                if req.verify_content_md5() == Some(false) {
                    return Err(AzureError::Md5Mismatch);
                }
                let stored_checksum = req.content_md5.as_deref().and_then(base64_decode);
                self.blobs.put(
                    &req.resource,
                    StoredObject {
                        data: req.body.clone().into(),
                        stored_checksum,
                        checksum_alg: HashAlg::Md5,
                        uploaded_at: now,
                        owner: account,
                    },
                );
                Ok(AzureResponse {
                    status: 201,
                    body: Vec::new(),
                    content_md5: req.content_md5.clone(),
                })
            }
            Method::Get => {
                let obj = self.blobs.get(&req.resource).ok_or(AzureError::BlobNotFound)?;
                // Azure returns the MD5 recorded at upload, NOT a recomputed
                // one — so consistent in-storage tampering sails through.
                let header = obj.stored_checksum.as_ref().map(|s| base64_encode(s));
                Ok(AzureResponse { status: 200, body: obj.data.to_vec(), content_md5: header })
            }
            Method::Delete => {
                self.blobs.delete(&req.resource).ok_or(AzureError::BlobNotFound)?;
                Ok(AzureResponse { status: 202, body: Vec::new(), content_md5: None })
            }
        }
    }

    /// Table entity insert (authenticated callers only, simplified API).
    pub fn table_insert(&mut self, table: &str, row_key: &str, value: &[u8]) {
        self.tables
            .entry(table.to_string())
            .or_default()
            .insert(row_key.to_string(), value.to_vec());
    }

    /// Table entity fetch.
    pub fn table_get(&self, table: &str, row_key: &str) -> Option<&[u8]> {
        self.tables.get(table)?.get(row_key).map(|v| v.as_slice())
    }

    /// Queue push; enforces the paper's 8 KB message cap.
    pub fn queue_push(&mut self, queue: &str, msg: &[u8]) -> Result<(), AzureError> {
        if msg.len() >= MAX_QUEUE_MESSAGE {
            return Err(AzureError::TooLarge);
        }
        self.queues.entry(queue.to_string()).or_default().push_back(msg.to_vec());
        Ok(())
    }

    /// Queue pop.
    pub fn queue_pop(&mut self, queue: &str) -> Option<Vec<u8>> {
        self.queues.get_mut(queue)?.pop_front()
    }

    /// Provider-side tampering with a stored blob (Eve's capability).
    pub fn tamper_blob(&mut self, resource: &str, t: &Tamper) -> Option<TamperReport> {
        self.blobs.tamper(resource, t)
    }

    /// Direct read access for assertions in tests/experiments.
    pub fn peek_blob(&self, resource: &str) -> Option<&StoredObject> {
        self.blobs.get(resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpnr_crypto::hash::Digest as _;
    use tpnr_crypto::md5::Md5;

    fn setup() -> (AzureService, Account) {
        let mut svc = AzureService::new();
        let mut rng = ChaChaRng::seed_from_u64(42);
        let acct = svc.create_account("jerry", &mut rng);
        (svc, acct)
    }

    fn put(acct: &Account, resource: &str, body: &[u8]) -> RestRequest {
        RestRequest::new(Method::Put, resource, body.to_vec(), "date0")
            .with_content_md5()
            .sign(&acct.name, &acct.key)
    }

    fn get(acct: &Account, resource: &str) -> RestRequest {
        RestRequest::new(Method::Get, resource, Vec::new(), "date1").sign(&acct.name, &acct.key)
    }

    #[test]
    fn put_then_get_roundtrip_with_stored_md5() {
        let (mut svc, acct) = setup();
        let body = b"quarterly financials";
        let r = svc.handle(&put(&acct, "/jerry/data", body), SimTime::ZERO).unwrap();
        assert_eq!(r.status, 201);
        let r = svc.handle(&get(&acct, "/jerry/data"), SimTime::ZERO).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, body);
        assert_eq!(
            r.content_md5.unwrap(),
            base64_encode(&Md5::digest(body)),
            "GET returns the MD5 recorded at upload"
        );
    }

    #[test]
    fn unauthenticated_requests_rejected() {
        let (mut svc, acct) = setup();
        let mut req = put(&acct, "/r", b"x");
        req.authorization = None;
        assert_eq!(svc.handle(&req, SimTime::ZERO), Err(AzureError::AuthenticationFailed));

        let forged = RestRequest::new(Method::Put, "/r", b"x".to_vec(), "d")
            .with_content_md5()
            .sign("jerry", b"not the real key 000000000000000");
        assert_eq!(svc.handle(&forged, SimTime::ZERO), Err(AzureError::AuthenticationFailed));

        let unknown = RestRequest::new(Method::Get, "/r", vec![], "d").sign("nobody", &acct.key);
        assert_eq!(svc.handle(&unknown, SimTime::ZERO), Err(AzureError::NoSuchAccount));
    }

    #[test]
    fn corrupted_upload_body_rejected_by_md5_check() {
        let (mut svc, acct) = setup();
        let mut req = put(&acct, "/r", b"clean body");
        req.body[0] ^= 1; // transit corruption after signing
        assert_eq!(svc.handle(&req, SimTime::ZERO), Err(AzureError::Md5Mismatch));
    }

    #[test]
    fn get_missing_blob_is_404() {
        let (mut svc, acct) = setup();
        assert_eq!(
            svc.handle(&get(&acct, "/nothing"), SimTime::ZERO),
            Err(AzureError::BlobNotFound)
        );
    }

    #[test]
    fn delete_works_and_is_idempotent_error() {
        let (mut svc, acct) = setup();
        svc.handle(&put(&acct, "/r", b"x"), SimTime::ZERO).unwrap();
        let del = RestRequest::new(Method::Delete, "/r", vec![], "d").sign(&acct.name, &acct.key);
        assert_eq!(svc.handle(&del, SimTime::ZERO).unwrap().status, 202);
        assert_eq!(svc.handle(&del, SimTime::ZERO), Err(AzureError::BlobNotFound));
    }

    #[test]
    fn naive_tamper_is_detectable_consistent_tamper_is_not() {
        // The §2.4 vulnerability, end to end on the Azure model.
        let (mut svc, acct) = setup();
        svc.handle(&put(&acct, "/r", b"true data"), SimTime::ZERO).unwrap();

        // Naive tamper: data changes, stored MD5 stays -> a diligent client
        // comparing body vs returned MD5 can detect it.
        svc.tamper_blob("/r", &Tamper::BitFlip { offset: 0 }).unwrap();
        let r = svc.handle(&get(&acct, "/r"), SimTime::ZERO).unwrap();
        let returned = base64_decode(&r.content_md5.unwrap()).unwrap();
        assert_ne!(returned, Md5::digest(&r.body), "client detects mismatch");

        // Consistent tamper: provider rewrites data AND metadata -> the GET
        // response is self-consistent; no client-side check can object.
        svc.tamper_blob("/r", &Tamper::ConsistentReplace(b"forged data".to_vec())).unwrap();
        let r = svc.handle(&get(&acct, "/r"), SimTime::ZERO).unwrap();
        let returned = base64_decode(&r.content_md5.unwrap()).unwrap();
        assert_eq!(returned, Md5::digest(&r.body), "forgery is self-consistent");
        assert_eq!(r.body, b"forged data");
    }

    #[test]
    fn queue_respects_8k_limit() {
        let (mut svc, _) = setup();
        assert!(svc.queue_push("q", &[0u8; 100]).is_ok());
        assert_eq!(svc.queue_push("q", &vec![0u8; 8192]), Err(AzureError::TooLarge));
        assert_eq!(svc.queue_pop("q").unwrap().len(), 100);
        assert!(svc.queue_pop("q").is_none());
        assert!(svc.queue_pop("missing").is_none());
    }

    #[test]
    fn tables_store_and_fetch() {
        let (mut svc, _) = setup();
        svc.table_insert("t", "row1", b"v1");
        assert_eq!(svc.table_get("t", "row1"), Some(&b"v1"[..]));
        assert_eq!(svc.table_get("t", "row2"), None);
        assert_eq!(svc.table_get("missing", "row1"), None);
    }

    #[test]
    fn block_upload_and_commit_flow() {
        // The literal Table 1 flow: PUT two blocks, commit the block list,
        // then GET the assembled blob.
        let (mut svc, acct) = setup();
        let put_block = |body: &[u8], id: &str, acct: &Account| {
            RestRequest::new(
                Method::Put,
                &format!("/jerry/pics/photo.jpg?comp=block&blockid={id}&timeout=30"),
                body.to_vec(),
                "Sun, 13 Sept 2009 18:30:25 GMT",
            )
            .with_content_md5()
            .sign(&acct.name, &acct.key)
        };
        svc.handle(&put_block(b"first half ", "blockid1", &acct), SimTime::ZERO).unwrap();
        svc.handle(&put_block(b"second half", "blockid2", &acct), SimTime::ZERO).unwrap();

        let commit = RestRequest::new(
            Method::Put,
            "/jerry/pics/photo.jpg?comp=blocklist",
            b"blockid1\nblockid2".to_vec(),
            "d",
        )
        .sign(&acct.name, &acct.key);
        svc.handle(&commit, SimTime::ZERO).unwrap();

        let get = RestRequest::new(Method::Get, "/jerry/pics/photo.jpg", vec![], "d")
            .sign(&acct.name, &acct.key);
        let resp = svc.handle(&get, SimTime::ZERO).unwrap();
        assert_eq!(resp.body, b"first half second half");
        assert!(resp.content_md5.is_some(), "committed blob records an MD5");
    }

    #[test]
    fn blocklist_referencing_missing_block_rejected() {
        let (mut svc, acct) = setup();
        let commit =
            RestRequest::new(Method::Put, "/blob?comp=blocklist", b"no-such-block".to_vec(), "d")
                .sign(&acct.name, &acct.key);
        assert_eq!(svc.handle(&commit, SimTime::ZERO), Err(AzureError::BadRequest));
    }

    #[test]
    fn block_put_without_blockid_rejected() {
        let (mut svc, acct) = setup();
        let req = RestRequest::new(Method::Put, "/blob?comp=block", b"x".to_vec(), "d")
            .sign(&acct.name, &acct.key);
        assert_eq!(svc.handle(&req, SimTime::ZERO), Err(AzureError::BadRequest));
    }

    #[test]
    fn corrupted_block_body_rejected_by_md5() {
        let (mut svc, acct) = setup();
        let mut req =
            RestRequest::new(Method::Put, "/blob?comp=block&blockid=b1", b"clean".to_vec(), "d")
                .with_content_md5()
                .sign(&acct.name, &acct.key);
        req.body[0] ^= 1;
        assert_eq!(svc.handle(&req, SimTime::ZERO), Err(AzureError::Md5Mismatch));
    }

    #[test]
    fn accounts_have_distinct_keys() {
        let mut svc = AzureService::new();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let a = svc.create_account("a", &mut rng);
        let b = svc.create_account("b", &mut rng);
        assert_ne!(a.key, b.key);
    }
}
