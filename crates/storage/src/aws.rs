//! AWS-style S3 + Import/Export — paper §2.1 / Figure 2.
//!
//! Models the large-transfer path the paper describes: the user writes a
//! *manifest file* (AccessKeyID, DeviceID, Destination, …), signs it, emails
//! the signed manifest to Amazon, and ships the storage device with an
//! attached *signature file*. Amazon validates both, loads the bytes into
//! S3, and **emails back** the byte count, the MD5 of the bytes and the
//! location of the Import/Export log. On download, the paper notes the AWS
//! side sends a **recomputed** MD5 ("a recomputed MD5_2 is sent on Amazon's
//! AWS") — which is exactly why a malicious provider can recompute over
//! tampered data and still look consistent.
//!
//! Shipping happens on the simulated clock with multi-day latency
//! (substitution for FedEx; see DESIGN.md).

use crate::object::{ObjectStore, StoredObject, Tamper, TamperReport};
use tpnr_crypto::encoding::hex_encode;
use tpnr_crypto::hash::{Digest as _, HashAlg};
use tpnr_crypto::md5::Md5;
use tpnr_crypto::{CryptoError, RsaKeyPair, RsaPublicKey};
use tpnr_net::time::{SimDuration, SimTime};

/// The import metadata file of Figure 2 ("manifest file").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// AWS access key id of the requesting user.
    pub access_key_id: String,
    /// Identifier of the shipped storage device.
    pub device_id: String,
    /// Destination bucket/prefix.
    pub destination: String,
    /// Import or export job.
    pub job: JobKind,
    /// Job identifier assigned by the user tooling.
    pub job_id: u64,
}

/// Import (upload) or Export (download) job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Data flows user → S3.
    Import,
    /// Data flows S3 → user.
    Export,
}

impl Manifest {
    /// Canonical bytes that get signed.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let kind = match self.job {
            JobKind::Import => "IMPORT",
            JobKind::Export => "EXPORT",
        };
        format!(
            "manifestVersion:2.0\naccessKeyId:{}\ndeviceId:{}\ndestination:{}\noperation:{}\njobId:{}\n",
            self.access_key_id, self.device_id, self.destination, kind, self.job_id
        )
        .into_bytes()
    }
}

/// The *signature file* attached to the shipped device: identifies the
/// cipher/signature over the job id and manifest bytes so the provider can
/// "uniquely identify and authenticate the user request".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureFile {
    /// Signature algorithm label (fixed in this model).
    pub algorithm: String,
    /// RSA PKCS#1 v1.5 signature over the manifest's canonical bytes.
    pub manifest_signature: Vec<u8>,
}

/// A physical device in transit or at rest, carrying raw bytes.
#[derive(Debug, Clone)]
pub struct StorageDevice {
    /// Device identifier (must match the manifest).
    pub device_id: String,
    /// Raw content.
    pub data: Vec<u8>,
    /// Signature file taped to the device.
    pub signature_file: Option<SignatureFile>,
}

/// The status email Amazon sends after processing (Figure 2: "Amazon will
/// email management information back to the user").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusEmail {
    /// Job this email refers to.
    pub job_id: u64,
    /// Bytes loaded/exported.
    pub bytes: u64,
    /// Hex MD5 of the bytes, as computed by the provider *at email time*.
    pub md5_hex: String,
    /// Load status.
    pub status: JobStatus,
    /// S3 key of the Import/Export log object.
    pub log_location: String,
}

/// Outcome of an import/export job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Everything validated and completed.
    Completed,
    /// Manifest/signature validation failed.
    ValidationFailed,
    /// Referenced data or device was missing.
    NotFound,
}

/// Errors from the AWS service model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AwsError {
    /// Signature file missing or signature invalid.
    BadSignature,
    /// Manifest and device disagree (device id mismatch).
    DeviceMismatch,
    /// Unknown user / no public key on file.
    UnknownUser,
    /// Export source key does not exist.
    NoSuchObject,
    /// Underlying crypto failure.
    Crypto(CryptoError),
}

impl std::fmt::Display for AwsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AwsError::BadSignature => write!(f, "manifest signature invalid"),
            AwsError::DeviceMismatch => write!(f, "device id does not match manifest"),
            AwsError::UnknownUser => write!(f, "unknown access key id"),
            AwsError::NoSuchObject => write!(f, "no such S3 object"),
            AwsError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for AwsError {}

/// The provider: S3 buckets plus the Import/Export dock.
pub struct AwsService {
    s3: ObjectStore,
    /// Registered users: access key id → signature-verification key.
    users: std::collections::HashMap<String, RsaPublicKey>,
    /// Import/Export logs (stored as S3 objects under `logs/`).
    next_log: u64,
}

impl Default for AwsService {
    fn default() -> Self {
        Self::new()
    }
}

/// Client-side helper: prepares a signed import job.
pub fn prepare_import(
    user_keys: &RsaKeyPair,
    access_key_id: &str,
    device_id: &str,
    destination: &str,
    job_id: u64,
    data: Vec<u8>,
) -> Result<(Manifest, StorageDevice), AwsError> {
    let manifest = Manifest {
        access_key_id: access_key_id.to_string(),
        device_id: device_id.to_string(),
        destination: destination.to_string(),
        job: JobKind::Import,
        job_id,
    };
    let sig = user_keys
        .private
        .sign(HashAlg::Sha256, &manifest.canonical_bytes())
        .map_err(AwsError::Crypto)?;
    let device = StorageDevice {
        device_id: device_id.to_string(),
        data,
        signature_file: Some(SignatureFile {
            algorithm: "RSA-PKCS1v15-SHA256".to_string(),
            manifest_signature: sig,
        }),
    };
    Ok((manifest, device))
}

impl AwsService {
    /// Empty provider.
    pub fn new() -> Self {
        AwsService { s3: ObjectStore::new(), users: std::collections::HashMap::new(), next_log: 0 }
    }

    /// Registers a user's verification key (the AWS account signup step).
    pub fn register_user(&mut self, access_key_id: &str, pk: RsaPublicKey) {
        self.users.insert(access_key_id.to_string(), pk);
    }

    fn validate(&self, manifest: &Manifest, device: &StorageDevice) -> Result<(), AwsError> {
        let pk = self.users.get(&manifest.access_key_id).ok_or(AwsError::UnknownUser)?;
        let sig_file = device.signature_file.as_ref().ok_or(AwsError::BadSignature)?;
        if device.device_id != manifest.device_id {
            return Err(AwsError::DeviceMismatch);
        }
        pk.verify(HashAlg::Sha256, &manifest.canonical_bytes(), &sig_file.manifest_signature)
            .map_err(|_| AwsError::BadSignature)
    }

    /// Processes an arrived import job: validates manifest + signature file,
    /// copies device bytes into S3, writes the log, and returns the status
    /// email.
    pub fn process_import(
        &mut self,
        manifest: &Manifest,
        device: &StorageDevice,
        now: SimTime,
    ) -> Result<StatusEmail, AwsError> {
        self.validate(manifest, device)?;
        let md5 = Md5::digest(&device.data);
        self.s3.put(
            &manifest.destination,
            StoredObject {
                data: device.data.clone().into(),
                stored_checksum: Some(md5.clone()),
                checksum_alg: HashAlg::Md5,
                uploaded_at: now,
                owner: manifest.access_key_id.clone(),
            },
        );
        let log_location = format!("logs/import-{}", self.next_log);
        self.next_log += 1;
        let log_line = format!(
            "key:{} bytes:{} md5:{}\n",
            manifest.destination,
            device.data.len(),
            hex_encode(&md5)
        );
        self.s3.put(
            &log_location,
            StoredObject {
                data: log_line.into_bytes().into(),
                stored_checksum: None,
                checksum_alg: HashAlg::Md5,
                uploaded_at: now,
                owner: "aws".to_string(),
            },
        );
        Ok(StatusEmail {
            job_id: manifest.job_id,
            bytes: device.data.len() as u64,
            md5_hex: hex_encode(&md5),
            status: JobStatus::Completed,
            log_location,
        })
    }

    /// Processes an export job: validates, copies the S3 object onto the
    /// (returned) device, and emails the status **with a freshly recomputed
    /// MD5** — AWS behaviour per paper §2.4.
    pub fn process_export(
        &mut self,
        manifest: &Manifest,
        mut device: StorageDevice,
        _now: SimTime,
    ) -> Result<(StorageDevice, StatusEmail), AwsError> {
        self.validate(manifest, &device)?;
        let obj = self.s3.get(&manifest.destination).ok_or(AwsError::NoSuchObject)?;
        device.data = obj.data.to_vec();
        // Recomputed at export time — NOT the MD5 recorded at import.
        let md5 = Md5::digest(&device.data);
        let email = StatusEmail {
            job_id: manifest.job_id,
            bytes: device.data.len() as u64,
            md5_hex: hex_encode(&md5),
            status: JobStatus::Completed,
            log_location: String::new(),
        };
        Ok((device, email))
    }

    /// Small-object S3 PUT over the Internet path (≤ 50 GB per the paper's
    /// size discussion; unenforced here).
    pub fn s3_put(&mut self, key: &str, data: &[u8], owner: &str, now: SimTime) -> Vec<u8> {
        let md5 = Md5::digest(data);
        self.s3.put(
            key,
            StoredObject {
                data: data.to_vec().into(),
                stored_checksum: Some(md5.clone()),
                checksum_alg: HashAlg::Md5,
                uploaded_at: now,
                owner: owner.to_string(),
            },
        );
        md5
    }

    /// S3 GET; returns data plus a **recomputed** MD5.
    pub fn s3_get(&self, key: &str) -> Option<(Vec<u8>, Vec<u8>)> {
        let obj = self.s3.get(key)?;
        let md5 = Md5::digest(&obj.data);
        Some((obj.data.to_vec(), md5))
    }

    /// Provider-side tampering (Eve's capability).
    pub fn tamper(&mut self, key: &str, t: &Tamper) -> Option<TamperReport> {
        self.s3.tamper(key, t)
    }

    /// Direct read access for assertions.
    pub fn peek(&self, key: &str) -> Option<&StoredObject> {
        self.s3.get(key)
    }
}

/// Simulated surface shipping (the FedEx leg of Figure 2).
#[derive(Debug, Clone)]
pub struct Shipment {
    /// The device being transported.
    pub device: StorageDevice,
    /// When it was handed to the carrier.
    pub shipped_at: SimTime,
    /// Transit time.
    pub transit: SimDuration,
}

impl Shipment {
    /// Hands a device to the carrier.
    pub fn dispatch(device: StorageDevice, now: SimTime, transit: SimDuration) -> Self {
        Shipment { device, shipped_at: now, transit }
    }

    /// Arrival time at the destination dock.
    pub fn arrives_at(&self) -> SimTime {
        self.shipped_at.after(self.transit)
    }

    /// Whether the shipment has arrived by `now`.
    pub fn arrived(&self, now: SimTime) -> bool {
        now >= self.arrives_at()
    }

    /// Typical 2010 ground shipping: 3 days.
    pub fn typical_transit() -> SimDuration {
        SimDuration::from_hours(72)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AwsService, RsaKeyPair) {
        let mut svc = AwsService::new();
        let user = RsaKeyPair::insecure_test_key(11);
        svc.register_user("AKIAALICE", user.public.clone());
        (svc, user)
    }

    #[test]
    fn import_flow_end_to_end() {
        let (mut svc, user) = setup();
        let data = vec![7u8; 4096];
        let (manifest, device) =
            prepare_import(&user, "AKIAALICE", "dev-1", "bucket/backup", 1, data.clone()).unwrap();
        let email = svc.process_import(&manifest, &device, SimTime::ZERO).unwrap();
        assert_eq!(email.status, JobStatus::Completed);
        assert_eq!(email.bytes, 4096);
        assert_eq!(email.md5_hex, hex_encode(&Md5::digest(&data)));
        // Log object exists and mentions the key.
        let log = svc.peek(&email.log_location).unwrap();
        assert!(String::from_utf8_lossy(&log.data).contains("bucket/backup"));
    }

    #[test]
    fn forged_manifest_rejected() {
        let (mut svc, user) = setup();
        let (mut manifest, device) =
            prepare_import(&user, "AKIAALICE", "dev-1", "bucket/x", 2, vec![1]).unwrap();
        manifest.destination = "bucket/steal".to_string(); // altered after signing
        assert_eq!(
            svc.process_import(&manifest, &device, SimTime::ZERO),
            Err(AwsError::BadSignature)
        );
    }

    #[test]
    fn missing_signature_file_rejected() {
        let (mut svc, user) = setup();
        let (manifest, mut device) =
            prepare_import(&user, "AKIAALICE", "dev-1", "bucket/x", 3, vec![1]).unwrap();
        device.signature_file = None;
        assert_eq!(
            svc.process_import(&manifest, &device, SimTime::ZERO),
            Err(AwsError::BadSignature)
        );
    }

    #[test]
    fn device_swap_rejected() {
        let (mut svc, user) = setup();
        let (manifest, mut device) =
            prepare_import(&user, "AKIAALICE", "dev-1", "bucket/x", 4, vec![1]).unwrap();
        device.device_id = "dev-other".to_string();
        assert_eq!(
            svc.process_import(&manifest, &device, SimTime::ZERO),
            Err(AwsError::DeviceMismatch)
        );
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut svc, user) = setup();
        let (manifest, device) =
            prepare_import(&user, "AKIANOBODY", "dev-1", "bucket/x", 5, vec![1]).unwrap();
        assert_eq!(
            svc.process_import(&manifest, &device, SimTime::ZERO),
            Err(AwsError::UnknownUser)
        );
    }

    #[test]
    fn export_returns_recomputed_md5() {
        let (mut svc, user) = setup();
        let original = b"the original bytes".to_vec();
        let (m_in, dev_in) =
            prepare_import(&user, "AKIAALICE", "dev-1", "bucket/d", 6, original.clone()).unwrap();
        let import_email = svc.process_import(&m_in, &dev_in, SimTime::ZERO).unwrap();

        // Provider tampers in storage, consistently.
        svc.tamper("bucket/d", &Tamper::ConsistentReplace(b"swapped".to_vec())).unwrap();

        let (m_out, dev_out) = {
            let manifest = Manifest {
                access_key_id: "AKIAALICE".into(),
                device_id: "dev-2".into(),
                destination: "bucket/d".into(),
                job: JobKind::Export,
                job_id: 7,
            };
            let sig = user.private.sign(HashAlg::Sha256, &manifest.canonical_bytes()).unwrap();
            let device = StorageDevice {
                device_id: "dev-2".into(),
                data: Vec::new(),
                signature_file: Some(SignatureFile {
                    algorithm: "RSA-PKCS1v15-SHA256".into(),
                    manifest_signature: sig,
                }),
            };
            (manifest, device)
        };
        let (device, export_email) = svc.process_export(&m_out, dev_out, SimTime::ZERO).unwrap();
        assert_eq!(device.data, b"swapped");
        // The export-time MD5 matches the *tampered* data — self-consistent
        // forgery, exactly the paper's point about recomputed MD5_2.
        assert_eq!(export_email.md5_hex, hex_encode(&Md5::digest(b"swapped")));
        assert_ne!(export_email.md5_hex, import_email.md5_hex);
    }

    #[test]
    fn export_missing_object_fails() {
        let (mut svc, user) = setup();
        let manifest = Manifest {
            access_key_id: "AKIAALICE".into(),
            device_id: "d".into(),
            destination: "bucket/none".into(),
            job: JobKind::Export,
            job_id: 8,
        };
        let sig = user.private.sign(HashAlg::Sha256, &manifest.canonical_bytes()).unwrap();
        let device = StorageDevice {
            device_id: "d".into(),
            data: vec![],
            signature_file: Some(SignatureFile {
                algorithm: "RSA-PKCS1v15-SHA256".into(),
                manifest_signature: sig,
            }),
        };
        assert_eq!(
            svc.process_export(&manifest, device, SimTime::ZERO).unwrap_err(),
            AwsError::NoSuchObject
        );
    }

    #[test]
    fn s3_internet_path_recomputes_md5() {
        let (mut svc, _) = setup();
        let put_md5 = svc.s3_put("k", b"data", "alice", SimTime::ZERO);
        let (data, get_md5) = svc.s3_get("k").unwrap();
        assert_eq!(data, b"data");
        assert_eq!(put_md5, get_md5);
        svc.tamper("k", &Tamper::BitFlip { offset: 1 }).unwrap();
        let (_, md5_after) = svc.s3_get("k").unwrap();
        assert_ne!(md5_after, put_md5, "recomputed over tampered data");
    }

    #[test]
    fn shipment_timing() {
        let dev = StorageDevice { device_id: "d".into(), data: vec![], signature_file: None };
        let s = Shipment::dispatch(dev, SimTime::ZERO, Shipment::typical_transit());
        assert!(!s.arrived(SimTime::ZERO));
        assert!(!s.arrived(SimTime(71 * 3_600_000_000)));
        assert!(s.arrived(SimTime(72 * 3_600_000_000)));
    }

    #[test]
    fn manifest_canonical_bytes_distinguish_jobs() {
        let m1 = Manifest {
            access_key_id: "A".into(),
            device_id: "d".into(),
            destination: "x".into(),
            job: JobKind::Import,
            job_id: 1,
        };
        let mut m2 = m1.clone();
        m2.job = JobKind::Export;
        assert_ne!(m1.canonical_bytes(), m2.canonical_bytes());
        let mut m3 = m1.clone();
        m3.job_id = 2;
        assert_ne!(m1.canonical_bytes(), m3.canonical_bytes());
    }
}
