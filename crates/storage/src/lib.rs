//! # tpnr-storage
//!
//! Simulated 2010-era cloud storage platforms, faithful to the security
//! mechanics paper §2 describes, plus the tamper-injection machinery used
//! to demonstrate the §2.4 integrity vulnerability:
//!
//! * [`object`] — the provider-side store with [`object::Tamper`] (including
//!   the metadata-consistent tamper only a provider can perform);
//! * [`rest`] — Table 1's REST request model with `SharedKey` HMAC-SHA256
//!   signing and `Content-MD5`;
//! * [`azure`] — Windows Azure storage: account keys, signed requests,
//!   blobs/tables/queues, stored-MD5-returned-on-GET semantics;
//! * [`aws`] — Amazon S3 + Import/Export: manifest + signature files,
//!   device shipping on the simulated clock, status emails,
//!   recomputed-MD5-on-export semantics;
//! * [`gae`] — Google App Engine datastore behind a Secure Data Connector
//!   with fully-populated signed requests and resource rules;
//! * [`platform`] — one trait over all three for the Figure-5 experiments.

#![forbid(unsafe_code)]

pub mod aws;
pub mod azure;
pub mod gae;
pub mod object;
pub mod platform;
pub mod rest;

pub use object::{ObjectStore, StoredObject, Tamper, TamperReport};
pub use platform::{all_platforms, ChecksumSource, ClientVerdict, Download, Platform};
