//! Google App Engine datastore + Secure Data Connector — paper §2.3 /
//! Figure 4.
//!
//! The GAE model is deliberately thin, mirroring the paper's observation
//! that the public datastore API exposes "only some functions such as GET
//! and PUT" with no storage-integrity features at all. The SDC layer adds
//! what the paper lists: an encrypted tunnel between the data source and
//! Google Apps, resource rules checked by the agent, and *signed requests*
//! carrying `owner_id, viewer_id, instance_id, app_id, public_key,
//! consumer_key, nonce, token, signature`.

use std::collections::{HashMap, HashSet};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::{CryptoError, RsaKeyPair, RsaPublicKey};

use crate::object::{ObjectStore, StoredObject, Tamper, TamperReport};
use tpnr_net::time::SimTime;

/// The signed request of paper §2.3 (all fields the paper enumerates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedRequest {
    /// Data owner.
    pub owner_id: String,
    /// Requesting viewer.
    pub viewer_id: String,
    /// Gadget/app instance.
    pub instance_id: u64,
    /// Application id.
    pub app_id: String,
    /// Requester's public key fingerprint (hex).
    pub public_key: String,
    /// OAuth-style consumer key.
    pub consumer_key: String,
    /// Anti-replay nonce.
    pub nonce: u64,
    /// Access token.
    pub token: String,
    /// Resource being addressed.
    pub resource: String,
    /// RSA signature over all the above.
    pub signature: Vec<u8>,
}

impl SignedRequest {
    // One parameter per signed SDC field, in canonical order.
    #[allow(clippy::too_many_arguments)]
    fn canonical_bytes(
        owner_id: &str,
        viewer_id: &str,
        instance_id: u64,
        app_id: &str,
        public_key: &str,
        consumer_key: &str,
        nonce: u64,
        token: &str,
        resource: &str,
    ) -> Vec<u8> {
        format!(
            "owner_id={owner_id}&viewer_id={viewer_id}&instance_id={instance_id}\
             &app_id={app_id}&public_key={public_key}&consumer_key={consumer_key}\
             &nonce={nonce}&token={token}&resource={resource}"
        )
        .into_bytes()
    }

    /// Builds and signs a request with the viewer's key.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        keys: &RsaKeyPair,
        owner_id: &str,
        viewer_id: &str,
        instance_id: u64,
        app_id: &str,
        consumer_key: &str,
        nonce: u64,
        token: &str,
        resource: &str,
    ) -> Result<Self, CryptoError> {
        let public_key = tpnr_crypto::encoding::hex_encode(&keys.public.fingerprint());
        let bytes = Self::canonical_bytes(
            owner_id,
            viewer_id,
            instance_id,
            app_id,
            &public_key,
            consumer_key,
            nonce,
            token,
            resource,
        );
        let signature = keys.private.sign(HashAlg::Sha256, &bytes)?;
        Ok(SignedRequest {
            owner_id: owner_id.into(),
            viewer_id: viewer_id.into(),
            instance_id,
            app_id: app_id.into(),
            public_key,
            consumer_key: consumer_key.into(),
            nonce,
            token: token.into(),
            resource: resource.into(),
            signature,
        })
    }

    /// Verifies the signature against the claimed key.
    pub fn verify(&self, pk: &RsaPublicKey) -> bool {
        let bytes = Self::canonical_bytes(
            &self.owner_id,
            &self.viewer_id,
            self.instance_id,
            &self.app_id,
            &self.public_key,
            &self.consumer_key,
            self.nonce,
            &self.token,
            &self.resource,
        );
        self.public_key == tpnr_crypto::encoding::hex_encode(&pk.fingerprint())
            && pk.verify(HashAlg::Sha256, &bytes, &self.signature).is_ok()
    }
}

/// Access decision by the SDC agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdcError {
    /// Tunnel server did not recognise the requester.
    TunnelAuthFailed,
    /// Signature check failed.
    BadSignature,
    /// Nonce reuse (replay).
    NonceReplayed,
    /// Resource rules deny this viewer access to this resource.
    AccessDenied,
    /// Datastore miss.
    NotFound,
}

impl std::fmt::Display for SdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdcError::TunnelAuthFailed => write!(f, "tunnel authentication failed"),
            SdcError::BadSignature => write!(f, "signed request verification failed"),
            SdcError::NonceReplayed => write!(f, "nonce replayed"),
            SdcError::AccessDenied => write!(f, "resource rules deny access"),
            SdcError::NotFound => write!(f, "entity not found"),
        }
    }
}

impl std::error::Error for SdcError {}

/// The GAE datastore plus the SDC gateway in front of it.
pub struct GaeService {
    datastore: ObjectStore,
    /// viewer_id → registered public key (tunnel-server identity list).
    identities: HashMap<String, RsaPublicKey>,
    /// Resource rules: set of (viewer_id, resource-prefix) grants.
    rules: HashSet<(String, String)>,
    /// Nonces already accepted per viewer.
    seen_nonces: HashMap<String, HashSet<u64>>,
}

impl Default for GaeService {
    fn default() -> Self {
        Self::new()
    }
}

impl GaeService {
    /// Empty service.
    pub fn new() -> Self {
        GaeService {
            datastore: ObjectStore::new(),
            identities: HashMap::new(),
            rules: HashSet::new(),
            seen_nonces: HashMap::new(),
        }
    }

    /// Registers a viewer identity at the tunnel server.
    pub fn register_identity(&mut self, viewer_id: &str, pk: RsaPublicKey) {
        self.identities.insert(viewer_id.to_string(), pk);
    }

    /// Grants `viewer_id` access to resources starting with `prefix`
    /// (the "resource rules" of Figure 4).
    pub fn grant(&mut self, viewer_id: &str, prefix: &str) {
        self.rules.insert((viewer_id.to_string(), prefix.to_string()));
    }

    fn authorize(&mut self, req: &SignedRequest) -> Result<(), SdcError> {
        let pk = self.identities.get(&req.viewer_id).ok_or(SdcError::TunnelAuthFailed)?;
        if !req.verify(pk) {
            return Err(SdcError::BadSignature);
        }
        let nonces = self.seen_nonces.entry(req.viewer_id.clone()).or_default();
        if !nonces.insert(req.nonce) {
            return Err(SdcError::NonceReplayed);
        }
        let allowed = self
            .rules
            .iter()
            .any(|(v, p)| v == &req.viewer_id && req.resource.starts_with(p.as_str()));
        if !allowed {
            return Err(SdcError::AccessDenied);
        }
        Ok(())
    }

    /// Datastore PUT through the SDC (validated signed request required).
    pub fn put(&mut self, req: &SignedRequest, data: &[u8], now: SimTime) -> Result<(), SdcError> {
        self.authorize(req)?;
        self.datastore.put(
            &req.resource,
            StoredObject {
                data: data.to_vec().into(),
                // The paper notes the raw datastore API has no
                // storage-integrity features: nothing is recorded.
                stored_checksum: None,
                checksum_alg: HashAlg::Md5,
                uploaded_at: now,
                owner: req.viewer_id.clone(),
            },
        );
        Ok(())
    }

    /// Datastore GET through the SDC.
    pub fn get(&mut self, req: &SignedRequest) -> Result<Vec<u8>, SdcError> {
        self.authorize(req)?;
        self.datastore.get(&req.resource).map(|o| o.data.to_vec()).ok_or(SdcError::NotFound)
    }

    /// Provider-side tampering (Eve's capability).
    pub fn tamper(&mut self, resource: &str, t: &Tamper) -> Option<TamperReport> {
        self.datastore.tamper(resource, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GaeService, RsaKeyPair) {
        let mut svc = GaeService::new();
        let keys = RsaKeyPair::insecure_test_key(21);
        svc.register_identity("alice", keys.public.clone());
        svc.grant("alice", "apps/finance/");
        (svc, keys)
    }

    fn request(keys: &RsaKeyPair, nonce: u64, resource: &str) -> SignedRequest {
        SignedRequest::create(
            keys,
            "ownerco",
            "alice",
            1,
            "finance-app",
            "consumer-1",
            nonce,
            "tok",
            resource,
        )
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut svc, keys) = setup();
        let r1 = request(&keys, 1, "apps/finance/q3");
        svc.put(&r1, b"ledger", SimTime::ZERO).unwrap();
        let r2 = request(&keys, 2, "apps/finance/q3");
        assert_eq!(svc.get(&r2).unwrap(), b"ledger");
    }

    #[test]
    fn unknown_identity_rejected_at_tunnel() {
        let (mut svc, _) = setup();
        let stranger = RsaKeyPair::insecure_test_key(22);
        let mut req = request(&stranger, 1, "apps/finance/q3");
        req.viewer_id = "mallory".into();
        assert_eq!(svc.get(&req), Err(SdcError::TunnelAuthFailed));
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut svc, keys) = setup();
        let mut req = request(&keys, 1, "apps/finance/q3");
        req.resource = "apps/finance/other".into(); // changed after signing
        assert_eq!(svc.get(&req), Err(SdcError::BadSignature));
    }

    #[test]
    fn wrong_key_rejected_even_with_matching_fields() {
        let (mut svc, _keys) = setup();
        let impostor = RsaKeyPair::insecure_test_key(23);
        // Impostor signs with own key but claims to be alice.
        let req = SignedRequest::create(
            &impostor,
            "ownerco",
            "alice",
            1,
            "finance-app",
            "consumer-1",
            5,
            "tok",
            "apps/finance/q3",
        )
        .unwrap();
        assert_eq!(svc.get(&req), Err(SdcError::BadSignature));
    }

    #[test]
    fn nonce_replay_rejected() {
        let (mut svc, keys) = setup();
        let req = request(&keys, 9, "apps/finance/q3");
        svc.put(&req, b"v", SimTime::ZERO).unwrap();
        // Same nonce again — even for a different operation — is refused.
        assert_eq!(svc.get(&req), Err(SdcError::NonceReplayed));
    }

    #[test]
    fn resource_rules_enforced() {
        let (mut svc, keys) = setup();
        let req = request(&keys, 1, "apps/hr/salaries");
        assert_eq!(svc.get(&req), Err(SdcError::AccessDenied));
    }

    #[test]
    fn missing_entity_not_found() {
        let (mut svc, keys) = setup();
        let req = request(&keys, 1, "apps/finance/none");
        assert_eq!(svc.get(&req), Err(SdcError::NotFound));
    }

    #[test]
    fn datastore_has_no_integrity_metadata() {
        // The paper's point about GAE: nothing to even compare against.
        let (mut svc, keys) = setup();
        svc.put(&request(&keys, 1, "apps/finance/q3"), b"true", SimTime::ZERO).unwrap();
        svc.tamper("apps/finance/q3", &Tamper::Replace(b"fake".to_vec())).unwrap();
        let got = svc.get(&request(&keys, 2, "apps/finance/q3")).unwrap();
        assert_eq!(got, b"fake", "tamper returned verbatim; no checksum exists at all");
    }
}
