//! The provider-side object store.
//!
//! This is the storage medium of paper Figure 5: the thing that sits
//! *between* the SSL-protected upload session and the SSL-protected
//! download session, fully under the provider's (Eve's) control. The
//! [`ObjectStore::tamper`] API is the malicious/faulty provider: it can
//! corrupt bytes, truncate, substitute whole objects, and — the worst case —
//! tamper *consistently*, recomputing the stored checksum so the platform's
//! own integrity metadata agrees with the corrupted data.

use std::collections::HashMap;
use tpnr_crypto::hash::{DigestCache, HashAlg};
use tpnr_net::time::SimTime;
use tpnr_net::Bytes;

/// A stored object plus the integrity metadata the platform keeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// Object payload — a shared immutable buffer, so putting, getting and
    /// serving an object never copy it. Tampering replaces the handle with
    /// a freshly allocated one (copy-mutate-rewrap), which also gives the
    /// corrupted bytes a new digest-cache identity: a memoized hash of the
    /// old object can never vouch for the new one.
    pub data: Bytes,
    /// Checksum recorded at upload time (`Content-MD5` on Azure, the
    /// Import/Export log MD5 on AWS). `None` if the uploader supplied none.
    pub stored_checksum: Option<Vec<u8>>,
    /// Checksum algorithm used for `stored_checksum`.
    pub checksum_alg: HashAlg,
    /// Upload timestamp.
    pub uploaded_at: SimTime,
    /// Uploading principal (account name).
    pub owner: String,
}

/// Ways the storage medium can corrupt an object in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tamper {
    /// Flip one bit (silent media corruption).
    BitFlip {
        /// Byte offset whose lowest bit is flipped (wrapped to length).
        offset: usize,
    },
    /// Truncate the payload to `len` bytes.
    Truncate {
        /// New length (clamped to current length).
        len: usize,
    },
    /// Replace the payload entirely (malicious substitution).
    Replace(Vec<u8>),
    /// Append bytes (e.g. a botched partial overwrite).
    Append(Vec<u8>),
    /// Replace the payload **and** recompute the stored checksum so the
    /// platform's own metadata stays consistent. Only the provider can do
    /// this — it models Eve "playing with the data in hand" (paper §2.4
    /// concern 2). No per-session check can ever catch it.
    ConsistentReplace(Vec<u8>),
}

/// Result of applying a tamper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperReport {
    /// Whether the stored checksum still matches the (now corrupted) data.
    pub checksum_still_consistent: bool,
}

/// An in-memory keyed object store.
#[derive(Default)]
pub struct ObjectStore {
    objects: HashMap<String, StoredObject>,
}

impl ObjectStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) an object.
    pub fn put(&mut self, key: &str, obj: StoredObject) {
        self.objects.insert(key.to_string(), obj);
    }

    /// Fetches an object.
    pub fn get(&self, key: &str) -> Option<&StoredObject> {
        self.objects.get(key)
    }

    /// Removes an object.
    pub fn delete(&mut self, key: &str) -> Option<StoredObject> {
        self.objects.remove(key)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over keys (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.objects.keys().map(|s| s.as_str())
    }

    /// Applies a tamper to a stored object. Returns `None` if the key does
    /// not exist.
    pub fn tamper(&mut self, key: &str, t: &Tamper) -> Option<TamperReport> {
        let obj = self.objects.get_mut(key)?;
        // Stored buffers are immutable-by-sharing: every mutation copies
        // into a fresh buffer and rewraps (or, for Truncate, re-windows the
        // shared allocation — the digest cache keys on the window too, so
        // even that gets a distinct cache identity).
        match t {
            Tamper::BitFlip { offset } => {
                if !obj.data.is_empty() {
                    let i = offset % obj.data.len();
                    let mut copy = obj.data.to_vec();
                    copy[i] ^= 1;
                    obj.data = Bytes::from(copy);
                }
            }
            Tamper::Truncate { len } => {
                let new_len = (*len).min(obj.data.len());
                obj.data = obj.data.slice(0..new_len);
            }
            Tamper::Replace(new_data) => {
                obj.data = Bytes::from(new_data.clone());
            }
            Tamper::Append(extra) => {
                let mut copy = obj.data.to_vec();
                copy.extend_from_slice(extra);
                obj.data = Bytes::from(copy);
            }
            Tamper::ConsistentReplace(new_data) => {
                obj.data = Bytes::from(new_data.clone());
                obj.stored_checksum = Some(obj.checksum_alg.hash(&obj.data));
            }
        }
        let consistent = match &obj.stored_checksum {
            Some(sum) => tpnr_crypto::ct::eq(sum, &obj.checksum_alg.hash(&obj.data)),
            None => true, // nothing recorded, nothing to contradict
        };
        Some(TamperReport { checksum_still_consistent: consistent })
    }

    /// Checks whether a stored object's data matches its recorded checksum.
    /// Returns `None` for a missing key or an object with no checksum.
    pub fn verify_checksum(&self, key: &str) -> Option<bool> {
        let obj = self.objects.get(key)?;
        let sum = obj.stored_checksum.as_ref()?;
        Some(tpnr_crypto::ct::eq(sum, &obj.checksum_alg.hash(&obj.data)))
    }

    /// [`ObjectStore::verify_checksum`] with the data hash memoized on the
    /// buffer's identity: repeated integrity sweeps over unchanged objects
    /// hash each object once. Tampering always rewraps into a new
    /// allocation (or window), so a stale hit is impossible.
    pub fn verify_checksum_cached(&self, key: &str, cache: &mut DigestCache) -> Option<bool> {
        let obj = self.objects.get(key)?;
        let sum = obj.stored_checksum.as_ref()?;
        let (start, end) = obj.data.range();
        let digest = cache.hash(obj.checksum_alg, obj.data.backing(), start, end);
        Some(tpnr_crypto::ct::eq(sum, &digest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(data: &[u8]) -> StoredObject {
        StoredObject {
            data: data.to_vec().into(),
            stored_checksum: Some(HashAlg::Md5.hash(data)),
            checksum_alg: HashAlg::Md5,
            uploaded_at: SimTime::ZERO,
            owner: "alice".into(),
        }
    }

    #[test]
    fn put_get_delete() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        s.put("k", obj(b"data"));
        assert_eq!(s.get("k").unwrap().data, b"data");
        assert_eq!(s.len(), 1);
        assert!(s.delete("k").is_some());
        assert!(s.get("k").is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = ObjectStore::new();
        s.put("k", obj(b"v1"));
        s.put("k", obj(b"v2"));
        assert_eq!(s.get("k").unwrap().data, b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bitflip_breaks_checksum_consistency() {
        let mut s = ObjectStore::new();
        s.put("k", obj(b"financial records"));
        let rep = s.tamper("k", &Tamper::BitFlip { offset: 3 }).unwrap();
        assert!(!rep.checksum_still_consistent);
        assert_eq!(s.verify_checksum("k"), Some(false));
    }

    #[test]
    fn bitflip_wraps_offset_and_handles_empty() {
        let mut s = ObjectStore::new();
        s.put("k", obj(b"ab"));
        s.tamper("k", &Tamper::BitFlip { offset: 7 }).unwrap(); // 7 % 2 = 1
        assert_eq!(s.get("k").unwrap().data, vec![b'a', b'b' ^ 1]);
        s.put("e", obj(b""));
        let rep = s.tamper("e", &Tamper::BitFlip { offset: 0 }).unwrap();
        assert!(rep.checksum_still_consistent, "empty object unchanged");
    }

    #[test]
    fn truncate_and_append_detected_by_checksum() {
        let mut s = ObjectStore::new();
        s.put("k", obj(b"0123456789"));
        let rep = s.tamper("k", &Tamper::Truncate { len: 4 }).unwrap();
        assert!(!rep.checksum_still_consistent);
        assert_eq!(s.get("k").unwrap().data, b"0123");

        s.put("k2", obj(b"base"));
        let rep = s.tamper("k2", &Tamper::Append(b"extra".to_vec())).unwrap();
        assert!(!rep.checksum_still_consistent);
    }

    #[test]
    fn consistent_replace_is_undetectable_by_stored_metadata() {
        // The crux of paper §2.4: the provider controls data AND metadata.
        let mut s = ObjectStore::new();
        s.put("k", obj(b"the true financial data"));
        let rep = s.tamper("k", &Tamper::ConsistentReplace(b"forged numbers".to_vec())).unwrap();
        assert!(rep.checksum_still_consistent);
        assert_eq!(s.verify_checksum("k"), Some(true), "platform sees nothing wrong");
        assert_eq!(s.get("k").unwrap().data, b"forged numbers");
    }

    #[test]
    fn cached_checksum_sweep_hashes_once_and_never_vouches_for_tampered_data() {
        let mut s = ObjectStore::new();
        let mut cache = DigestCache::new(8);
        s.put("k", obj(b"stable object"));
        assert_eq!(s.verify_checksum_cached("k", &mut cache), Some(true));
        assert_eq!(s.verify_checksum_cached("k", &mut cache), Some(true));
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "second sweep is a pure lookup");
        // Every tamper rewraps, so the memoized digest of the old buffer
        // cannot answer for the new one — the check recomputes and fails.
        s.tamper("k", &Tamper::BitFlip { offset: 0 }).unwrap();
        assert_eq!(s.verify_checksum_cached("k", &mut cache), Some(false));
        assert_eq!(cache.misses(), 2, "tampered object forced a recompute");
        // Truncate re-windows the shared allocation; the window is part of
        // the cache key, so it too recomputes.
        s.put("t", obj(b"0123456789"));
        assert_eq!(s.verify_checksum_cached("t", &mut cache), Some(true));
        s.tamper("t", &Tamper::Truncate { len: 4 }).unwrap();
        assert_eq!(s.verify_checksum_cached("t", &mut cache), Some(false));
    }

    #[test]
    fn tamper_missing_key_is_none() {
        let mut s = ObjectStore::new();
        assert!(s.tamper("nope", &Tamper::Truncate { len: 0 }).is_none());
    }

    #[test]
    fn verify_checksum_none_cases() {
        let mut s = ObjectStore::new();
        assert_eq!(s.verify_checksum("missing"), None);
        let mut o = obj(b"x");
        o.stored_checksum = None;
        s.put("nosum", o);
        assert_eq!(s.verify_checksum("nosum"), None);
    }
}
