//! Property tests for the platform models: REST auth soundness under
//! arbitrary field mutation, upload/download fidelity for arbitrary bodies,
//! and the invariant behind Figure 5 — any in-storage tamper either breaks
//! the stored-checksum relation or was performed consistently by the
//! provider (never both hidden *and* metadata-inconsistent).

use proptest::prelude::*;
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::ChaChaRng;
use tpnr_net::time::SimTime;
use tpnr_storage::azure::AzureService;
use tpnr_storage::object::{ObjectStore, StoredObject, Tamper};
use tpnr_storage::platform::{all_platforms, ClientVerdict};
use tpnr_storage::rest::{Method, RestRequest};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signed_rest_request_roundtrips(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        resource in "/[a-z0-9/]{1,40}",
        date in "[A-Za-z0-9 :,]{1,30}",
    ) {
        let key = [7u8; 32];
        let req = RestRequest::new(Method::Put, &resource, body, &date)
            .with_content_md5()
            .sign("acct", &key);
        prop_assert!(req.verify_signature("acct", &key));
        prop_assert_eq!(req.verify_content_md5(), Some(true));
    }

    #[test]
    fn any_signed_header_mutation_breaks_auth(
        body in proptest::collection::vec(any::<u8>(), 0..128),
        which in 0usize..5,
        salt in "[a-z]{1,8}",
    ) {
        let key = [9u8; 32];
        let mut req = RestRequest::new(Method::Put, "/r", body, "date")
            .with_content_md5()
            .sign("acct", &key);
        match which {
            0 => req.method = Method::Delete,
            1 => req.resource.push_str(&salt),
            2 => req.content_length = req.content_length.wrapping_add(1),
            3 => req.date.push_str(&salt),
            _ => req.version.push_str(&salt),
        }
        prop_assert!(!req.verify_signature("acct", &key));
    }

    #[test]
    fn azure_roundtrip_any_body(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        seed in any::<u64>(),
    ) {
        let mut svc = AzureService::new();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let acct = svc.create_account("a", &mut rng);
        let put = RestRequest::new(Method::Put, "/obj", body.clone(), "d")
            .with_content_md5()
            .sign(&acct.name, &acct.key);
        svc.handle(&put, SimTime::ZERO).unwrap();
        let get = RestRequest::new(Method::Get, "/obj", vec![], "d").sign(&acct.name, &acct.key);
        let resp = svc.handle(&get, SimTime::ZERO).unwrap();
        prop_assert_eq!(resp.body, body);
        prop_assert_eq!(resp.content_md5.is_some(), true);
    }

    #[test]
    fn tamper_invariant_inconsistent_or_provider_made(
        original in proptest::collection::vec(any::<u8>(), 1..256),
        replacement in proptest::collection::vec(any::<u8>(), 0..256),
        which in 0usize..5,
        offset in any::<usize>(),
    ) {
        let mut store = ObjectStore::new();
        store.put("k", StoredObject {
            data: original.clone().into(),
            stored_checksum: Some(HashAlg::Md5.hash(&original)),
            checksum_alg: HashAlg::Md5,
            uploaded_at: SimTime::ZERO,
            owner: "u".into(),
        });
        let tamper = match which {
            0 => Tamper::BitFlip { offset },
            1 => Tamper::Truncate { len: offset % original.len() },
            2 => Tamper::Replace(replacement.clone()),
            3 => Tamper::Append(vec![1, 2, 3]),
            _ => Tamper::ConsistentReplace(replacement.clone()),
        };
        let changed = match &tamper {
            Tamper::Replace(r) | Tamper::ConsistentReplace(r) => *r != original,
            Tamper::Truncate { len } => len % original.len() != 0 || !original.is_empty(),
            _ => true,
        };
        let report = store.tamper("k", &tamper).unwrap();
        let consistent = store.verify_checksum("k").unwrap();
        prop_assert_eq!(report.checksum_still_consistent, consistent);
        match tamper {
            Tamper::ConsistentReplace(_) => prop_assert!(consistent,
                "provider-made tamper is always metadata-consistent"),
            _ => {
                if changed {
                    // An MD5 collision would falsify this; astronomically
                    // unlikely for random inputs.
                    prop_assert!(!consistent, "naive tamper must break the checksum");
                }
            }
        }
    }

    #[test]
    fn platform_matrix_invariant(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        forged in proptest::collection::vec(any::<u8>(), 1..128),
        seed in any::<u64>(),
    ) {
        prop_assume!(data != forged);
        for mut p in all_platforms(seed) {
            p.upload("k", &data, SimTime::ZERO);
            p.tamper("k", &Tamper::ConsistentReplace(forged.clone()));
            let d = p.download("k").unwrap();
            // Figure 5: the consistent tamper is invisible to every
            // platform's own client-side check.
            prop_assert_eq!(d.client_check(), ClientVerdict::LooksClean,
                "{} leaked the tamper", p.name());
            prop_assert_eq!(&d.data, &forged);
        }
    }
}
