//! Workspace call graph over the [`crate::parser`] item tree.
//!
//! Nodes are every parsed `fn` in the workspace; edges come from
//! token-level call-site extraction plus heuristic name resolution:
//!
//! - `self.method(…)` resolves to every impl of the caller's own type
//!   with that method name (cross-file impl blocks included);
//! - `Type::method(…)` / `Self::assoc(…)` resolve through the known
//!   type table (struct names and impl self-types);
//! - `path::to::f(…)` resolves through the caller file's `use` table
//!   with `crate`/`self`/`super` and `tpnr_*` → crate-root
//!   normalization;
//! - a bare `f(…)` resolves to the caller's own module, then its
//!   imports, then (only if unambiguous — a single defining module) the
//!   whole workspace;
//! - `recv.method(…)` on a non-`self` receiver resolves to *all*
//!   same-named methods in the workspace, except for names on the
//!   std-collision stoplist (`get`, `len`, `clone`, …) which would wire
//!   every `BTreeMap::get` call to unrelated local methods.
//!
//! The result over-approximates on distinctive names and drops edges on
//! std-colliding ones; both directions are documented soundness limits
//! (DESIGN.md §4.14) along with the absence of trait-object dispatch
//! and closure tracking. Functions inside `#[cfg(test)]` regions are
//! kept as nodes but never traversed by [`Graph::reach_from`], so a
//! panic only reachable from test code is never attributed to a
//! protocol entry point.

use crate::lexer::Token;
use crate::parser::{FnItem, EXPR_KEYWORDS};
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names whose bare `recv.name(…)` form is dominated by std types
/// (maps, vecs, options, iterators, formatters). Resolving these by name
/// alone would connect nearly every function to unrelated local impls,
/// so they only resolve through a `self.` receiver or a typed path.
const METHOD_STOPLIST: &[&str] = &[
    "and_then",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "parse",
    "partial_cmp",
    "position",
    "pop",
    "push",
    "push_str",
    "read",
    "remove",
    "resize",
    "retain",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "split_at",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "truncate",
    "trim",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "write",
    "zip",
];

/// One extracted call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the callee-name token in the owning file's token stream.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
    /// Callee name as written (`settle`, `verify`, `from_biguint`).
    pub name: String,
    /// Half-open token range of the argument list (inside the parens).
    pub args: (usize, usize),
    /// `recv.name(…)` (vs free/path call).
    pub is_method: bool,
    /// `self.name(…)` specifically.
    pub receiver_self: bool,
    /// Resolved target node indices (may be empty; over-approximate).
    pub targets: Vec<usize>,
}

/// A call-graph node: one function, flattened with its file index.
#[derive(Debug, Clone)]
pub struct FnMeta {
    pub file: usize,
    pub item: FnItem,
}

/// An edge in the deduplicated adjacency list, keeping the first call
/// site's position for chain reporting.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    pub line: u32,
    pub col: u32,
}

/// Breadth-first reachability result with parent pointers.
#[derive(Debug, Clone)]
pub struct Reach {
    pub reached: Vec<bool>,
    /// For each reached node: the root it was discovered from.
    pub root: Vec<Option<usize>>,
    /// For each reached non-root node: the caller it was discovered via.
    pub parent: Vec<Option<usize>>,
}

#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<FnMeta>,
    /// Per-node extracted call sites (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-node deduplicated outgoing edges (parallel to `fns`).
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    /// Build the workspace call graph: collect nodes, extract call
    /// sites, resolve names, and dedupe edges.
    pub fn build(ws: &Workspace) -> Graph {
        let mut g = Graph::default();
        for (fi, file) in ws.files.iter().enumerate() {
            for item in &file.parsed.fns {
                g.fns.push(FnMeta { file: fi, item: item.clone() });
            }
        }
        let r = Resolver::new(ws, &g.fns);
        for idx in 0..g.fns.len() {
            let meta = &g.fns[idx];
            let file = &ws.files[meta.file];
            let mut sites = extract_calls(&file.tokens, meta.item.body);
            for site in &mut sites {
                site.targets = r.resolve(site, meta, &file.tokens);
            }
            let mut seen = BTreeSet::new();
            let mut edges = Vec::new();
            for site in &sites {
                for &t in &site.targets {
                    if seen.insert(t) {
                        edges.push(Edge { callee: t, line: site.line, col: site.col });
                    }
                }
            }
            edges.sort_by_key(|e| e.callee);
            g.calls.push(sites);
            g.edges.push(edges);
        }
        g
    }

    /// Node indices whose qname equals `qname`.
    pub fn by_qname<'g>(&'g self, qname: &str) -> impl Iterator<Item = usize> + 'g {
        let q = qname.to_string();
        (0..self.fns.len()).filter(move |&i| self.fns[i].item.qname == q)
    }

    /// BFS from `roots` over call edges. Nodes inside test regions are
    /// never traversed (a non-test build cannot call them; heuristic
    /// edges into test helpers must not drag test panics into protocol
    /// reachability).
    pub fn reach_from(&self, roots: &[usize]) -> Reach {
        let n = self.fns.len();
        let mut reach =
            Reach { reached: vec![false; n], root: vec![None; n], parent: vec![None; n] };
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < n && !self.fns[r].item.is_test && !reach.reached[r] {
                reach.reached[r] = true;
                reach.root[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.edges[u] {
                let v = e.callee;
                if !reach.reached[v] && !self.fns[v].item.is_test {
                    reach.reached[v] = true;
                    reach.root[v] = reach.root[u];
                    reach.parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        reach
    }

    /// Root-to-target qname chain for a reached node, elided in the
    /// middle when longer than five hops.
    pub fn chain(&self, reach: &Reach, target: usize) -> String {
        let mut names = Vec::new();
        let mut cur = Some(target);
        while let Some(i) = cur {
            names.push(self.fns[i].item.qname.clone());
            cur = reach.parent[i];
        }
        names.reverse();
        if names.len() > 5 {
            let skipped = names.len() - 4;
            let tail = names.split_off(names.len() - 2);
            names.truncate(2);
            names.push(format!("... {skipped} more ..."));
            names.extend(tail);
        }
        names.join(" -> ")
    }
}

/// Name-resolution tables, built once per workspace.
struct Resolver<'w> {
    ws: &'w Workspace,
    /// (owner type, method name) → nodes.
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    /// (module, name) → free-fn nodes.
    free_by_module_name: BTreeMap<(String, String), Vec<usize>>,
    /// name → free-fn nodes (global fallback).
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// name → method nodes (any owner).
    method_by_name: BTreeMap<String, Vec<usize>>,
    /// Known type names: struct names and impl self-types.
    type_names: BTreeSet<String>,
    /// First segment of every file module (`core`, `net`, `crypto`, …).
    crate_roots: BTreeSet<String>,
    /// Module of every node (parallel to the graph's `fns`).
    fn_modules: Vec<String>,
}

impl<'w> Resolver<'w> {
    fn new(ws: &'w Workspace, fns: &[FnMeta]) -> Resolver<'w> {
        let mut r = Resolver {
            ws,
            by_owner_name: BTreeMap::new(),
            free_by_module_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            method_by_name: BTreeMap::new(),
            type_names: BTreeSet::new(),
            crate_roots: BTreeSet::new(),
            fn_modules: fns.iter().map(|m| m.item.module.clone()).collect(),
        };
        for (i, m) in fns.iter().enumerate() {
            let it = &m.item;
            match &it.owner {
                Some(o) => {
                    r.by_owner_name.entry((o.clone(), it.name.clone())).or_default().push(i);
                    r.method_by_name.entry(it.name.clone()).or_default().push(i);
                    r.type_names.insert(o.clone());
                }
                None => {
                    r.free_by_module_name
                        .entry((it.module.clone(), it.name.clone()))
                        .or_default()
                        .push(i);
                    r.free_by_name.entry(it.name.clone()).or_default().push(i);
                }
            }
        }
        for file in &ws.files {
            if let Some(m) = &file.module {
                if let Some(root) = m.split("::").next() {
                    r.crate_roots.insert(root.to_string());
                }
            }
            for s in &file.parsed.structs {
                r.type_names.insert(s.name.clone());
            }
        }
        r
    }

    fn resolve(&self, site: &CallSite, caller: &FnMeta, toks: &[Token]) -> Vec<usize> {
        if site.is_method {
            return self.resolve_method(site, caller);
        }
        // Reconstruct any `a::b::name` path by walking back over `::`.
        let segs = path_segments(toks, site.tok);
        if segs.len() > 1 {
            self.resolve_path(&segs, caller)
        } else {
            self.resolve_free(&site.name, caller)
        }
    }

    fn resolve_method(&self, site: &CallSite, caller: &FnMeta) -> Vec<usize> {
        if site.receiver_self {
            if let Some(owner) = &caller.item.owner {
                let hit = self.by_owner_name.get(&(owner.clone(), site.name.clone()));
                if let Some(v) = hit {
                    return v.clone();
                }
            }
        }
        if METHOD_STOPLIST.contains(&site.name.as_str()) {
            return Vec::new();
        }
        self.method_by_name.get(&site.name).cloned().unwrap_or_default()
    }

    fn resolve_path(&self, segs: &[String], caller: &FnMeta) -> Vec<usize> {
        let name = segs.last().expect("path has segments").clone();
        let penult = &segs[segs.len() - 2];
        // `Self::assoc(…)` and `Type::assoc(…)`.
        if penult == "Self" {
            if let Some(owner) = &caller.item.owner {
                return self.by_owner_name.get(&(owner.clone(), name)).cloned().unwrap_or_default();
            }
            return Vec::new();
        }
        if self.type_names.contains(penult) {
            return self.by_owner_name.get(&(penult.clone(), name)).cloned().unwrap_or_default();
        }
        // Module path: expand a leading `use` alias, then normalize.
        let mut segs = segs.to_vec();
        if let Some(decl) = self.use_lookup(caller.file, &segs[0]) {
            segs.splice(0..1, decl.iter().cloned());
        }
        let segs = self.normalize(&segs, &caller.item.module);
        if segs.len() < 2 {
            return self.resolve_free(&name, caller);
        }
        // The expansion may have surfaced a typed path (`use x::Type;
        // Type::assoc(…)` was handled above, but `use x as t; t::Type::f`
        // gets here).
        let penult = &segs[segs.len() - 2];
        if self.type_names.contains(penult) {
            return self.by_owner_name.get(&(penult.clone(), name)).cloned().unwrap_or_default();
        }
        let module = segs[..segs.len() - 1].join("::");
        self.free_by_module_name.get(&(module, name)).cloned().unwrap_or_default()
    }

    fn resolve_free(&self, name: &str, caller: &FnMeta) -> Vec<usize> {
        // Same module first.
        if let Some(v) =
            self.free_by_module_name.get(&(caller.item.module.clone(), name.to_string()))
        {
            return v.clone();
        }
        // Imported by name?
        if let Some(path) = self.use_lookup(caller.file, name) {
            let segs = self.normalize(&path, &caller.item.module);
            if segs.len() >= 2 {
                let module = segs[..segs.len() - 1].join("::");
                if let Some(v) = self.free_by_module_name.get(&(module, name.to_string())) {
                    return v.clone();
                }
            }
            return Vec::new();
        }
        // Global fallback: only when a single module defines the name
        // (covers glob imports without wiring ambiguous names).
        if let Some(v) = self.free_by_name.get(name) {
            let modules: BTreeSet<&str> = v.iter().map(|&i| self.fn_modules[i].as_str()).collect();
            if modules.len() == 1 {
                return v.clone();
            }
        }
        Vec::new()
    }

    /// Find a `use` alias in the caller's file.
    fn use_lookup(&self, file: usize, alias: &str) -> Option<Vec<String>> {
        self.ws.files[file].parsed.uses.iter().find(|u| u.alias == alias).map(|u| u.path.clone())
    }

    /// Normalize a path's leading segment: `crate`/`self`/`super`
    /// relative to the caller's module, `tpnr_x` → `x` when `x` is a
    /// known crate root.
    fn normalize(&self, segs: &[String], caller_module: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let caller_segs: Vec<&str> = caller_module.split("::").collect();
        let mut rest = segs;
        match segs.first().map(String::as_str) {
            Some("crate") => {
                out.push(caller_segs[0].to_string());
                rest = &segs[1..];
            }
            Some("self") => {
                out.extend(caller_segs.iter().map(|s| s.to_string()));
                rest = &segs[1..];
            }
            Some("super") => {
                let keep = caller_segs.len().saturating_sub(1);
                out.extend(caller_segs[..keep].iter().map(|s| s.to_string()));
                rest = &segs[1..];
                // `super::super::…`
                while rest.first().map(String::as_str) == Some("super") {
                    out.pop();
                    rest = &rest[1..];
                }
            }
            Some(first) => {
                if let Some(stripped) = first.strip_prefix("tpnr_") {
                    if self.crate_roots.contains(stripped) {
                        out.push(stripped.to_string());
                        rest = &segs[1..];
                    }
                }
            }
            None => {}
        }
        out.extend(rest.iter().cloned());
        out
    }
}

/// Walk back from the callee-name token to collect a `::`-separated
/// path, skipping one balanced turbofish group (`Type::<N>::f`).
fn path_segments(toks: &[Token], name_idx: usize) -> Vec<String> {
    let mut segs = vec![toks[name_idx].ident().unwrap_or_default().to_string()];
    let mut j = name_idx;
    while j >= 2 && toks[j - 1].is_punct("::") {
        let mut k = j - 2;
        // Backward turbofish skip: `… :: < … > :: name`.
        if toks[k].is_punct(">") || toks[k].is_punct(">>") {
            let mut depth = 0isize;
            loop {
                match () {
                    _ if toks[k].is_punct(">") => depth += 1,
                    _ if toks[k].is_punct(">>") => depth += 2,
                    _ if toks[k].is_punct("<") => depth -= 1,
                    _ if toks[k].is_punct("<<") => depth -= 2,
                    _ => {}
                }
                if depth <= 0 || k == 0 {
                    break;
                }
                k -= 1;
            }
            if k == 0 || !toks[k].is_punct("<") {
                break;
            }
            k -= 1; // now at whatever precedes `<`; expect `::` then ident
            if k == 0 || !toks[k].is_punct("::") {
                break;
            }
            k -= 1;
        }
        match toks[k].ident() {
            Some(s) => {
                segs.insert(0, s.to_string());
                j = k;
            }
            None => break,
        }
        if j < 2 {
            break;
        }
    }
    segs
}

/// Extract call sites from a function body token range. Sees through
/// nested blocks and closures (their calls belong to the enclosing fn);
/// macro invocations are not calls (the passes scan macros directly).
pub fn extract_calls(toks: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        let name = match t.ident() {
            Some(n) => n,
            None => {
                i += 1;
                continue;
            }
        };
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            i += 1;
            continue;
        }
        if EXPR_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // `fn name(` inside the body is a nested definition, not a call.
        if i > start && toks[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let is_method = i > start && toks[i - 1].is_punct(".");
        let receiver_self = is_method
            && i >= 2
            && toks[i - 2].is_ident("self")
            && !(i >= 3 && (toks[i - 3].is_punct(".") || toks[i - 3].is_punct("::")));
        // Argument range: matching close paren.
        let open = i + 1;
        let mut depth = 0usize;
        let mut close = open;
        while close < end {
            if toks[close].is_punct("(") {
                depth += 1;
            } else if toks[close].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        out.push(CallSite {
            tok: i,
            line: t.line,
            col: t.col,
            name: name.to_string(),
            args: (open + 1, close.min(end)),
            is_method,
            receiver_self,
            targets: Vec::new(),
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileInput, Workspace};

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let inputs: Vec<FileInput> = files
            .iter()
            .map(|(p, s)| FileInput { path: p.to_string(), source: s.to_string() })
            .collect();
        Workspace::build(&inputs)
    }

    fn node(g: &Graph, qname: &str) -> usize {
        g.by_qname(qname).next().unwrap_or_else(|| panic!("no node {qname}"))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        let f = node(g, from);
        let t = node(g, to);
        g.edges[f].iter().any(|e| e.callee == t)
    }

    #[test]
    fn self_method_resolves_to_own_impl() {
        let w = ws(&[(
            "crates/core/src/client.rs",
            "struct Client;\nimpl Client {\n  pub fn upload(&self) { self.helper(); }\n  fn helper(&self) {}\n}",
        )]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "core::client::Client::upload", "core::client::Client::helper"));
    }

    #[test]
    fn cross_crate_path_via_use() {
        let w = ws(&[
            (
                "crates/core/src/evidence.rs",
                "use tpnr_crypto::hash;\npub fn seal() { hash::digest(); }",
            ),
            ("crates/crypto/src/hash.rs", "pub fn digest() {}"),
        ]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "core::evidence::seal", "crypto::hash::digest"));
    }

    #[test]
    fn typed_path_resolves_across_files() {
        let w = ws(&[
            (
                "crates/core/src/session.rs",
                "use tpnr_crypto::rsa::RsaPublicKey;\npub fn check() { RsaPublicKey::verify_sig(); }",
            ),
            (
                "crates/crypto/src/rsa.rs",
                "pub struct RsaPublicKey;\nimpl RsaPublicKey { pub fn verify_sig() {} }",
            ),
        ]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "core::session::check", "crypto::rsa::RsaPublicKey::verify_sig"));
    }

    #[test]
    fn crate_relative_path() {
        let w = ws(&[
            ("crates/core/src/runner.rs", "pub fn run() { crate::sched::settle(); }"),
            ("crates/core/src/sched.rs", "pub fn settle() {}"),
        ]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "core::runner::run", "core::sched::settle"));
    }

    #[test]
    fn stoplisted_method_on_foreign_receiver_is_dropped() {
        let w = ws(&[
            ("crates/core/src/a.rs", "pub fn caller(m: M) { m.get(); m.settle_now(); }"),
            (
                "crates/storage/src/store.rs",
                "struct Store;\nimpl Store { pub fn get(&self) {} pub fn settle_now(&self) {} }",
            ),
        ]);
        let g = Graph::build(&w);
        // `get` collides with std collections: no edge.
        assert!(!has_edge(&g, "core::a::caller", "storage::store::Store::get"));
        // Distinctive name: over-approximate edge is kept.
        assert!(has_edge(&g, "core::a::caller", "storage::store::Store::settle_now"));
    }

    #[test]
    fn self_receiver_beats_stoplist() {
        let w = ws(&[(
            "crates/storage/src/store.rs",
            "struct Store;\nimpl Store { pub fn both(&self) { self.get(); } pub fn get(&self) {} }",
        )]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "storage::store::Store::both", "storage::store::Store::get"));
    }

    #[test]
    fn free_global_fallback_requires_unique_module() {
        let w = ws(&[
            ("crates/core/src/a.rs", "pub fn caller() { unique_helper(); dup(); }"),
            ("crates/net/src/b.rs", "pub fn unique_helper() {} pub fn dup() {}"),
            ("crates/storage/src/c.rs", "pub fn dup() {}"),
        ]);
        let g = Graph::build(&w);
        assert!(has_edge(&g, "core::a::caller", "net::b::unique_helper"));
        assert!(!has_edge(&g, "core::a::caller", "net::b::dup"));
        assert!(!has_edge(&g, "core::a::caller", "storage::c::dup"));
    }

    #[test]
    fn reachability_skips_test_fns() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { shared(); }\nfn shared() {}\n\
             #[cfg(test)]\nmod tests { pub fn t_helper() { super::shared(); } }",
        )]);
        let g = Graph::build(&w);
        let entry = node(&g, "core::a::entry");
        let helper = node(&g, "core::a::tests::t_helper");
        let r = g.reach_from(&[entry]);
        assert!(r.reached[node(&g, "core::a::shared")]);
        assert!(!r.reached[helper]);
        // Even rooting at a test fn traverses nothing.
        let r2 = g.reach_from(&[helper]);
        assert!(!r2.reached[helper]);
    }

    #[test]
    fn chain_reports_root_to_target() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let g = Graph::build(&w);
        let r = g.reach_from(&[node(&g, "core::a::entry")]);
        let chain = g.chain(&r, node(&g, "core::a::leaf"));
        assert_eq!(chain, "core::a::entry -> core::a::mid -> core::a::leaf");
    }

    #[test]
    fn call_args_range_covers_arguments() {
        let toks = crate::lexer::lex("fn f() { g(secret, 2); }");
        let sites = extract_calls(&toks, (0, toks.len()));
        let g_site = sites.iter().find(|s| s.name == "g").unwrap();
        let (a, b) = g_site.args;
        assert!(toks[a..b].iter().any(|t| t.is_ident("secret")));
    }
}
