//! `--json` output: one JSON object per line (JSONL), findings first,
//! then a summary record — the same shape the bench crate's
//! `--trace-jsonl` export uses, so the same dependency-free validator
//! style can check it. Key order is fixed and findings are pre-sorted by
//! the engine, so the output is byte-stable for golden tests.

use crate::{Finding, Summary};

/// Render all findings plus the trailing summary record as JSONL.
pub fn render(findings: &[Finding], summary: &Summary) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{{\"kind\":\"finding\",\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"allowed\":{}}}\n",
            escape(&f.file),
            f.line,
            f.col,
            escape(f.rule),
            escape(&f.message),
            f.allowed
        ));
    }
    out.push_str(&format!(
        "{{\"kind\":\"summary\",\"files\":{},\"rules\":{},\"findings\":{},\"allowlisted\":{}}}\n",
        summary.files, summary.rules, summary.findings, summary.allowlisted
    ));
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
/// Shared with the SARIF renderer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_jsonl() {
        let findings = vec![Finding {
            file: "a.rs".into(),
            line: 3,
            col: 7,
            rule: "UNSAFE",
            message: "`unsafe` is forbidden workspace-wide".into(),
            allowed: false,
        }];
        let summary = Summary { files: 1, rules: 6, findings: 1, allowlisted: 0 };
        let got = render(&findings, &summary);
        assert_eq!(
            got,
            "{\"kind\":\"finding\",\"file\":\"a.rs\",\"line\":3,\"col\":7,\"rule\":\"UNSAFE\",\
             \"message\":\"`unsafe` is forbidden workspace-wide\",\"allowed\":false}\n\
             {\"kind\":\"summary\",\"files\":1,\"rules\":6,\"findings\":1,\"allowlisted\":0}\n"
        );
    }

    #[test]
    fn escapes_special_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
