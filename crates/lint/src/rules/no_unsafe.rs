//! **UNSAFE** — any `unsafe` token is an error, workspace-wide.
//!
//! The workspace is pure safe Rust and every library crate root carries
//! `#![forbid(unsafe_code)]`; this rule extends the guarantee to bins,
//! examples, benches, and tests (which `forbid` in a lib root does not
//! cover), and catches the attribute being removed.

use crate::{FileCtx, Finding};

pub const ID: &str = "UNSAFE";

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in ctx.tokens {
        if t.is_ident("unsafe") {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                rule: ID,
                message: "`unsafe` is forbidden workspace-wide".to_string(),
                allowed: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    #[test]
    fn fires_on_unsafe_block_anywhere() {
        let hits = run_rule(
            check,
            "crates/core/tests/edge.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn silent_on_safe_form() {
        let hits = run_rule(check, "crates/core/src/client.rs", "fn f() { let x = 1 + 1; }");
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_unsafe_in_nested_comment_and_string() {
        // Lexer satellite: nested block comments containing `unsafe`.
        let src = "/* outer /* unsafe */ still comment */ fn f() { let s = \"unsafe\"; }";
        let hits = run_rule(check, "crates/core/src/client.rs", src);
        assert!(hits.is_empty());
    }

    #[test]
    fn forbid_attribute_is_not_a_finding() {
        // `#![forbid(unsafe_code)]` contains the ident `unsafe_code`,
        // not `unsafe` — the attribute itself must NOT be a finding.
        let hits = run_rule(check, "crates/core/src/lib.rs", "#![forbid(unsafe_code)]\nfn f() {}");
        assert!(hits.is_empty());
    }
}
