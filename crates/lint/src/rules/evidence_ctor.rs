//! **EVIDENCE-CTOR** — evidence tokens may only be struct-literal
//! constructed inside their defining module `core::evidence`.
//!
//! Paper §4's evidence discipline: `Evidence = Encrypt_pk(recipient){
//! Sign(H(data)), Sign(H(plaintext))}` — sign-then-encrypt, in that
//! order. If any actor can build a `SealedEvidence` / `VerifiedEvidence`
//! by struct literal, it can skip the signing step (or encrypt first) and
//! the non-repudiation argument collapses. All construction goes through
//! the signing constructors in `core::evidence`, so the type system
//! witnesses the order. Test code is exempt — forging malformed evidence
//! is exactly what adversarial tests do.

use crate::lexer::TokKind;
use crate::{FileCtx, Finding};

pub const ID: &str = "EVIDENCE-CTOR";

const DEFINING_MODULE: &str = "core::evidence";

/// The evidence-token types whose construction is restricted.
const GUARDED_TYPES: &[&str] = &["SealedEvidence", "VerifiedEvidence"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.module_str() == DEFINING_MODULE || ctx.is_test_file {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let name = match toks[i].ident() {
            Some(n) if GUARDED_TYPES.contains(&n) => n,
            _ => continue,
        };
        // Struct literal: the type name directly followed by `{`.
        if i + 1 >= toks.len() || !toks[i + 1].is_punct("{") {
            continue;
        }
        // Exclude non-literal positions where `Type {` also appears:
        // `impl SealedEvidence {`, `impl Wire for SealedEvidence {`,
        // `struct SealedEvidence {`, and `fn f() -> SealedEvidence {`
        // (the `{` is the fn body).
        if i > 0 {
            let skip = match &toks[i - 1].kind {
                TokKind::Ident(k) => {
                    matches!(k.as_str(), "impl" | "for" | "struct" | "enum" | "union" | "trait")
                }
                TokKind::Punct(p) => *p == "->",
                _ => false,
            };
            if skip {
                continue;
            }
        }
        out.push(Finding {
            file: ctx.path.to_string(),
            line: toks[i].line,
            col: toks[i].col,
            rule: ID,
            message: format!(
                "`{name}` struct literal outside core::evidence; evidence tokens must be \
                 built by the signing constructors (seal / seal_signatures / own_evidence)"
            ),
            allowed: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    const PATH: &str = "crates/core/src/provider.rs";

    #[test]
    fn fires_on_struct_literal() {
        let hits =
            run_rule(check, PATH, "fn f(sealed: Vec<u8>) -> X { SealedEvidence { sealed } }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn fires_on_qualified_literal() {
        let hits = run_rule(
            check,
            PATH,
            "fn f(s: Vec<u8>) { let e = crate::evidence::SealedEvidence { sealed: s }; }",
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn silent_on_constructor_form() {
        let hits = run_rule(
            check,
            PATH,
            "fn f() -> Result<SealedEvidence, E> { evidence::seal(cfg, me, pk, rng, pt) }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_inside_defining_module() {
        let hits = run_rule(
            check,
            "crates/core/src/evidence.rs",
            "pub fn seal() -> SealedEvidence { SealedEvidence { sealed } }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_impl_and_fn_return_position() {
        let src = "impl SealedEvidence { fn x(&self) {} }\n\
                   impl Wire for SealedEvidence { fn put(&self) {} }\n\
                   fn mk() -> SealedEvidence { helper() }";
        let hits = run_rule(check, PATH, src);
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests { fn forge() { let e = SealedEvidence { sealed: vec![] }; } }";
        assert!(run_rule(check, PATH, src).is_empty());
        assert!(run_rule(
            check,
            "crates/core/tests/forgery.rs",
            "fn f() { let e = SealedEvidence { sealed: vec![] }; }"
        )
        .is_empty());
    }
}
