//! **CT-CMP** — no `==` / `!=` on digest/MAC/signature-typed values
//! outside `crypto::ct`.
//!
//! Paper §5: the arbiter and evidence-verification paths compare hashes
//! and signatures; a data-dependent early-exit comparison leaks the first
//! differing byte through timing. All such comparisons must go through
//! `tpnr_crypto::ct::eq`, whose only data-dependent branch is on length
//! (public information). The heuristic: a comparison fires when either
//! operand mentions an identifier that names a digest, MAC, or signature
//! — unless the operand is a length query (`len()` / `output_len()` are
//! public) or names an algorithm selector (`hash_alg` is an enum tag,
//! not a secret).

use crate::lexer::TokKind;
use crate::{FileCtx, Finding};

pub const ID: &str = "CT-CMP";

const EXEMPT_MODULE: &str = "crypto::ct";

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.module_str() == EXEMPT_MODULE || ctx.is_test_file {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let op = match &toks[i].kind {
            TokKind::Punct(p) if *p == "==" || *p == "!=" => *p,
            _ => continue,
        };
        let left = collect_left(toks, i);
        let right = collect_right(toks, i);
        let hit = sensitive_operand(&left).or_else(|| sensitive_operand(&right));
        if let Some(name) = hit {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                rule: ID,
                message: format!(
                    "raw `{op}` on digest/MAC/signature value `{name}`; use tpnr_crypto::ct::eq"
                ),
                allowed: false,
            });
        }
    }
}

/// Identifiers mentioned in the operand to the left of token `i`,
/// innermost-last. Call arguments inside `(...)` / `[...]` groups are
/// skipped; the callee name before a group is kept (so `payload.commit(x)`
/// yields `payload`, `commit`).
fn collect_left(toks: &[crate::lexer::Token], i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(p) if *p == ")" || *p == "]" => {
                let open = if *p == ")" { "(" } else { "[" };
                let close = *p;
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct(close) {
                        depth += 1;
                    } else if toks[j].is_punct(open) {
                        depth -= 1;
                    }
                }
                if depth > 0 {
                    break; // unbalanced: give up on this operand
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            TokKind::Punct(p) if *p == "." || *p == "::" || *p == "&" || *p == "*" || *p == "?" => {
            }
            TokKind::Int | TokKind::Float | TokKind::Lit => {}
            _ => break,
        }
    }
    idents
}

/// Identifiers mentioned in the operand to the right of token `i`.
fn collect_right(toks: &[crate::lexer::Token], i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct(p) if *p == "(" || *p == "[" => {
                let open = *p;
                let close = if *p == "(" { ")" } else { "]" };
                let mut depth = 1usize;
                while depth > 0 {
                    j += 1;
                    if j >= toks.len() {
                        return idents;
                    }
                    if toks[j].is_punct(open) {
                        depth += 1;
                    } else if toks[j].is_punct(close) {
                        depth -= 1;
                    }
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            TokKind::Punct(p) if *p == "." || *p == "::" || *p == "&" || *p == "*" || *p == "?" => {
            }
            TokKind::Int | TokKind::Float | TokKind::Lit => {}
            _ => return idents,
        }
        j += 1;
    }
    idents
}

/// If the operand is sensitive, return the identifier that makes it so.
/// Length queries short-circuit the whole operand: `digest.len() != 32`
/// compares public information.
fn sensitive_operand(idents: &[String]) -> Option<String> {
    if idents.iter().any(|s| {
        let l = s.to_lowercase();
        l == "len" || l == "is_empty" || l == "output_len" || l == "count"
    }) {
        return None;
    }
    idents.iter().find(|s| sensitive_name(s)).cloned()
}

fn sensitive_name(s: &str) -> bool {
    let l = s.to_lowercase();
    if l.contains("alg") {
        return false; // hash_alg / HashAlg: algorithm tags, not secrets
    }
    if l.contains("hash") || l.contains("digest") || l.contains("hmac") {
        return true;
    }
    if l == "mac" || l.starts_with("mac_") || l.ends_with("_mac") {
        return true;
    }
    // `sig` / `sig_data_hash` / `peer_sig` / `signature`, but NOT `signer`
    // or `sign` (those are roles/verbs, compared as identities, not bytes).
    if l == "sig" || l.starts_with("sig_") || l.ends_with("_sig") || l.contains("signature") {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    const PATH: &str = "crates/core/src/arbiter.rs";

    #[test]
    fn fires_on_raw_digest_eq() {
        let hits = run_rule(check, PATH, "fn f() { if up.data_hash == down.data_hash {} }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn fires_on_signature_ne() {
        let hits = run_rule(check, PATH, "fn f() { if sig_plaintext != expected {} }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn fires_on_method_call_operand() {
        let hits = run_rule(check, PATH, "fn f() { if payload.commit(&cfg) != pt.data_hash {} }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn silent_on_ct_eq_form() {
        let hits =
            run_rule(check, PATH, "fn f() { if !ct::eq(&up.data_hash, &down.data_hash) {} }");
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_length_comparison() {
        let hits = run_rule(check, PATH, "fn f() { if digest.len() != 32 { return; } }");
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_hash_alg_enum_tag() {
        let hits = run_rule(check, PATH, "fn f() { if up.hash_alg != down.hash_alg {} }");
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_signer_identity() {
        let hits = run_rule(check, PATH, "fn f() { if ev.sender != signer { return; } }");
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_inside_crypto_ct() {
        let hits = run_rule(
            check,
            "crates/crypto/src/ct.rs",
            "pub fn eq(a: &[u8], b: &[u8]) -> bool { a.hash == b.hash }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_in_test_region() {
        let src = "#[cfg(test)]\nmod tests { fn t() { assert!(a.data_hash == b.data_hash); } }";
        let hits = run_rule(check, PATH, src);
        assert!(hits.is_empty());
    }
}
