//! **NO-WALLCLOCK** — `std::time::{Instant, SystemTime}` forbidden
//! outside `net::time` and `net::tcp`.
//!
//! Paper §6: timeliness (evidence deadlines, resolve timeouts) is part of
//! the protocol's fairness argument, so every actor takes time from the
//! deterministic sim clock. Host wall-clock reads anywhere else make runs
//! non-reproducible and let real-time jitter leak into protocol decisions.
//! Genuinely host-facing measurement goes through
//! `tpnr_net::time::HostStopwatch`, and the real-wire transport backend
//! (`tpnr_net::tcp`) stamps arrivals from a host-monotonic epoch — both
//! inside exempt modules. Anything else gets an allowlist entry with a
//! written justification.

use crate::{FileCtx, Finding};

pub const ID: &str = "NO-WALLCLOCK";

/// Modules allowed to touch the host clock: the stopwatch wrapper and the
/// real-socket transport backend (its arrival timestamps and quiescence
/// grace are host-time by nature).
const EXEMPT_MODULES: [&str; 2] = ["net::time", "net::tcp"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if EXEMPT_MODULES.contains(&ctx.module_str()) {
        return;
    }
    for t in ctx.tokens {
        if let Some(name) = t.ident() {
            if name == "Instant" || name == "SystemTime" {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: ID,
                    message: format!(
                        "`{name}` outside net::time; protocol time must come from the sim clock \
                         (use Clock / tpnr_net::time::HostStopwatch)"
                    ),
                    allowed: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    #[test]
    fn fires_on_instant_now() {
        let hits = run_rule(
            check,
            "crates/bench/src/experiments.rs",
            "fn f() { let t0 = std::time::Instant::now(); }",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn fires_on_system_time() {
        let hits =
            run_rule(check, "crates/crypto/src/rng.rs", "fn f() { let t = SystemTime::now(); }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn silent_on_sim_clock_form() {
        let hits = run_rule(
            check,
            "crates/bench/src/experiments.rs",
            "fn f(clock: &SimClock) { let t0 = clock.now(); }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_inside_net_time() {
        let hits = run_rule(
            check,
            "crates/net/src/time.rs",
            "pub struct HostStopwatch { start: std::time::Instant }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_inside_net_tcp() {
        let hits = run_rule(
            check,
            "crates/net/src/tcp.rs",
            "fn f() { let start = std::time::Instant::now(); }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn still_fires_in_other_net_modules() {
        let hits = run_rule(
            check,
            "crates/net/src/sim.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn silent_on_instant_in_comment_or_string() {
        let src = "// Instant is forbidden\nfn f() { let s = \"SystemTime\"; }";
        let hits = run_rule(check, "crates/core/src/client.rs", src);
        assert!(hits.is_empty());
    }
}
