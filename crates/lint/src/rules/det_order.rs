//! **DET-ORDER** — `HashMap` / `HashSet` forbidden in modules that render
//! traces, reports, or serialized evidence, and in the scheduler/runner
//! layer (`obs`, `report`, `codec`, `multi`, `sched`).
//!
//! PR 2's JSONL trace validator checks output the paper's auditor is
//! supposed to replay; hash-map iteration order is randomized per process,
//! so any hash container feeding serialized output makes traces
//! non-reproducible. `BTreeMap` / `BTreeSet` give deterministic order.
//! `multi` and `sched` are in scope since the timer-wheel refactor: the
//! event loop's dispatch and state-diff order feeds the observability
//! stream directly, so iteration there must be deterministic too. `par`
//! joined with the work-stealing pool: its index-ordered join is the
//! determinism anchor for every parallel fan-out in the workspace, so no
//! hash container may sit anywhere near that scheduling/result path.
//! The rule applies to the whole file, tests included — deterministic
//! fixtures keep golden tests stable.

use crate::{FileCtx, Finding};

pub const ID: &str = "DET-ORDER";

/// Module leaf names whose output must be deterministic.
const SCOPE_LEAVES: &[&str] = &["obs", "report", "codec", "multi", "sched", "par"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !SCOPE_LEAVES.contains(&ctx.module_leaf()) {
        return;
    }
    for t in ctx.tokens {
        if let Some(name) = t.ident() {
            if name == "HashMap" || name == "HashSet" {
                let fix = if name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: ID,
                    message: format!(
                        "`{name}` in a deterministic-output module; iteration order is \
                         randomized — use {fix}"
                    ),
                    allowed: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    #[test]
    fn fires_on_hashmap_in_obs() {
        let hits = run_rule(
            check,
            "crates/core/src/obs.rs",
            "use std::collections::HashMap;\nstruct Obs { per_txn: HashMap<u64, TxnObs> }",
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn fires_on_hashset_in_report() {
        let hits = run_rule(
            check,
            "crates/bench/src/report.rs",
            "fn f() { let seen: HashSet<u64> = HashSet::new(); }",
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn silent_on_btreemap_form() {
        let hits = run_rule(
            check,
            "crates/core/src/obs.rs",
            "use std::collections::BTreeMap;\nstruct Obs { per_txn: BTreeMap<u64, TxnObs> }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn fires_on_hashmap_in_multi_and_sched() {
        let hits = run_rule(
            check,
            "crates/core/src/multi.rs",
            "use std::collections::HashMap;\nstruct W { txn_meta: HashMap<u64, M> }",
        );
        assert_eq!(hits.len(), 2);
        let hits = run_rule(
            check,
            "crates/core/src/sched.rs",
            "fn f() { let m: HashSet<usize> = HashSet::new(); }",
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn fires_on_hashmap_in_par() {
        // The work-stealing pool's result join must stay deterministic;
        // a hash container in its scheduling path would leak iteration
        // order into fan-out behaviour.
        let hits = run_rule(
            check,
            "crates/par/src/lib.rs",
            "use std::collections::HashMap;\nstruct S { m: HashMap<usize, u64> }",
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn silent_outside_scope() {
        let hits = run_rule(
            check,
            "crates/core/src/ttp.rs",
            "use std::collections::HashMap;\nstruct Ttp { pending: HashMap<u64, P> }",
        );
        assert!(hits.is_empty());
    }
}
