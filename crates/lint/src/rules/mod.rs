//! The rule registry. Each rule lives in its own module with unit tests
//! on inline source snippets; `ALL` is the engine's iteration order.

pub mod ct_cmp;
pub mod det_order;
pub mod evidence_ctor;
pub mod no_unsafe;
pub mod no_wallclock;

use crate::{FileCtx, Finding};

/// A registered rule: stable id plus its token-level checker.
pub struct Rule {
    pub id: &'static str,
    pub check: fn(&FileCtx, &mut Vec<Finding>),
}

/// Every per-file rule, in the order they run. The interprocedural
/// passes (PANIC-REACH, SECRET-FLOW, ALLOC-HOT) live in
/// [`crate::passes`]; `Summary::rules` counts both registries.
/// NO-PANIC-PATH was replaced by the call-graph-aware PANIC-REACH pass,
/// which sees across files instead of approximating per module.
pub const ALL: &[Rule] = &[
    Rule { id: ct_cmp::ID, check: ct_cmp::check },
    Rule { id: no_wallclock::ID, check: no_wallclock::check },
    Rule { id: det_order::ID, check: det_order::check },
    Rule { id: evidence_ctor::ID, check: evidence_ctor::check },
    Rule { id: no_unsafe::ID, check: no_unsafe::check },
];

/// Test helper shared by the rule modules: lint one in-memory file at
/// `path` with a single rule and return the findings.
#[cfg(test)]
pub(crate) fn run_rule(
    rule: fn(&FileCtx, &mut Vec<Finding>),
    path: &str,
    src: &str,
) -> Vec<Finding> {
    let tokens = crate::lexer::lex(src);
    let in_test = crate::lexer::test_region_flags(&tokens);
    let (module, is_test_file) = crate::module_of(path);
    let ctx = FileCtx { path, module, is_test_file, tokens: &tokens, in_test: &in_test };
    let mut out = Vec::new();
    rule(&ctx, &mut out);
    out
}
