//! **NO-PANIC-PATH** — `unwrap()` / `expect()` / `panic!`-family macros /
//! indexing-by-literal forbidden in protocol-actor modules.
//!
//! Paper §4–5: a protocol actor that aborts on malformed input hands the
//! adversary a free denial-of-service and destroys the evidence trail the
//! non-repudiation argument depends on. Actors in scope must degrade into
//! `ValidationError` (or otherwise refuse gracefully), never panic.
//! Test regions and test files are exempt: panicking is how tests assert.

use crate::lexer::TokKind;
use crate::{FileCtx, Finding};

pub const ID: &str = "NO-PANIC-PATH";

/// Modules whose non-test code must be panic-free.
///
/// The `crypto::*` entries are the protocol-reachable crypto surface: the
/// sign/verify/encrypt chain evidence handling drives (`rsa`, its arithmetic
/// substrate `bigint`/`limbs`, the evidence envelope, digest dispatch and
/// keygen primality). Block primitives fed only fixed-size internal state
/// (`md5`/`sha1`/`sha2`/`chacha20`) stay out of scope: their indexing is on
/// compile-time-sized buffers, never on attacker-supplied input.
const SCOPE: &[&str] = &[
    "core::client",
    "core::provider",
    "core::ttp",
    "core::session",
    "core::evidence",
    "core::runner",
    "core::multi",
    "core::fault",
    "net::codec",
    "net::secure",
    "crypto::rsa",
    "crypto::bigint",
    "crypto::limbs",
    "crypto::prime",
    "crypto::hash",
    "crypto::envelope",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_test_file || !SCOPE.contains(&ctx.module_str()) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if let Some(name) = t.ident() {
            // `.unwrap()` / `.expect(...)` method calls.
            if (name == "unwrap" || name == "expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && i + 1 < toks.len()
                && toks[i + 1].is_punct("(")
            {
                out.push(finding(ctx, t.line, t.col, format!(
                    "`.{name}()` in protocol path; degrade into ValidationError instead of panicking"
                )));
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
            if PANIC_MACROS.contains(&name) && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
                out.push(finding(
                    ctx,
                    t.line,
                    t.col,
                    format!(
                    "`{name}!` in protocol path; degrade into ValidationError instead of panicking"
                ),
                ));
                continue;
            }
        }
        // Indexing by integer literal: `buf[0]` can panic on short input.
        // Ranges (`buf[..8]`) and array types (`[u8; 32]`) don't match.
        if t.is_punct("[")
            && i > 0
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Int
            && toks[i + 2].is_punct("]")
        {
            let indexable = matches!(
                &toks[i - 1].kind,
                TokKind::Ident(_) | TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct("?")
            );
            if indexable {
                out.push(finding(
                    ctx,
                    t.line,
                    t.col,
                    "indexing by integer literal can panic on short input; use get()".to_string(),
                ));
            }
        }
    }
}

fn finding(ctx: &FileCtx, line: u32, col: u32, message: String) -> Finding {
    Finding { file: ctx.path.to_string(), line, col, rule: ID, message, allowed: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    const PATH: &str = "crates/core/src/client.rs";

    #[test]
    fn fires_on_unwrap() {
        let hits = run_rule(check, PATH, "fn f() { let x = self.txns.get(&id).unwrap(); }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
    }

    #[test]
    fn fires_on_expect_and_unreachable() {
        let src = "fn f() { m.get(&k).expect(\"present\"); match x { _ => unreachable!() } }";
        let hits = run_rule(check, PATH, src);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn fires_on_literal_index() {
        let hits = run_rule(check, PATH, "fn f(b: &[u8]) -> u8 { b[0] }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn fires_on_literal_index_after_try() {
        let hits =
            run_rule(check, PATH, "fn f(&mut self) -> Result<u8, E> { Ok(self.take(1)?[0]) }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn silent_on_range_index_and_array_type() {
        let src = "fn f(b: &[u8]) -> [u8; 32] { let _ = &b[..8]; [0u8; 32] }";
        let hits = run_rule(check, PATH, src);
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_on_validation_error_form() {
        let src = "fn f(&self, id: u64) -> Result<(), ValidationError> {\n\
                   let _t = self.txns.get(&id).ok_or(ValidationError::UnknownTxn(id))?; Ok(()) }";
        let hits = run_rule(check, PATH, src);
        assert!(hits.is_empty());
    }

    #[test]
    fn silent_outside_scope() {
        // Fixed-block primitives stay out of scope (compile-time-sized
        // buffers only); the protocol-reachable crypto modules do not.
        let hits = run_rule(
            check,
            "crates/crypto/src/sha2.rs",
            "fn f() { x.unwrap(); panic!(\"boom\"); }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn fires_in_protocol_reachable_crypto() {
        for path in [
            "crates/crypto/src/rsa.rs",
            "crates/crypto/src/bigint.rs",
            "crates/crypto/src/limbs.rs",
            "crates/crypto/src/prime.rs",
            "crates/crypto/src/hash.rs",
            "crates/crypto/src/envelope.rs",
        ] {
            let hits = run_rule(check, path, "fn f() { x.unwrap(); }");
            assert_eq!(hits.len(), 1, "{path} must be in NO-PANIC-PATH scope");
        }
    }

    #[test]
    fn silent_in_test_region_and_test_file() {
        let src = "#[cfg(test)]\nmod tests { #[test]\nfn t() { x.unwrap(); } }";
        assert!(run_rule(check, PATH, src).is_empty());
        assert!(run_rule(check, "crates/core/tests/edge.rs", "fn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn silent_on_unwrap_in_raw_string() {
        // Lexer satellite: raw strings containing unwrap() produce nothing.
        let src = r###"fn f() { let doc = r#"call .unwrap() here"#; let _ = doc; }"###;
        assert!(run_rule(check, PATH, src).is_empty());
    }

    #[test]
    fn expect_named_method_is_not_expect() {
        let hits = run_rule(check, PATH, "fn f() { parser.expect_end(); }");
        assert!(hits.is_empty());
    }
}
