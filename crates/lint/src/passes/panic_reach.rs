//! **PANIC-REACH** — transitive panic reachability from protocol entry
//! points.
//!
//! Paper §4–5: a protocol actor that aborts mid-session hands the
//! adversary the exact failure the non-repudiation argument forbids —
//! the crashed party drops its half of the evidence trail. The old
//! NO-PANIC-PATH rule approximated this per file with a module scope
//! list; this pass replaces it with the real property: seed every
//! potential panic site (`unwrap`/`expect`, `panic!`-family macros,
//! indexing by integer literal, unchecked `/`/`%` in the bignum
//! substrate), then walk the workspace call graph from every protocol
//! entry point and report each seed a protocol call chain can reach.
//!
//! Findings land at the *seed* site with the entry→seed chain in the
//! message, so an allowlist entry covers one file's seeds without
//! silencing unrelated entry points.

use crate::callgraph::Reach;
use crate::lexer::{TokKind, Token};
use crate::passes::PassCtx;
use crate::Finding;

pub const ID: &str = "PANIC-REACH";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Protocol-actor types whose public methods are entry points.
const ENTRY_OWNERS: &[&str] = &["Client", "Provider", "Ttp", "Validator", "Arbitrator"];

/// Block primitives whose indexing is on compile-time-sized internal
/// state, never attacker-supplied input: exempt from the literal-index
/// seed (panic macros and `unwrap` still seed there).
const FIXED_BLOCK_MODULES: &[&str] =
    &["crypto::md5", "crypto::sha1", "crypto::sha2", "crypto::chacha20"];

/// One potential panic site inside a function body.
pub(crate) struct Seed {
    pub line: u32,
    pub col: u32,
    pub what: String,
}

/// Is node `i` a protocol entry point?
fn is_entry(ctx: &PassCtx, i: usize) -> bool {
    let it = &ctx.graph.fns[i].item;
    if it.is_test {
        return false;
    }
    let crate_root = it.module.split("::").next().unwrap_or("");
    // Public methods on the five protocol actors in the core crate.
    if it.is_pub
        && crate_root == "core"
        && it.owner.as_deref().is_some_and(|o| ENTRY_OWNERS.contains(&o))
    {
        return true;
    }
    // Wire decoding: every `impl Wire for T { fn decode … }` plus the
    // codec crate's public free decode surface.
    if it.trait_name.as_deref() == Some("Wire") && it.name == "decode" {
        return true;
    }
    if it.module == "net::codec"
        && it.owner.is_none()
        && it.is_pub
        && (it.name.starts_with("decode") || it.name == "from_wire_bytes")
    {
        return true;
    }
    // The scheduler's settle loop drives every actor.
    it.qname == "core::sched::settle"
}

/// Scan one function body for panic seeds. `in_test` masks tokens in
/// `#[cfg(test)]` regions nested inside the body.
pub(crate) fn seeds_in(
    toks: &[Token],
    in_test: &[bool],
    body: (usize, usize),
    module: &str,
) -> Vec<Seed> {
    let mut out = Vec::new();
    let literal_index_exempt = FIXED_BLOCK_MODULES.contains(&module);
    let crypto_substrate = module.starts_with("crypto");
    let (start, end) = body;
    for i in start..end {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if let Some(name) = t.ident() {
            if (name == "unwrap" || name == "expect")
                && i > start
                && toks[i - 1].is_punct(".")
                && i + 1 < end
                && toks[i + 1].is_punct("(")
            {
                out.push(Seed { line: t.line, col: t.col, what: format!(".{name}()") });
                continue;
            }
            if PANIC_MACROS.contains(&name) && i + 1 < end && toks[i + 1].is_punct("!") {
                out.push(Seed { line: t.line, col: t.col, what: format!("{name}!") });
                continue;
            }
        }
        // Indexing by integer literal: `buf[0]` panics on short input.
        if !literal_index_exempt
            && t.is_punct("[")
            && i > start
            && i + 2 < end
            && toks[i + 1].kind == TokKind::Int
            && toks[i + 2].is_punct("]")
        {
            let indexable = matches!(
                &toks[i - 1].kind,
                TokKind::Ident(_) | TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct("?")
            );
            if indexable {
                out.push(Seed { line: t.line, col: t.col, what: "indexing by literal".into() });
            }
        }
        // Unchecked integer `/` / `%` by a runtime value, in the bignum
        // substrate only (where division by a computed limb count or
        // modulus is the realistic div-by-zero risk; elsewhere the
        // token-level heuristic cannot tell floats from ints).
        if crypto_substrate && (t.is_punct("/") || t.is_punct("%")) {
            if let Some(rhs) = toks.get(i + 1).and_then(|t| t.ident()) {
                let lowercase = rhs.chars().next().is_some_and(|c| c.is_ascii_lowercase());
                let is_path = toks.get(i + 2).is_some_and(|t| t.is_punct("::"));
                if lowercase && !is_path {
                    let op = if t.is_punct("/") { "/" } else { "%" };
                    out.push(Seed {
                        line: t.line,
                        col: t.col,
                        what: format!("unchecked `{op} {rhs}`"),
                    });
                }
            }
        }
    }
    out
}

pub fn run(ctx: &PassCtx, out: &mut Vec<Finding>) {
    let g = ctx.graph;
    let roots: Vec<usize> = (0..g.fns.len()).filter(|&i| is_entry(ctx, i)).collect();
    let reach: Reach = g.reach_from(&roots);
    for i in 0..g.fns.len() {
        if !reach.reached[i] || g.fns[i].item.is_test {
            continue;
        }
        let meta = &g.fns[i];
        let file = &ctx.ws.files[meta.file];
        let entry = reach.root[i].map(|r| g.fns[r].item.qname.clone()).unwrap_or_default();
        let chain = g.chain(&reach, i);
        for seed in seeds_in(&file.tokens, &file.in_test, meta.item.body, &meta.item.module) {
            out.push(Finding {
                file: file.path.clone(),
                line: seed.line,
                col: seed.col,
                rule: ID,
                message: format!(
                    "`{}` can panic and is reachable from protocol entry `{}` ({}); degrade into ValidationError instead",
                    seed.what, entry, chain
                ),
                allowed: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_pass;

    #[test]
    fn cross_crate_unwrap_is_caught() {
        // The old per-file NO-PANIC-PATH rule had `storage::*` outside
        // its SCOPE list and could never see this: a Client entry point
        // in core reaching an unwrap two hops away in the storage crate.
        let hits = run_pass(
            run,
            &[
                (
                    "crates/core/src/client.rs",
                    "use tpnr_storage::chunkmap;\nstruct Client;\nimpl Client {\n\
                     pub fn upload(&self) { chunkmap::stash_chunk(); }\n}",
                ),
                (
                    "crates/storage/src/chunkmap.rs",
                    "pub fn stash_chunk() { inner_lookup(); }\n\
                     fn inner_lookup() { let x = MAP.get(&0).unwrap(); }",
                ),
            ],
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, ID);
        assert_eq!(hits[0].file, "crates/storage/src/chunkmap.rs");
        assert!(hits[0].message.contains("core::client::Client::upload"));
        assert!(hits[0].message.contains("storage::chunkmap::inner_lookup"));
    }

    #[test]
    fn unreachable_seed_is_not_reported() {
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/client.rs",
                "struct Client;\nimpl Client { pub fn upload(&self) { safe(); } }\n\
                 fn safe() {}\nfn orphan() { x.unwrap(); }",
            )],
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn cfg_test_only_panic_is_not_reported() {
        // False-positive guard: the panic is only reachable from test
        // code, so no protocol chain exists.
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/client.rs",
                "struct Client;\nimpl Client { pub fn upload(&self) {} }\n\
                 fn prod_helper() {}\n\
                 #[cfg(test)]\nmod tests {\n  fn t_helper() { super::panicky(); }\n}\n\
                 fn panicky() { y.unwrap(); }",
            )],
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn wire_decode_is_an_entry_point() {
        let hits = run_pass(
            run,
            &[(
                "crates/net/src/codec.rs",
                "pub struct Frame;\nimpl Wire for Frame {\n\
                 fn decode(r: &mut Reader) -> Frame { hdr_byte(r) }\n}\n\
                 fn hdr_byte(r: &mut Reader) -> Frame { let b = r.buf[0]; Frame }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("indexing by literal"));
    }

    #[test]
    fn panic_macro_and_settle_entry() {
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/sched.rs",
                "pub fn settle() { step(); }\nfn step() { unreachable!(); }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unreachable!"));
        assert!(hits[0].message.contains("core::sched::settle"));
    }

    #[test]
    fn fixed_block_primitive_index_exempt_but_unwrap_seeds() {
        let hits = run_pass(
            run,
            &[
                (
                    "crates/core/src/client.rs",
                    "use tpnr_crypto::sha2;\nstruct Client;\nimpl Client {\n\
                     pub fn upload(&self) { sha2::compress(); }\n}",
                ),
                (
                    "crates/crypto/src/sha2.rs",
                    "pub fn compress() { let w = state[0]; opt.unwrap(); }",
                ),
            ],
        );
        assert_eq!(hits.len(), 1, "literal index exempt, unwrap still seeds");
        assert!(hits[0].message.contains(".unwrap()"));
    }

    #[test]
    fn unchecked_division_seeds_in_crypto_substrate_only() {
        let hits = run_pass(
            run,
            &[
                (
                    "crates/core/src/client.rs",
                    "use tpnr_crypto::bigint;\nstruct Client;\nimpl Client {\n\
                     pub fn upload(&self) { bigint::divmod(); helper(); } }\n\
                     fn helper() { let avg = total / count; }",
                ),
                ("crates/crypto/src/bigint.rs", "pub fn divmod() { let q = acc / limb; }"),
            ],
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file, "crates/crypto/src/bigint.rs");
        assert!(hits[0].message.contains("unchecked `/ limb`"));
    }

    #[test]
    fn constant_divisor_is_not_a_seed() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/limbs.rs",
                "pub struct FixedUint;\nimpl FixedUint {\n\
                 pub fn from_biguint(&self) { let hi = x / LIMB_BITS; let lo = y / 64; } }\n\
                 struct Client;",
            )],
        );
        // Not an entry point anyway, but also: uppercase consts and
        // literals never seed.
        assert!(hits.is_empty());
    }
}
