//! **SECRET-FLOW** — taint tracking from key material to observable
//! sinks.
//!
//! The protocol's non-repudiation argument assumes signing keys stay
//! secret; the system's own observability machinery is the most likely
//! leak. Sources: RSA private keys and CRT halves (`d`/`p`/`q`/`dp`/
//! `dq`/`qinv` in `crypto::rsa`, anything named `*priv*`/`*secret*`/
//! `sk`), rng state, and pre-seal payload plaintext. Sinks: `Debug`/
//! `Display` formatting macros, `obs` events and metric labels, JSONL
//! export, and `ValidationError`/`CryptoError` message payloads.
//!
//! Propagation is two-level: inside a function, `let` bindings whose
//! initializer mentions a tainted name become tainted; across
//! functions, a fixpoint computes per-parameter leak summaries (does
//! `f` pass its i-th parameter into a sink, directly or transitively?)
//! so passing a secret to a leaky helper is reported at the call site.
//! Cryptographic *outputs* (signatures, ciphertexts) are deliberately
//! not tainted by their inputs — a signature derived from `d` is
//! public by design, so call results never carry taint (declassification
//! at every call boundary; DESIGN.md §4.14 spells out the limits).

use crate::callgraph::Graph;
use crate::lexer::Token;
use crate::passes::PassCtx;
use crate::Finding;
use std::collections::BTreeSet;

pub const ID: &str = "SECRET-FLOW";

/// Formatting macros that render values into observable text. The
/// panic family is included: panic messages reach stderr and crash
/// reports, which is still exfiltration.
const FMT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Error types whose constructor payloads become user-visible messages.
const ERROR_TYPES: &[&str] = &["ValidationError", "CryptoError"];

/// Callee names that persist or export their arguments (obs events,
/// metric labels, JSONL export). Any callee whose name contains
/// `jsonl` or `json` is also a sink.
const SINK_FNS: &[&str] = &["note_event", "record", "emit", "observe", "label", "set_label"];

/// CRT half / exponent names — secret only inside `crypto::rsa`, where
/// the paper's key material actually lives; a loop index `q` in the
/// scheduler is not a key.
const RSA_CRT_NAMES: &[&str] = &["d", "p", "q", "dp", "dq", "qinv"];

/// Methods whose result is the same value in another shape: taint
/// survives them. Every *other* call result is declassified — a
/// signature computed from `d` is public by design — so `.clone()` of
/// a key is still the key, but `.sign_prehashed(…)` of one is not.
const PRESERVING_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "to_bytes",
    "to_bytes_be",
    "to_bytes_le",
    "to_bytes_be_padded",
    "as_ref",
    "as_slice",
    "as_bytes",
    "as_str",
    "as_mut",
    "borrow",
    "expect",
    "unwrap",
    "unwrap_or",
    "iter",
    "into",
];

/// Is `name` secret in `module`?
pub(crate) fn is_secret_name(name: &str, module: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if lower.contains("priv") || lower.contains("secret") || lower.contains("plaintext") {
        return true;
    }
    if lower == "sk" || lower.contains("rng_state") {
        return true;
    }
    if module == "crypto::rsa" && RSA_CRT_NAMES.contains(&name) {
        return true;
    }
    // The rng module's internal state words are seed-derived secrets.
    module == "crypto::rng" && (lower == "state" || lower == "s")
}

/// One sink occurrence.
struct SinkHit {
    line: u32,
    col: u32,
    desc: String,
}

/// Expand a seed taint set over a function body's `let` bindings (a
/// binding whose initializer mentions a tainted name is tainted).
/// When `intrinsic`, every identifier matching [`is_secret_name`] is a
/// source as well.
fn local_taint(
    toks: &[Token],
    body: (usize, usize),
    module: &str,
    seed: &BTreeSet<String>,
    intrinsic: bool,
) -> BTreeSet<String> {
    let (start, end) = body;
    let mut taint = seed.clone();
    if intrinsic {
        for t in &toks[start..end] {
            if let Some(n) = t.ident() {
                if is_secret_name(n, module) {
                    taint.insert(n.to_string());
                }
            }
        }
    }
    // `let` propagation to fixpoint (bounded: binding chains are short).
    for _ in 0..3 {
        let mut changed = false;
        let mut i = start;
        while i < end {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            // Pattern idents up to the first top-level `:` or `=`.
            let mut j = i + 1;
            let mut pat = Vec::new();
            while j < end {
                let t = &toks[j];
                if t.is_punct("=") || t.is_punct(":") || t.is_punct(";") || t.is_punct("{") {
                    break;
                }
                if let Some(n) = t.ident() {
                    if n != "mut" && n != "ref" && n != "_" {
                        pat.push(n.to_string());
                    }
                }
                j += 1;
            }
            // Skip a type ascription to the `=`.
            let mut depth = 0usize;
            while j < end && !(toks[j].is_punct("=") && depth == 0) {
                if toks[j].is_punct(";") && depth == 0 {
                    break;
                }
                match () {
                    _ if toks[j].is_punct("(")
                        || toks[j].is_punct("[")
                        || toks[j].is_punct("{") =>
                    {
                        depth += 1
                    }
                    _ if toks[j].is_punct(")")
                        || toks[j].is_punct("]")
                        || toks[j].is_punct("}") =>
                    {
                        depth = depth.saturating_sub(1)
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= end || !toks[j].is_punct("=") {
                i = j.max(i + 1);
                continue;
            }
            // RHS until `;` (or the `{` of an `if let` block) at depth 0.
            let mut k = j + 1;
            let mut depth = 0usize;
            while k < end {
                let t = &toks[k];
                if depth == 0 && (t.is_punct(";") || t.is_punct("{")) {
                    break;
                }
                match () {
                    _ if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") => depth += 1,
                    _ if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") => {
                        depth = depth.saturating_sub(1)
                    }
                    _ => {}
                }
                k += 1;
            }
            // Same declassification rules as sink scanning: a binding of
            // a call *result* (`let sig = key.sign(…)`) is public; a
            // binding that merely reshapes the value (`.clone()`,
            // `.to_bytes()`, a field access) stays tainted.
            if range_tainted(toks, (j + 1, k), &taint).is_some() {
                for p in &pat {
                    changed |= taint.insert(p.clone());
                }
            }
            i = k.max(i + 1);
        }
        if !changed {
            break;
        }
    }
    taint
}

/// Find the matching close paren from an open-paren index.
fn close_paren(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end
}

/// Does any *taint-carrying* identifier occur in `range`? Implements
/// declassification at call boundaries, consistent with the
/// interprocedural model:
///
/// - `f(secret)` — the group after a call name is skipped: the call's
///   *result* is public, and a leaky `f` is reported separately via
///   the per-parameter summaries at its own call site.
/// - `secret.method(…)` — declassified unless `method` is in
///   [`PRESERVING_METHODS`] (the chain keeps being followed through
///   preserving links and plain field accesses).
/// - A bare tainted identifier, field access, or macro argument
///   (`format!(…)` — the `(` follows `!`, not an ident) is a hit.
fn range_tainted<'a>(
    toks: &'a [Token],
    range: (usize, usize),
    taint: &BTreeSet<String>,
) -> Option<&'a str> {
    let (lo, hi) = (range.0, range.1.min(toks.len()));
    let mut i = lo;
    'outer: while i < hi {
        if let Some(n) = toks[i].ident() {
            // Call name: skip it and its argument group wholesale.
            if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                i = close_paren(toks, i + 1, hi) + 1;
                continue;
            }
            if taint.contains(n) {
                // Walk the access chain to decide preserve vs declassify.
                let mut j = i;
                loop {
                    let dot = toks.get(j + 1).is_some_and(|t| t.is_punct("."));
                    let link = if dot { toks.get(j + 2).and_then(|t| t.ident()) } else { None };
                    match link {
                        Some(m) if toks.get(j + 3).is_some_and(|t| t.is_punct("(")) => {
                            let close = close_paren(toks, j + 3, hi);
                            if PRESERVING_METHODS.contains(&m) {
                                j = close; // value-preserving: keep walking
                            } else {
                                i = close + 1; // declassified call result
                                continue 'outer;
                            }
                        }
                        Some(_) => j += 2, // field access keeps the taint
                        None => return Some(n),
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Index of the first top-level `,` in `range`, if any.
fn first_top_comma(toks: &[Token], range: (usize, usize)) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().take(range.1.min(toks.len())).skip(range.0) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(",") && depth == 0 {
            return Some(i);
        }
    }
    None
}

/// Split a call's argument token range at top-level commas.
fn arg_slots(toks: &[Token], range: (usize, usize)) -> Vec<(usize, usize)> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = start;
    for (i, t) in toks.iter().enumerate().take(end.min(toks.len())).skip(start) {
        match () {
            _ if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") => depth += 1,
            _ if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") => {
                depth = depth.saturating_sub(1)
            }
            _ if t.is_punct(",") && depth == 0 => {
                out.push((cur, i));
                cur = i + 1;
            }
            _ => {}
        }
    }
    if cur < end {
        out.push((cur, end));
    }
    out
}

/// Scan one function for sinks fed by `taint`. `leaks` are the current
/// per-parameter summaries; `node` indexes the graph's call-site table.
fn find_sinks(
    g: &Graph,
    node: usize,
    toks: &[Token],
    taint: &BTreeSet<String>,
    leaks: &[Vec<bool>],
) -> Vec<SinkHit> {
    if taint.is_empty() {
        return Vec::new();
    }
    let (start, end) = g.fns[node].item.body;
    let mut hits: Vec<SinkHit> = Vec::new();
    // Macro sinks: `name!(…)` / `write!(f, …)`.
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if let Some(name) = t.ident() {
            if FMT_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                let close = close_paren(toks, i + 2, end);
                // `assert!(cond, args…)` never formats its condition —
                // only the trailing format arguments render values. The
                // `_eq`/`_ne` forms Debug-format both operands, and the
                // rest format everything, so they scan from the start.
                let scan_from = if name == "assert" || name == "debug_assert" {
                    first_top_comma(toks, (i + 3, close)).map(|c| c + 1)
                } else {
                    Some(i + 3)
                };
                if let Some(n) = scan_from.and_then(|lo| range_tainted(toks, (lo, close), taint)) {
                    hits.push(SinkHit {
                        line: t.line,
                        col: t.col,
                        desc: format!("secret `{n}` formatted by `{name}!`"),
                    });
                }
                i = close.max(i + 1);
                continue;
            }
            // `ValidationError::Variant(…)` / `CryptoError::Variant(…)`.
            if ERROR_TYPES.contains(&name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
            {
                let close = close_paren(toks, i + 3, end);
                if let Some(n) = range_tainted(toks, (i + 4, close), taint) {
                    hits.push(SinkHit {
                        line: t.line,
                        col: t.col,
                        desc: format!("secret `{n}` embedded in `{name}` message payload"),
                    });
                }
                i = close.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    // Call sinks: export/obs callees and leaky-summary callees.
    for site in &g.calls[node] {
        let lower = site.name.to_ascii_lowercase();
        if SINK_FNS.contains(&site.name.as_str())
            || lower.contains("jsonl")
            || lower.contains("json")
        {
            if let Some(n) = range_tainted(toks, site.args, taint) {
                hits.push(SinkHit {
                    line: site.line,
                    col: site.col,
                    desc: format!(
                        "secret `{n}` passed to export/observability sink `{}`",
                        site.name
                    ),
                });
                continue;
            }
        }
        let slots = arg_slots(toks, site.args);
        for &t_idx in &site.targets {
            if g.fns[t_idx].item.is_test {
                continue;
            }
            for (slot, leaked) in slots.iter().zip(leaks[t_idx].iter()) {
                if !*leaked {
                    continue;
                }
                if let Some(n) = range_tainted(toks, *slot, taint) {
                    hits.push(SinkHit {
                        line: site.line,
                        col: site.col,
                        desc: format!(
                            "secret `{n}` passed to `{}`, which leaks that parameter into a sink",
                            g.fns[t_idx].item.qname
                        ),
                    });
                }
            }
        }
    }
    hits.sort_by_key(|h| (h.line, h.col));
    hits.dedup_by(|a, b| a.line == b.line && a.col == b.col);
    hits
}

pub fn run(ctx: &PassCtx, out: &mut Vec<Finding>) {
    let g = ctx.graph;
    let n = g.fns.len();
    // Fixpoint: does fn `i` leak its j-th parameter into a sink?
    let mut leaks: Vec<Vec<bool>> =
        g.fns.iter().map(|m| vec![false; m.item.params.len()]).collect();
    for _ in 0..8 {
        let mut changed = false;
        for i in 0..n {
            let meta = &g.fns[i];
            if meta.item.is_test {
                continue;
            }
            let toks = &ctx.ws.files[meta.file].tokens;
            for p in 0..meta.item.params.len() {
                if leaks[i][p] {
                    continue;
                }
                let mut seed = BTreeSet::new();
                seed.insert(meta.item.params[p].clone());
                let taint = local_taint(toks, meta.item.body, &meta.item.module, &seed, false);
                if !find_sinks(g, i, toks, &taint, &leaks).is_empty() {
                    leaks[i][p] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Report: intrinsic sources flowing into sinks, per function.
    for i in 0..n {
        let meta = &g.fns[i];
        if meta.item.is_test {
            continue;
        }
        let file = &ctx.ws.files[meta.file];
        let taint =
            local_taint(&file.tokens, meta.item.body, &meta.item.module, &BTreeSet::new(), true);
        for hit in find_sinks(g, i, &file.tokens, &taint, &leaks) {
            out.push(Finding {
                file: file.path.clone(),
                line: hit.line,
                col: hit.col,
                rule: ID,
                message: format!("{} (in `{}`)", hit.desc, meta.item.qname),
                allowed: false,
            });
        }
    }
    // Structural sink: #[derive(Debug)] on a type holding a secret field
    // prints the field on any `{:?}` of the container.
    for file in &ctx.ws.files {
        if file.is_test_file {
            continue;
        }
        let module = file.module.as_deref().unwrap_or("");
        for s in &file.parsed.structs {
            if !s.derives_debug {
                continue;
            }
            if let Some(f) = s.fields.iter().find(|f| is_secret_name(f, module)) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: s.line,
                    col: s.col,
                    rule: ID,
                    message: format!(
                        "#[derive(Debug)] on `{}` exposes secret field `{f}`; write a redacting Debug impl",
                        s.name
                    ),
                    allowed: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_pass;

    #[test]
    fn direct_format_of_secret_field() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/rsa.rs",
                "struct K;\nimpl K { fn dump(&self) { let s = format!(\"{:?}\", self.private); } }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`private` formatted by `format!`"));
    }

    #[test]
    fn taint_flows_through_let_binding() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/rsa.rs",
                "fn f() { let exported = d.to_bytes(); println!(\"{:?}\", exported); }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("println"));
    }

    #[test]
    fn leak_through_helper_is_reported_at_call_site() {
        let hits = run_pass(
            run,
            &[
                (
                    "crates/crypto/src/rsa.rs",
                    "use tpnr_core::obs;\npub fn keygen() { let dp = derive(); obs::debug_dump(dp); }",
                ),
                ("crates/core/src/obs.rs", "pub fn debug_dump(v: u64) { println!(\"{}\", v); }"),
            ],
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file, "crates/crypto/src/rsa.rs");
        assert!(hits[0].message.contains("core::obs::debug_dump"));
        assert!(hits[0].message.contains("leaks that parameter"));
    }

    #[test]
    fn error_ctor_payload_is_a_sink() {
        let hits = run_pass(
            run,
            &[(
                "crates/net/src/secure.rs",
                "fn seal(plaintext: &[u8]) -> Result<(), E> {\n\
                 Err(ValidationError::Rejected(plaintext.to_vec()))\n}",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("ValidationError"));
    }

    #[test]
    fn signature_output_is_declassified() {
        // A signature computed FROM the private exponent is public: call
        // results do not carry taint, so formatting the signature is fine.
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/rsa.rs",
                "fn sign_and_log(&self) { let sig = self.sign_with(); println!(\"{:?}\", sig); }\n\
                 impl K { fn sign_with(&self) -> u64 { self.d.pow_mod() } }",
            )],
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn derive_debug_on_secret_struct() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/rsa.rs",
                "#[derive(Debug, Clone)]\npub struct KeyPair { pub public: u64, private: u64 }\n\
                 pub struct Redacted { private: u64 }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("KeyPair"));
        assert!(hits[0].message.contains("`private`"));
    }

    #[test]
    fn jsonl_export_is_a_sink() {
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/obs.rs",
                "fn export(seed_secret: u64) { jsonl_line(seed_secret); }\nfn jsonl_line(v: u64) {}",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("jsonl_line"));
    }

    #[test]
    fn crt_names_are_scoped_to_rsa_module() {
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/sched.rs",
                "fn f() { let d = 5; let q = 2; println!(\"{} {}\", d, q); }",
            )],
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/rsa.rs",
                "#[cfg(test)]\nmod tests { #[test]\nfn t() { println!(\"{}\", d); } }",
            )],
        );
        assert!(hits.is_empty());
    }
}
