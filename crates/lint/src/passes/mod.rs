//! Interprocedural passes over the workspace call graph.
//!
//! Unlike the per-file rules in [`crate::rules`], these analyses need
//! the whole workspace at once: a panic three crates away is still a
//! protocol-path panic if a `Client` method can reach it, and a secret
//! leaks whether or not the `format!` happens in the file that owns the
//! key. Each pass gets the lexed/parsed [`Workspace`] plus the resolved
//! [`Graph`] and reports findings at the *site* of the defect (the seed
//! panic, the leaking sink, the allocation) with the reaching chain in
//! the message — so allowlist entries, which match (rule, file), stay
//! local to the file that owns the offending code.

pub mod alloc_hot;
pub mod panic_reach;
pub mod secret_flow;

use crate::callgraph::Graph;
use crate::{Finding, Workspace};

/// Shared input handed to every pass.
pub struct PassCtx<'a> {
    pub ws: &'a Workspace,
    pub graph: &'a Graph,
}

/// A registered pass: stable id plus its entry point.
pub struct Pass {
    pub id: &'static str,
    pub run: fn(&PassCtx, &mut Vec<Finding>),
}

/// Every pass, in the order they run after the per-file rules.
pub const ALL: &[Pass] = &[
    Pass { id: panic_reach::ID, run: panic_reach::run },
    Pass { id: secret_flow::ID, run: secret_flow::run },
    Pass { id: alloc_hot::ID, run: alloc_hot::run },
];

/// Test helper shared by the pass modules: build a mini workspace from
/// in-memory files, run one pass, return sorted findings.
#[cfg(test)]
pub(crate) fn run_pass(
    run: fn(&PassCtx, &mut Vec<Finding>),
    files: &[(&str, &str)],
) -> Vec<Finding> {
    let inputs: Vec<crate::FileInput> = files
        .iter()
        .map(|(p, s)| crate::FileInput { path: p.to_string(), source: s.to_string() })
        .collect();
    let ws = Workspace::build(&inputs);
    let graph = Graph::build(&ws);
    let ctx = PassCtx { ws: &ws, graph: &graph };
    let mut out = Vec::new();
    run(&ctx, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}
